//! # `ppm` — The Parallel Persistent Memory Model, reproduced in Rust
//!
//! A from-scratch implementation of Blelloch, Gibbons, Gu, McGuffey and
//! Shun, *The Parallel Persistent Memory Model* (SPAA 2018): the machine
//! model, the capsule methodology for idempotence under processor faults,
//! the CAM-only fault-tolerant work-stealing scheduler of Figure 3, the
//! RAM / external-memory / ideal-cache simulations of Theorems 3.2–3.4,
//! and the four fault-tolerant algorithms of Section 7.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`pm`] (`ppm-pm`) — the persistent-memory substrate: word/block
//!   memory, CAM/CAS, deterministic fault injection, cost accounting,
//!   write-after-read validation, and the storage backends
//!   (`pm::backend`) that decide where the words physically live.
//! * [`core`] (`ppm-core`) — capsules, continuations, restart semantics,
//!   join cells, fork-join combinators, machines (including durable
//!   machines: `core::Machine::create_durable` / `core::Machine::reopen`).
//! * [`sched`] (`ppm-sched`) — the fault-tolerant WS-deque and scheduler,
//!   the ABP baseline, the `Runtime` session object with cross-process
//!   crash recovery, and the checkpoint subsystem
//!   (`sched::checkpoint`).
//! * [`sim`] (`ppm-sim`) — the Theorem 3.2–3.4 virtual machines and their
//!   PM-model simulations.
//! * [`algs`] (`ppm-algs`) — prefix sums, merging, sorting, matrix
//!   multiply.
//! * [`obs`] (`ppm-obs`) — the observability layer: a typed metrics
//!   registry every machine carries (`core::Machine::obs`), a
//!   dependency-free Prometheus text exporter (`obs::MetricsServer`,
//!   enabled with `PPM_METRICS_PORT`), and ring-buffered structured
//!   event tracing (`obs::Tracer`, enabled with `PPM_TRACE_FILE`).
//!
//! ## Durability: surviving real crashes, not just simulated faults
//!
//! The model's "persistent" memory is only as persistent as its storage.
//! By default a machine's words are in-process atomics (persistence spans
//! the *simulated* faults of the fault adversary); a machine built with
//! `core::Machine::create_durable` instead maps its word array onto a file
//! (`pm::backend::MmapBackend`) behind a versioned superblock. Stores
//! reach the kernel page cache as they retire — they survive `kill -9` —
//! and `core::Machine::flush` (`msync`) is the explicit boundary at which
//! they also survive machine failure.
//!
//! After a crash, a fresh process opens a session on the file
//! (`sched::Runtime::open` — which validates the superblock, replays the
//! deterministic address-space layout, and bumps the run epoch) and
//! `sched::Runtime::run_or_recover` drives the computation to completion
//! with every effect applied exactly once:
//!
//! * **Resume**: computations built from *registered persistent
//!   capsules* — continuations stored as `(capsule_id, args…)` frames in
//!   persistent memory (`pm::frame`), re-materialized through
//!   `core::CapsuleRegistry` — have their in-flight deque entries and
//!   restart pointers rehydrated and re-planted, so recovery pays only
//!   for the work that was lost. All §7 algorithms ship in this form
//!   (`algs::PrefixSum::pcomp`, `algs::MergeSort::pcomp`,
//!   `algs::SampleSort::pcomp`, `algs::MatMul::pcomp`);
//!   `examples/crash_resume.rs` SIGKILLs a worker and verifies the
//!   resumed run beats a from-root replay.
//! * **Checkpoint resume** (`sched::checkpoint`): persistent runs
//!   periodically quiesce to flush only their dirty pages, write a
//!   durable checkpoint record, and garbage-collect dead frame-pool
//!   words. When a crash frontier is not directly resumable, recovery
//!   re-plants the newest checkpoint's frontier instead of replaying
//!   from the root — replay distance is bounded by one checkpoint
//!   epoch (`examples/checkpointed_run.rs`).
//! * **Replay** (`sched::Runtime::run_or_replay`, also the last-resort
//!   fallback of `run_or_recover`): legacy closure computations are
//!   scrubbed and re-driven from the root, relying on capsule idempotence
//!   for exactly-once effects. `examples/crash_recovery.rs` demonstrates
//!   this scenario end to end.
//!
//! ## Quickstart
//!
//! ```
//! use ppm::core::{comp_step, par_all};
//! use ppm::pm::{FaultConfig, PmConfig, ProcCtx};
//! use ppm::sched::{Runtime, RuntimeConfig};
//!
//! // A session on a 4-processor machine where every persistent access
//! // faults with probability 1% (soft faults: the processor restarts
//! // its capsule).
//! let rt = Runtime::volatile(
//!     RuntimeConfig::new(PmConfig::parallel(4, 1 << 20).with_fault(FaultConfig::soft(0.01, 42)))
//!         .with_slots(256),
//! );
//! let out = rt.machine().alloc_region(16);
//!
//! // Sixteen parallel tasks, each one idempotent capsule.
//! let comp = par_all(
//!     (0..16)
//!         .map(|i| comp_step("task", move |ctx: &mut ProcCtx| ctx.pwrite(out.at(i), i as u64 + 1)))
//!         .collect(),
//! );
//!
//! let report = rt.run_or_replay(&comp);
//! assert!(report.completed());
//! for i in 0..16 {
//!     assert_eq!(rt.machine().mem().load(out.at(i)), i as u64 + 1);
//! }
//! ```

pub use ppm_algs as algs;
pub use ppm_core as core;
pub use ppm_obs as obs;
pub use ppm_pm as pm;
pub use ppm_sched as sched;
pub use ppm_sim as sim;
