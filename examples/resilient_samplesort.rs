//! The newly ported samplesort surviving `kill -9`: a worker process
//! sorts 12k keys with the registered persistent samplesort
//! (`SampleSort::pcomp` — row sorts, sampling, pivots, counts transpose,
//! prefix sums, bucket scatter, per-bucket recursion, all as typed
//! frames), the parent SIGKILLs it while the output array is filling in,
//! and a fresh `Runtime` session resumes the pipeline from its persisted
//! crash frontier instead of replaying from the root.
//!
//! Verified on every attempt: the recovered output equals `sort_unstable`
//! on the input. The scenario retries until one attempt demonstrates an
//! actual `Resumed`-mode recovery (a kill can land after the completion
//! flag, or in one of the narrow windows where recovery correctly falls
//! back to replay).
//!
//! Run with `cargo run --release --example resilient_samplesort`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("child") => scenario::child(&args[2]),
        _ => scenario::parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("resilient_samplesort needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
mod scenario {
    use std::path::Path;
    use std::time::{Duration, Instant};

    use ppm::algs::{samplesort_pool_words, SampleSort};
    use ppm::core::Machine;
    use ppm::pm::{PmConfig, Region, Word, SUPERBLOCK_BYTES};
    use ppm::sched::{Runtime, RuntimeConfig, SessionMode};

    const PROCS: usize = 4;
    const WORDS: usize = 1 << 23;
    const N: usize = 12_000;
    /// Small ephemeral memory deepens the recursion (more capsules, a
    /// wider kill window).
    const M_EPH: usize = 256;
    const SLOTS: usize = 1 << 15;
    /// Kill once this many output words are in place (values are >= 1,
    /// so nonzero means written) — mid-way through the pipeline's final
    /// phases.
    const KILL_AT: usize = N / 20;
    const MAX_ATTEMPTS: usize = 8;

    fn runtime_cfg() -> RuntimeConfig {
        RuntimeConfig::new(PmConfig::parallel(PROCS, WORDS).with_ephemeral_words(M_EPH))
            .with_pool_words(samplesort_pool_words(N))
            .with_slots(SLOTS)
    }

    fn input() -> Vec<Word> {
        (0..N as u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(42);
                1 + (x ^ (x >> 29)) % 1_000_000
            })
            .collect()
    }

    /// The deterministic construction every process lifetime replays.
    fn build(machine: &Machine) -> SampleSort {
        let ss = SampleSort::new(machine, N);
        ss.load_input(machine, &input());
        ss
    }

    pub fn child(path: &str) {
        let rt = Runtime::create(path, runtime_cfg()).expect("create durable session");
        let ss = build(rt.machine());
        let rep = rt.run_or_recover(&ss.pcomp());
        rt.mark_clean().expect("flush completed run");
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    fn count_written(file: &std::fs::File, output: Region) -> usize {
        use std::os::unix::fs::FileExt;
        // Sample every 16th word: cheap, and plenty for a progress gate.
        let mut buf = [0u8; 8];
        (0..N)
            .step_by(16)
            .filter(|i| {
                let off = (SUPERBLOCK_BYTES + output.at(*i) * 8) as u64;
                file.read_exact_at(&mut buf, off).is_ok() && u64::from_le_bytes(buf) != 0
            })
            .count()
            * 16
    }

    pub fn parent() {
        let mut expect = input();
        expect.sort_unstable();
        for attempt in 1..=MAX_ATTEMPTS {
            match run_scenario(attempt, &expect) {
                true => return,
                false => println!("attempt {attempt}: no resume observed; retrying\n"),
            }
        }
        panic!("no attempt out of {MAX_ATTEMPTS} observed a resume — statistically absurd");
    }

    fn run_scenario(attempt: usize, expect: &[Word]) -> bool {
        // Guarded path: removed when the attempt ends, even on a panic.
        let file = ppm::pm::TempMachineFile::new(&format!("resilient-ssort-{attempt}"));
        let path = file.path();

        // Probe the deterministic layout for the output region.
        let output = {
            let probe = Machine::with_pool_words(
                PmConfig::parallel(PROCS, WORDS).with_ephemeral_words(M_EPH),
                samplesort_pool_words(N),
            );
            let ss = SampleSort::new(&probe, N);
            ss.output
        };

        println!("spawning samplesort worker on {}", path.display());
        let exe = std::env::current_exe().expect("current_exe");
        let mut worker = std::process::Command::new(exe)
            .arg("child")
            .arg(path)
            .spawn()
            .expect("spawn child worker");

        let progress = wait_for_progress(path, output, &mut worker);
        worker.kill().expect("SIGKILL child");
        let status = worker.wait().expect("reap child");
        if progress.is_none() {
            // The child finished before the kill window opened.
            println!("child completed before the kill landed (exit {status:?})");
            return false;
        }
        println!(
            "killed child at ~{}/{N} output words (exit: {status:?})",
            progress.unwrap()
        );

        // --- the recovering process ---
        let rt = Runtime::open(path, runtime_cfg()).expect("open session");
        let ss = build(rt.machine());
        let rec = rt.run_or_recover(&ss.pcomp());
        assert!(rec.completed(), "recovery must finish the sort");
        println!(
            "session mode: {:?} — {} frontier entries re-planted ({} jobs, {} locals, \
             {} taken found)",
            rec.mode, rec.resumed, rec.found_jobs, rec.found_locals, rec.found_taken,
        );
        assert_eq!(
            ss.read_output(rt.machine()),
            expect,
            "recovered output must be the sorted input"
        );
        rt.mark_clean().expect("record clean shutdown");
        let resumed = rec.mode == SessionMode::Resumed;
        if resumed {
            println!(
                "samplesort survived kill -9: resumed {} in-flight threads and produced \
                 a correct sort of {N} keys",
                rec.resumed
            );
        } else if let Some(reason) = rec.fallback_reason {
            println!("correct, but fell back to replay: {reason}");
        }
        resumed
    }

    /// Waits until the output region is partially written; `None` if the
    /// child exits first.
    fn wait_for_progress(
        path: &Path,
        output: Region,
        worker: &mut std::process::Child,
    ) -> Option<usize> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            assert!(Instant::now() < deadline, "child made no progress in 120s");
            if worker.try_wait().expect("try_wait").is_some() {
                return None;
            }
            if let Ok(file) = std::fs::File::open(path) {
                let written = count_written(&file, output);
                if written >= KILL_AT {
                    return Some(written);
                }
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    }
}
