//! The §4 persistent-counter idiom, and why the naive version breaks.
//!
//! "Persistent counters can be implemented by placing a commit between
//! reading the old value and writing the new." This example runs both the
//! broken in-place counter (read x, write x+1 in one capsule — a
//! write-after-read conflict) and the paper's two-cell version under the
//! same fault storm, and shows the divergence. The broken version requires
//! turning the strict validator off; with the default strict mode it
//! panics at the first conflicting access instead.
//!
//! ```sh
//! cargo run --release --example persistent_counter
//! ```

use ppm::core::{capsule, final_capsule, run_chain, InstallCtx, Machine, Next};
use ppm::pm::{FaultConfig, PmConfig, ValidateMode};

const INCREMENTS: usize = 200;
const F: f64 = 0.1;

fn main() {
    println!("{INCREMENTS} increments under soft-fault probability f = {F}\n");

    // --- broken: in-place read-modify-write in one capsule ---------------
    let broken = {
        let m = Machine::new(
            PmConfig::parallel(1, 1 << 18)
                .with_fault(FaultConfig::soft(F, 7))
                // Strict mode would panic on the WAR conflict; record it
                // instead so we can watch the value drift.
                .with_validate(ValidateMode::Record),
        );
        let x = m.alloc_region(1).start;
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        for _ in 0..INCREMENTS {
            let inc = capsule("naive-inc", move |ctx| {
                let v = ctx.pread(x)?; // exposed read...
                ctx.pwrite(x, v + 1)?; // ...then write to the same word
                Ok(Next::End)
            });
            run_chain(&mut ctx, m.arena(), &mut install, inc).unwrap();
        }
        let snap = m.snapshot();
        (m.mem().load(x), snap.soft_faults, snap.war_conflicts)
    };

    // --- the paper's fix: commit between read and write ------------------
    let fixed = {
        let m = Machine::new(PmConfig::parallel(1, 1 << 18).with_fault(FaultConfig::soft(F, 7)));
        // Two cells, alternating: capsule 2k reads cell (k-1)%2, writes
        // cell k%2. Each capsule reads one word and writes the *other* —
        // conflict free, so strict validation stays on.
        let cells = m.alloc_region(2);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        for k in 0..INCREMENTS {
            let (src, dst) = (cells.at((k + 1) % 2), cells.at(k % 2));
            let first = k == 0;
            let inc = final_capsule("inc", move |ctx| {
                let v = if first { 0 } else { ctx.pread(src)? };
                ctx.pwrite(dst, v + 1)
            });
            run_chain(&mut ctx, m.arena(), &mut install, inc).unwrap();
        }
        let snap = m.snapshot();
        (
            m.mem().load(cells.at((INCREMENTS + 1) % 2)),
            snap.soft_faults,
        )
    };

    println!(
        "naive in-place counter : {} (faults: {}, WAR conflicts recorded: {})",
        broken.0, broken.1, broken.2
    );
    println!("two-cell counter       : {} (faults: {})", fixed.0, fixed.1);
    println!("\nexpected value         : {INCREMENTS}");

    assert_eq!(fixed.0 as usize, INCREMENTS, "the paper's idiom is exact");
    assert!(
        broken.0 as usize > INCREMENTS,
        "the naive counter over-counts: every fault after its write re-runs \
         the increment against its own result"
    );
    println!("\nthe naive capsule re-reads its own write after each fault and");
    println!("over-counts by ~1 per restart; the commit between read and write");
    println!("(a capsule boundary) makes each increment exactly-once. This is");
    println!("§4's persistent counter, and why strict mode bans WAR conflicts.");
}
