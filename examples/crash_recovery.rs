//! Real crash recovery: a worker process is SIGKILLed mid-computation and
//! a fresh process finishes the run off the durable file.
//!
//! This is the paper's hard-fault story lifted across process lifetimes.
//! The parent process:
//!
//! 1. spawns a child worker that creates a durable machine
//!    (`Machine::create_durable`) and runs a 200-task computation on the
//!    fault-tolerant scheduler, each task CAM-marking its own persistent
//!    cell (the §5 test-and-set idiom, so the mark is a once-only effect);
//! 2. watches the durable file until some — but not all — marker cells are
//!    set, then delivers `SIGKILL` (no handler can run: this is a real
//!    crash, not a simulated fault);
//! 3. opens a fresh `Runtime` session on the file, reports how much
//!    progress the dead run had made, and calls `run_or_replay`, which
//!    re-attaches fresh OS threads to the persisted scheduler state and
//!    drives the computation to completion;
//! 4. verifies exactly-once effects: every marker cell holds its expected
//!    value, cells the dead run already marked were never written again
//!    during recovery (observed with a write observer), and cells it had
//!    not marked were written exactly once.
//!
//! Run with `cargo run --release --example crash_recovery`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("child") => child(&args[2]),
        _ => parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("crash_recovery needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
use scenario::{child, parent};

#[cfg(unix)]
mod scenario {
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ppm::core::{comp_step, par_all, Comp, Machine};
    use ppm::pm::{PmConfig, ProcCtx, Region, Word, SUPERBLOCK_BYTES};
    use ppm::sched::{Runtime, RuntimeConfig};

    const PROCS: usize = 4;
    const WORDS: usize = 1 << 21;
    const TASKS: usize = 200;
    const SLOTS: usize = 1 << 12;
    /// Costed reads per task (busy work, so the run is killable mid-way).
    const BUSY_READS: usize = 64;
    /// Wall-clock pause per task, same purpose.
    const TASK_SLEEP: Duration = Duration::from_millis(3);
    /// Kill the child once this many markers are set.
    const KILL_AT: usize = 24;

    fn machine_cfg() -> PmConfig {
        PmConfig::parallel(PROCS, WORDS)
    }

    fn runtime_cfg() -> RuntimeConfig {
        RuntimeConfig::new(machine_cfg()).with_slots(SLOTS)
    }

    /// The deterministic user-allocation sequence. Creating run, probe,
    /// and recovering run all perform exactly these calls, in this order,
    /// so every region lands at the same persistent address.
    fn alloc_regions(m: &Machine) -> (Region, Region) {
        let scratch = m.alloc_region(1024);
        let markers = m.alloc_region(TASKS);
        (scratch, markers)
    }

    /// The computation: `TASKS` parallel tasks; task `i` performs busy
    /// reads, pauses, and CAMs marker cell `i` from unset to `i + 1`. The
    /// CAM makes the mark a once-only effect no matter how many times the
    /// task body runs (simulated-fault restarts and crash-recovery replay
    /// alike).
    fn build_comp(scratch: Region, markers: Region) -> Comp {
        par_all(
            (0..TASKS)
                .map(|i| {
                    comp_step("mark", move |ctx: &mut ProcCtx| {
                        for k in 0..BUSY_READS {
                            ctx.pread(scratch.at((i * 31 + k * 7) % scratch.len))?;
                        }
                        std::thread::sleep(TASK_SLEEP);
                        ctx.pcam(markers.at(i), 0, i as Word + 1)
                    })
                })
                .collect(),
        )
    }

    pub fn child(path: &str) {
        let rt = Runtime::create(path, runtime_cfg()).expect("create durable session");
        let (scratch, markers) = alloc_regions(rt.machine());
        let rep = rt.run_or_replay(&build_comp(scratch, markers));
        rt.mark_clean().expect("flush completed run");
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    /// Byte offset of marker cell `i` inside the durable file.
    fn marker_offset(markers: Region, i: usize) -> u64 {
        (SUPERBLOCK_BYTES + markers.at(i) * 8) as u64
    }

    /// Reads how many marker cells are set, straight from the file (the
    /// page cache is coherent with the child's shared mapping).
    fn count_set_markers(file: &std::fs::File, markers: Region) -> usize {
        use std::os::unix::fs::FileExt;
        let mut buf = [0u8; 8];
        (0..TASKS)
            .filter(|i| {
                file.read_exact_at(&mut buf, marker_offset(markers, *i))
                    .is_ok()
                    && u64::from_le_bytes(buf) != 0
            })
            .count()
    }

    pub fn parent() {
        // Guarded path: removed when the scenario ends, even on a panic.
        let file = ppm::pm::TempMachineFile::new("crash-recovery");
        let path = file.path();

        // The layout is deterministic, so a throwaway volatile machine of
        // the same shape tells the parent where the child's markers live.
        let markers = {
            let probe = Machine::new(machine_cfg());
            alloc_regions(&probe).1
        };

        println!("spawning worker child on {}", path.display());
        let exe = std::env::current_exe().expect("current_exe");
        let mut worker = std::process::Command::new(exe)
            .arg("child")
            .arg(path)
            .spawn()
            .expect("spawn child worker");

        // Wait for partial progress, then kill -9.
        let progress_at_kill = wait_for_progress(path, markers, &mut worker);
        worker.kill().expect("SIGKILL child");
        let status = worker.wait().expect("reap child");
        println!("killed child mid-run at {progress_at_kill}/{TASKS} markers (exit: {status:?})");
        assert!(
            progress_at_kill < TASKS,
            "child finished before the kill; raise TASK_SLEEP or lower KILL_AT"
        );

        // --- the recovering process's view ---
        let rt = Runtime::open(path, runtime_cfg()).expect("open session on durable file");
        let (scratch, markers) = alloc_regions(rt.machine());
        let pre: Vec<bool> = (0..TASKS)
            .map(|i| rt.machine().mem().load(markers.at(i)) != 0)
            .collect();
        let pre_count = pre.iter().filter(|b| **b).count();
        println!(
            "opened session (epoch {}): crash left {pre_count}/{TASKS} tasks marked",
            rt.machine().epoch()
        );
        assert!(pre_count > 0, "kill threshold guarantees some progress");
        assert!(pre_count < TASKS, "child was killed mid-run");

        // Count every recovery-time mutation of each marker cell.
        let write_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..TASKS).map(|_| AtomicU64::new(0)).collect());
        let wc = write_counts.clone();
        rt.machine()
            .mem()
            .set_observer(Some(Arc::new(move |addr, _prev, _new| {
                if markers.contains(addr) {
                    wc[addr - markers.start].fetch_add(1, Ordering::Relaxed);
                }
            })));

        let rec = rt.run_or_replay(&build_comp(scratch, markers));
        let run = rec.run.as_ref().expect("crash left the run incomplete");
        assert!(run.completed, "recovery must finish the computation");
        println!(
            "recovered: {} in-flight deque entries found ({} jobs, {} locals, {} taken), \
             {} live restart pointers; recovery ran {} capsules in {:?}",
            rec.found_in_flight(),
            rec.found_jobs,
            rec.found_locals,
            rec.found_taken,
            rec.live_restart_pointers,
            run.stats.capsule_completions,
            run.elapsed,
        );

        // Exactly-once verification.
        let mut recovered = 0;
        for i in 0..TASKS {
            assert_eq!(
                rt.machine().mem().load(markers.at(i)),
                i as Word + 1,
                "marker {i} must hold its once-only value"
            );
            let writes = write_counts[i].load(Ordering::Relaxed);
            if pre[i] {
                assert_eq!(
                    writes, 0,
                    "marker {i} was set before the crash; recovery must not rewrite it"
                );
            } else {
                assert_eq!(
                    writes, 1,
                    "marker {i} must be written exactly once during recovery"
                );
                recovered += 1;
            }
        }
        rt.mark_clean().expect("record clean shutdown");
        println!(
            "exactly-once verified: {pre_count} markers from the killed run + {recovered} from \
             recovery = {TASKS}, none written twice"
        );
    }

    fn wait_for_progress(path: &Path, markers: Region, worker: &mut std::process::Child) -> usize {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "child made no progress in 60s");
            if let Some(status) = worker.try_wait().expect("try_wait") {
                panic!("child exited ({status:?}) before it could be killed mid-run");
            }
            if let Ok(file) = std::fs::File::open(path) {
                let set = count_set_markers(&file, markers);
                if set >= KILL_AT {
                    return set;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
