//! The persistent job service at OS scale: N worker *processes* attach
//! to one `MAP_SHARED` service machine file, pulling jobs from the
//! durable injector ring while the parent submits a continuous stream
//! through [`ppm::sched::ServiceHandle`]. The parent SIGKILLs one
//! worker mid-stream; the stream keeps flowing — survivors pull what
//! the dead worker would have, jobs the victim had claimed are rescued
//! at a bumped claim epoch, and every ticket still resolves `Done`
//! exactly once (the §5 done-CAM guarantee).
//!
//! Verified on every attempt: all tickets resolve with unique ticket
//! numbers, every job's output slice is written, and the ring drains to
//! zero before shutdown. With at least two shards the attempt must also
//! demonstrate *live-shard stealing* — a pulled job's forked subtasks
//! crossing shard boundaries through the ordinary steal protocol — and,
//! when `PPM_METRICS_PORT` is set, prove it from the aggregated scrape
//! alone: some shard's `ppm_live_steals_total` is nonzero and every
//! `ppm_service_queue_depth` series reads 0 after the drain.
//!
//! `PPM_SHARD_WORKERS` selects the worker count (default 4). With `1`
//! the kill leaves no pullers at all: the parent heals the service by
//! spawning a replacement worker for the same shard, which republishes
//! the tombstoned lease and finishes the stream — the coverage the CI
//! fault matrix's single-worker leg wants.
//!
//! Run with `cargo run --release --example job_service`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("worker") => scenario::worker(&args[2], args[3].parse().expect("shard index")),
        _ => scenario::parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("job_service needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
mod scenario {
    use std::collections::VecDeque;
    use std::net::Ipv4Addr;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use ppm::core::{dsl, Machine, Persist};
    use ppm::pm::{PmConfig, Region, TempMachineFile, Word};
    use ppm::sched::cluster::{self, ClusterBuilder, ShardBuild};
    use ppm::sched::{JobReport, JobTicket, ServiceConfig};

    const PROCS_PER_SHARD: usize = 2;
    const WORDS: usize = 1 << 22;
    /// Jobs the parent streams through the service per attempt.
    const TOTAL_JOBS: usize = 48;
    /// Output words per job; grain 4 fans each job into ~128 stealable
    /// leaves, so pulled jobs overflow their claimant's shard.
    const JOB_SLICE: usize = 512;
    const GRAIN: usize = 4;
    /// Ring slots — smaller than the stream, so submission exercises the
    /// `WouldBlock` backpressure path too.
    const SLOTS: usize = 16;
    /// SIGKILL the victim after this many submissions ("mid-stream").
    const KILL_AFTER: usize = TOTAL_JOBS / 3;
    const AWAIT_TIMEOUT: Duration = Duration::from_secs(60);
    const MAX_ATTEMPTS: usize = 6;

    fn workers() -> usize {
        std::env::var("PPM_SHARD_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| (1..=8).contains(n))
            .unwrap_or(4)
    }

    /// The deterministic construction every process replays: one shared
    /// output region plus the job kind — `job/split` fans a span into
    /// `job/mark` leaves writing `i + 1`. Service mode never plants the
    /// returned root; the registrations and the region are the point.
    fn build(out_slot: Arc<Mutex<Option<Region>>>) -> ShardBuild {
        Arc::new(move |m: &Machine, shard: usize, k: Word| {
            // One region for the whole stream, allocated only on the
            // first shard's build call (the closure runs once per shard
            // in every process; the alloc sequence must be identical).
            let out = if shard == 0 {
                let r = m.alloc_region(TOTAL_JOBS * JOB_SLICE);
                *out_slot.lock().unwrap() = Some(r);
                r
            } else {
                out_slot.lock().unwrap().expect("shard 0 builds first")
            };
            let mut set = dsl::CapsuleSet::new(m);
            let leaf = set.define("job/mark", |st: &dsl::Span<Region>, k, ctx| {
                for i in st.lo..st.hi {
                    ctx.pwrite(st.env.at(i), i as u64 + 1)?;
                }
                Ok(dsl::Step::Jump(k))
            });
            let split = set.map_grain("job/split", GRAIN, leaf);
            split
                .setup(
                    m,
                    &dsl::Span {
                        env: out,
                        lo: 0,
                        hi: 0,
                    },
                    dsl::K(k),
                )
                .0
        })
    }

    fn span_args(out: Region, job: usize) -> Vec<Word> {
        let mut args = Vec::new();
        dsl::Span {
            env: out,
            lo: job * JOB_SLICE,
            hi: (job + 1) * JOB_SLICE,
        }
        .encode(&mut args);
        args
    }

    pub fn worker(path: &str, shard: usize) {
        let rep = cluster::run_worker(path, shard, &build(Arc::new(Mutex::new(None))))
            .expect("worker session");
        if let Some(summary) = &rep.cluster {
            let own = &summary.shard_reports[shard];
            println!(
                "worker {shard}: completed={} adopted_jobs={} declared_dead={:?}",
                rep.completed(),
                own.adopted_jobs,
                summary.dead_shards,
            );
        }
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    pub fn parent() {
        let shards = workers();
        println!("job service scenario: {shards} worker processes x {PROCS_PER_SHARD} procs");
        for attempt in 1..=MAX_ATTEMPTS {
            if run_scenario(attempt, shards) {
                return;
            }
            println!("attempt {attempt}: stream completed but no live steal observed; retrying\n");
        }
        panic!("no attempt out of {MAX_ATTEMPTS} showed a live-shard steal — statistically absurd");
    }

    /// One full service lifetime. Returns whether the attempt also
    /// demonstrated what it set out to show (always true for the
    /// single-worker heal leg; for multi-shard runs, a live steal).
    fn run_scenario(attempt: usize, shards: usize) -> bool {
        let file = TempMachineFile::new(&format!("job-service-{attempt}"));
        let out_slot = Arc::new(Mutex::new(None));
        let build = build(out_slot.clone());
        let exe = std::env::current_exe().expect("current_exe");
        let worker_cmd = |s: usize| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("worker").arg(file.path()).arg(s.to_string());
            cmd
        };

        let mut handle = ClusterBuilder::new(file.path())
            .machine(PmConfig::parallel(shards * PROCS_PER_SHARD, WORDS))
            .workers(shards)
            .lease_ms(600)
            .deque_slots(1 << 12)
            .service_config(ServiceConfig::default().with_slots(SLOTS))
            .spawn(&build, worker_cmd)
            .expect("spawn service");
        let out = out_slot.lock().unwrap().expect("builder recorded region");
        let metrics_port = ppm::obs::Obs::metrics_port_from_env();

        // Stream the jobs. The ring is smaller than the stream, so on
        // WouldBlock the oldest outstanding ticket is awaited (reclaiming
        // its slot) before retrying — backpressure, never a drop.
        let victim = shards - 1;
        let mut killed = false;
        let mut healer: Option<std::process::Child> = None;
        let mut pending: VecDeque<JobTicket> = VecDeque::new();
        let mut reports: Vec<JobReport> = Vec::new();
        let mut last_scrape = String::new();
        let mut next_scrape = Instant::now();
        for job in 0..TOTAL_JOBS {
            if job == KILL_AFTER {
                handle.kill_worker(victim).expect("victim is alive");
                killed = true;
                println!("attempt {attempt}: worker {victim} SIGKILLed mid-stream");
                if shards == 1 {
                    // No pullers left at all: heal the service by giving
                    // the shard a fresh worker. It republishes the
                    // tombstoned lease and resumes pulling.
                    healer = Some(worker_cmd(victim).spawn().expect("spawn replacement"));
                    println!("attempt {attempt}: replacement worker spawned for shard {victim}");
                }
            }
            let args = span_args(out, job);
            let ticket = loop {
                match handle.submit("job/split", &args) {
                    Ok(t) => break t,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        let oldest = pending.pop_front().expect("full ring implies pending");
                        reports.push(
                            handle
                                .await_job(oldest, AWAIT_TIMEOUT)
                                .expect("backpressured job resolves"),
                        );
                    }
                    Err(e) => panic!("submit failed: {e}"),
                }
            };
            pending.push_back(ticket);
            // Keep the aggregate exporter's per-worker cache warm so the
            // victim's last-seen series survive into the final scrape.
            if let Some(port) = metrics_port {
                if Instant::now() >= next_scrape {
                    if let Ok(text) = scrape(port) {
                        last_scrape = text;
                    }
                    next_scrape = Instant::now() + Duration::from_millis(150);
                }
            }
        }
        while let Some(t) = pending.pop_front() {
            reports.push(
                handle
                    .await_job(t, AWAIT_TIMEOUT)
                    .expect("streamed job resolves"),
            );
        }
        assert!(killed, "the kill must land mid-stream");

        // Exactly-once at the ticket level: every submission resolved
        // `Done`, no ticket number twice, and the ring is empty.
        assert_eq!(reports.len(), TOTAL_JOBS, "every submitted job resolves");
        let mut nums: Vec<u64> = reports.iter().map(|r| r.ticket.ticket).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), TOTAL_JOBS, "ticket numbers are unique");
        let rescued = reports.iter().filter(|r| r.rescues() > 0).count();
        handle
            .drain(Duration::from_secs(30))
            .expect("drain an already-empty ring");
        println!(
            "attempt {attempt}: {TOTAL_JOBS} tickets resolved exactly-once \
             ({rescued} via rescue at a bumped claim epoch)"
        );

        // Final scrape while the workers still serve: the post-drain
        // queue depth and the cross-shard steal counters.
        if let Some(port) = metrics_port {
            if let Ok(text) = scrape(port) {
                last_scrape = text;
            }
        }

        let report = handle.shutdown().expect("service shutdown");
        if let Some(child) = healer.as_mut() {
            // The replacement worker halts on the same done flag the
            // shutdown set; reap it (killing a straggler).
            let grace = Instant::now() + Duration::from_secs(10);
            while Instant::now() < grace && child.try_wait().expect("try_wait").is_none() {
                std::thread::sleep(Duration::from_millis(10));
            }
            let _ = child.kill();
            let _ = child.wait();
        }
        let summary = report.cluster.as_ref().expect("cluster summary");
        if shards > 1 {
            assert!(
                summary.dead_shards.contains(&victim),
                "the killed worker must be reported dead"
            );
        }

        // Exactly-once at the effect level: every job's slice is filled.
        let machine = Machine::attach(
            file.path(),
            ppm::pm::FaultConfig::none(),
            ppm::pm::ValidateMode::Strict,
        )
        .expect("attach for verification");
        for i in 0..TOTAL_JOBS * JOB_SLICE {
            assert_eq!(
                machine.mem().load(out.at(i)),
                i as u64 + 1,
                "job output word {i}"
            );
        }
        println!("attempt {attempt}: all {TOTAL_JOBS} job slices written exactly-once");

        // Multi-shard runs must demonstrate live-shard stealing; with
        // the scrape surface on, it must be legible from metrics alone.
        if shards == 1 {
            println!("single-worker leg: kill + heal + completed stream demonstrated");
            return true;
        }
        match metrics_port {
            Some(_) => {
                let steals = scraped_live_steals(&last_scrape);
                assert_depth_drained(&last_scrape, victim);
                println!("metrics scrape: {steals} live-shard steals across survivors");
                steals > 0
            }
            // Without the scrape surface the counters live only inside
            // the worker processes; completion is all we can check here.
            None => true,
        }
    }

    /// One scrape of the parent's aggregate exporter.
    fn scrape(port: u16) -> std::io::Result<String> {
        ppm::obs::http_get(
            (Ipv4Addr::LOCALHOST, port),
            "/metrics",
            Duration::from_secs(2),
        )
    }

    /// Sum of `ppm_live_steals_total` over every shard series.
    fn scraped_live_steals(scrape: &str) -> u64 {
        assert!(!scrape.is_empty(), "aggregate exporter never answered");
        scrape
            .lines()
            .filter(|l| l.starts_with("ppm_live_steals_total"))
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
            .sum()
    }

    /// After the drain every `ppm_service_queue_depth` series must read
    /// zero — except the killed worker's, whose post-mortem series is
    /// the aggregate's cache of its last scrape before the SIGKILL and
    /// legitimately freezes at whatever depth it last saw.
    fn assert_depth_drained(scrape: &str, victim: usize) {
        let stale = format!("shard=\"{victim}\"");
        let mut seen = false;
        for line in scrape
            .lines()
            .filter(|l| l.starts_with("ppm_service_queue_depth") && !l.contains(&stale))
        {
            seen = true;
            let v: f64 = line
                .rsplit_once(' ')
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(f64::NAN);
            assert_eq!(v, 0.0, "drained ring must scrape as depth 0: {line}");
        }
        assert!(seen, "queue depth gauge missing from scrape:\n{scrape}");
    }
}
