//! Real crash **resume**: a worker process is SIGKILLed mid-computation
//! and a fresh process *resumes* the persisted deques instead of replaying
//! the computation from its root.
//!
//! This is `examples/crash_recovery.rs` upgraded to the typed persistent
//! API: the computation is a `ppm_core::dsl` parallel map whose every
//! continuation is a typed frame in persistent memory, so the recovering
//! process rehydrates the crash frontier through the capsule registry
//! (`Runtime::run_or_recover`) and pays only for the work that was lost.
//!
//! The parent process:
//!
//! 1. spawns a child worker that creates a durable `Runtime` session and
//!    runs a 200-task registered computation, each task CAM-marking its
//!    own persistent cell (a once-only effect);
//! 2. watches the durable file until some — but not all — markers are set,
//!    then delivers `SIGKILL` (a real crash, no handler runs);
//! 3. opens a fresh session on the file, rebuilds the computation
//!    deterministically, and calls `run_or_recover`;
//! 4. verifies the run **resumed**: the report says
//!    `mode == Resumed` with `resumed > 0` re-planted frontier entries,
//!    the recovery executed strictly fewer *task* capsules than the dead
//!    run's total and strictly less write-work than a from-root replay of
//!    the workload, and every marker holds its exactly-once value (cells
//!    marked before the kill were never rewritten).
//!
//! Write-work (external writes) is the resume-cost metric here: on a
//! timed multi-processor workload, idle processors polling for steals
//! burn wall-clock-dependent capsules (and install writes) while their
//! peers sleep inside task bodies, so raw capsule counts vary run to
//! run; killing late keeps the resume-vs-replay gap far beyond that
//! noise. The deterministic single-processor variant of this scenario in
//! `tests/crash_resume.rs` asserts the strict capsule-count inequality
//! exactly.
//!
//! A crash can land in one of the narrow windows where the frontier is
//! ambiguous (e.g. a steal mid-transfer); recovery then falls back to
//! replay-from-root, which is correct but not the point of this example —
//! the scenario retries with a fresh file until a resume is observed
//! (virtually always the first attempt, since task bodies dominate the
//! schedule).
//!
//! Run with `cargo run --release --example crash_resume`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("child") => child(&args[2]),
        _ => parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("crash_resume needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
use scenario::{child, parent};

#[cfg(unix)]
mod scenario {
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ppm::core::dsl::{CapsuleSet, Span, Step, K};
    use ppm::core::{Machine, PComp};
    use ppm::pm::{PmConfig, Region, Word, SUPERBLOCK_BYTES};
    use ppm::sched::{Runtime, RuntimeConfig, SessionMode};

    const PROCS: usize = 4;
    const WORDS: usize = 1 << 21;
    const TASKS: usize = 200;
    const SLOTS: usize = 1 << 12;
    /// Costed reads per task (busy work, so the run is killable mid-way).
    const BUSY_READS: usize = 64;
    /// Wall-clock pause per task, same purpose.
    const TASK_SLEEP: Duration = Duration::from_millis(3);
    /// Kill the child once this many markers are set. Killing *late*
    /// makes the resumed-vs-replay gap wide (a ~20%-remaining frontier
    /// costs a fraction of a full replay), so the strict write-work
    /// inequality holds with a margin far beyond scheduler-idle noise.
    const KILL_AT: usize = 160;
    /// Scenario retries before giving up on observing a resume.
    const MAX_ATTEMPTS: usize = 5;

    fn runtime_cfg() -> RuntimeConfig {
        RuntimeConfig::new(PmConfig::parallel(PROCS, WORDS)).with_slots(SLOTS)
    }

    /// The deterministic user-allocation sequence, replayed identically by
    /// the creating run, the parent's probe, and the recovering run.
    fn alloc_regions(m: &Machine) -> (Region, Region) {
        let scratch = m.alloc_region(1024);
        let markers = m.alloc_region(TASKS);
        (scratch, markers)
    }

    /// The task tree as a typed DSL map: a leaf performs busy reads,
    /// pauses, and CAMs its marker from unset to `i + 1` (once-only under
    /// restarts, replay, and resume alike); the map's internal splits
    /// fork as persistent frames — no hand-packed words anywhere.
    fn build_pcomp(scratch: Region, markers: Region) -> PComp {
        Arc::new(move |machine: &Machine, finale: Word| {
            let mut set = CapsuleSet::new(machine);
            let leaf = set.define("resume/task", move |st: &Span<()>, k, ctx| {
                let i = st.lo;
                for b in 0..BUSY_READS {
                    ctx.pread(scratch.at((i * 31 + b * 7) % scratch.len))?;
                }
                std::thread::sleep(TASK_SLEEP);
                ctx.pcam(markers.at(i), 0, i as Word + 1)?;
                Ok(Step::Jump(k))
            });
            let span = set.map_grain("resume/span", 1, leaf);
            span.setup(
                machine,
                &Span {
                    env: (),
                    lo: 0,
                    hi: TASKS,
                },
                K(finale),
            )
            .word()
        })
    }

    pub fn child(path: &str) {
        let rt = Runtime::create(path, runtime_cfg()).expect("create durable session");
        let (scratch, markers) = alloc_regions(rt.machine());
        let rep = rt.run_or_recover(&build_pcomp(scratch, markers));
        rt.mark_clean().expect("flush completed run");
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    /// External writes a complete from-root run performs (the work a
    /// resume must strictly beat) — measured once on a volatile twin.
    fn full_run_writes() -> u64 {
        let rt = Runtime::volatile(runtime_cfg());
        let (scratch, markers) = alloc_regions(rt.machine());
        let rep = rt.run_or_recover(&build_pcomp(scratch, markers));
        assert!(rep.completed(), "volatile reference run must complete");
        rep.stats().total_writes
    }

    /// Byte offset of marker cell `i` inside the durable file.
    fn marker_offset(markers: Region, i: usize) -> u64 {
        (SUPERBLOCK_BYTES + markers.at(i) * 8) as u64
    }

    /// Reads how many marker cells are set, straight from the file (the
    /// page cache is coherent with the child's shared mapping).
    fn count_set_markers(file: &std::fs::File, markers: Region) -> usize {
        use std::os::unix::fs::FileExt;
        let mut buf = [0u8; 8];
        (0..TASKS)
            .filter(|i| {
                file.read_exact_at(&mut buf, marker_offset(markers, *i))
                    .is_ok()
                    && u64::from_le_bytes(buf) != 0
            })
            .count()
    }

    pub fn parent() {
        let full = full_run_writes();
        println!("from-root replay of the workload costs {full} external writes");
        for attempt in 1..=MAX_ATTEMPTS {
            if run_scenario(attempt, full) {
                return;
            }
            println!("attempt {attempt}: crash landed in an ambiguous window; retrying\n");
        }
        panic!("no attempt out of {MAX_ATTEMPTS} observed a resume — statistically absurd");
    }

    /// One kill-and-recover round. Returns whether recovery *resumed*.
    fn run_scenario(attempt: usize, full_writes: u64) -> bool {
        // Guarded path: removed when the attempt ends, even on a panic.
        let file = ppm::pm::TempMachineFile::new(&format!("crash-resume-{attempt}"));
        let path = file.path();

        // The layout is deterministic, so a throwaway volatile machine of
        // the same shape tells the parent where the child's markers live.
        let markers = {
            let probe = Machine::new(PmConfig::parallel(PROCS, WORDS));
            alloc_regions(&probe).1
        };

        println!("spawning worker child on {}", path.display());
        let exe = std::env::current_exe().expect("current_exe");
        let mut worker = std::process::Command::new(exe)
            .arg("child")
            .arg(path)
            .spawn()
            .expect("spawn child worker");

        // Wait for partial progress, then kill -9.
        let progress_at_kill = wait_for_progress(path, markers, &mut worker);
        worker.kill().expect("SIGKILL child");
        let status = worker.wait().expect("reap child");
        println!("killed child mid-run at {progress_at_kill}/{TASKS} markers (exit: {status:?})");

        // --- the recovering process's view ---
        let rt = Runtime::open(path, runtime_cfg()).expect("open session on durable file");
        let (scratch, markers) = alloc_regions(rt.machine());
        let pre: Vec<bool> = (0..TASKS)
            .map(|i| rt.machine().mem().load(markers.at(i)) != 0)
            .collect();
        let pre_count = pre.iter().filter(|b| **b).count();
        println!(
            "opened session (epoch {}): crash left {pre_count}/{TASKS} tasks marked",
            rt.machine().epoch()
        );
        assert!(pre_count > 0, "kill threshold guarantees progress");
        if pre_count == TASKS {
            // The child outran the SIGKILL (possible on a loaded host);
            // there is nothing mid-flight to resume. Retry.
            println!("child finished every task before the kill landed; retrying");
            return false;
        }

        // Count every recovery-time mutation of each marker cell.
        let write_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..TASKS).map(|_| AtomicU64::new(0)).collect());
        let wc = write_counts.clone();
        rt.machine()
            .mem()
            .set_observer(Some(Arc::new(move |addr, _prev, _new| {
                if markers.contains(addr) {
                    wc[addr - markers.start].fetch_add(1, Ordering::Relaxed);
                }
            })));

        let rec = rt.run_or_recover(&build_pcomp(scratch, markers));
        assert!(rec.completed(), "recovery must finish the computation");
        let Some(run) = rec.run.as_ref() else {
            // All markers were observed unset moments ago, but the kill
            // can still land after the finale capsule set the completion
            // flag; nothing was re-driven, so retry for a real resume.
            println!("dead run had already completed (flag set); retrying");
            return false;
        };
        assert!(run.completed, "recovery must finish the computation");
        println!(
            "session mode: {:?} — {} frontier entries re-planted vs {} in-flight found \
             ({} jobs, {} locals, {} taken); ran {} capsules in {:?}",
            rec.mode,
            rec.resumed,
            rec.found_in_flight(),
            rec.found_jobs,
            rec.found_locals,
            rec.found_taken,
            run.stats.capsule_completions,
            run.elapsed,
        );
        if rec.mode != SessionMode::Resumed {
            println!(
                "fallback reason: {}",
                rec.fallback_reason
                    .as_ref()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "<none>".into())
            );
            return false; // correct, but retry until we demonstrate a resume
        }

        // The resumed run paid only for lost work.
        assert!(rec.resumed > 0, "resumed mode must re-plant entries");
        assert!(
            run.stats.total_writes < full_writes,
            "resume performed {} external writes, not strictly below a from-root \
             replay's {}",
            run.stats.total_writes,
            full_writes
        );

        // Exactly-once verification — which is also the strict task-
        // capsule count: recovery executed exactly `TASKS - pre_count`
        // task capsules, strictly fewer than the dead run's TASKS total.
        let mut recovered = 0;
        for i in 0..TASKS {
            assert_eq!(
                rt.machine().mem().load(markers.at(i)),
                i as Word + 1,
                "marker {i} must hold its once-only value"
            );
            let writes = write_counts[i].load(Ordering::Relaxed);
            if pre[i] {
                assert_eq!(
                    writes, 0,
                    "marker {i} was set before the crash; recovery must not rewrite it"
                );
            } else {
                assert_eq!(
                    writes, 1,
                    "marker {i} must be written exactly once during recovery"
                );
                recovered += 1;
            }
        }
        assert!(
            recovered < TASKS,
            "a resumed run must execute strictly fewer task capsules than the total"
        );
        rt.mark_clean().expect("record clean shutdown");
        println!(
            "resumed + exactly-once verified: {pre_count} markers from the killed run + \
             {recovered} from recovery = {TASKS}, none written twice; \
             {} < {} external writes (saved {:.0}% of a replay's write-work)",
            run.stats.total_writes,
            full_writes,
            100.0 * (1.0 - run.stats.total_writes as f64 / full_writes as f64),
        );
        true
    }

    fn wait_for_progress(path: &Path, markers: Region, worker: &mut std::process::Child) -> usize {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "child made no progress in 60s");
            if let Some(status) = worker.try_wait().expect("try_wait") {
                panic!("child exited ({status:?}) before it could be killed mid-run");
            }
            if let Ok(file) = std::fs::File::open(path) {
                let set = count_set_markers(&file, markers);
                if set >= KILL_AT {
                    return set;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
