//! The paper's actual fault model at OS scale: N worker *processes*
//! attach to one `MAP_SHARED` machine file as independent fault domains,
//! each samplesorting its own slice of the keys. The parent SIGKILLs one
//! worker at ~50% of that worker's output, tombstones its lease (the
//! coordinator's reap step — lease expiry covers coordinator-less
//! deployments), and the survivors **adopt** the dead shard's deque
//! frontier through the ordinary steal protocol: the run keeps going
//! instead of restarting, replay cost bounded by the dead shard's
//! in-flight work.
//!
//! Verified on every attempt: every shard's output equals the sorted
//! input slice, exactly once. An attempt demonstrates *adoption* when a
//! survivor's report counts frontier entries taken from the dead shard
//! and the dead shard's subtree-complete flag was set by someone else.
//! Kills can land in narrow unresumable windows (a steal or push in
//! flight inside the dying worker); those attempts degrade to the
//! single-process `cluster::recover` path — still exactly-once — and the
//! scenario retries until one attempt shows a live adoption.
//!
//! `PPM_SHARD_WORKERS` selects the worker count (default 4; `1` makes
//! the kill leave no survivors, exercising the recover path instead —
//! the CI fault matrix runs both).
//!
//! With `PPM_METRICS_PORT` set, the parent serves the coordinator's
//! aggregated `/metrics` (per-worker scrapes merged under `shard`
//! labels, plus live lease telemetry) and, on a successful adoption
//! run, asserts the scrape shows it: the dead shard stays visible
//! (stale-labeled, `ppm_lease_up 0`) and a survivor's
//! `ppm_adopted_jobs_total` is nonzero.
//!
//! Run with `cargo run --release --example sharded_fault`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("worker") => scenario::worker(&args[2], args[3].parse().expect("shard index")),
        _ => scenario::parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("sharded_fault needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
mod scenario {
    use std::net::Ipv4Addr;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use ppm::algs::{samplesort_pool_words, SampleSort};
    use ppm::core::Machine;
    use ppm::pm::{PmConfig, Region, TempMachineFile, Word};
    use ppm::sched::cluster::{self, ClusterBuilder, ClusterObserver, ShardBuild};
    use ppm::sched::SessionMode;

    const PROCS_PER_SHARD: usize = 2;
    const WORDS: usize = 1 << 23;
    /// Keys per shard slice.
    const N: usize = 3000;
    /// Small ephemeral memory deepens recursion: more capsules, a wider
    /// kill window.
    const M_EPH: usize = 256;
    const SLOTS: usize = 1 << 14;
    const LEASE_MS: u64 = 600;
    /// Kill the victim once this many of its output words are in place.
    const KILL_AT: usize = N / 2;
    const MAX_ATTEMPTS: usize = 8;

    fn workers() -> usize {
        std::env::var("PPM_SHARD_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| (1..=8).contains(n))
            .unwrap_or(4)
    }

    fn cluster_builder(path: &std::path::Path, shards: usize) -> ClusterBuilder {
        ClusterBuilder::new(path)
            .machine(
                PmConfig::parallel(shards * PROCS_PER_SHARD, WORDS).with_ephemeral_words(M_EPH),
            )
            .workers(shards)
            // Adoption headroom: a survivor may re-drive a dead sibling's
            // frontier out of its own pools.
            .pool_words(samplesort_pool_words(N) * 2)
            .deque_slots(SLOTS)
            .lease_ms(LEASE_MS)
            .deadline(Duration::from_secs(120))
    }

    fn input(shard: usize) -> Vec<Word> {
        (0..N as u64)
            .map(|i| {
                let x = (((shard as u64) << 32) | i)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(1 + shard as u64);
                1 + (x ^ (x >> 29)) % 1_000_000
            })
            .collect()
    }

    /// The deterministic construction every process replays: shard `s`
    /// samplesorts its own slice, arriving at `k` when done. Output
    /// regions are recorded for the parent's progress gate.
    fn build(outputs: Arc<Mutex<Vec<Option<Region>>>>) -> ShardBuild {
        Arc::new(move |m: &Machine, s: usize, k: Word| {
            let ss = SampleSort::new(m, N);
            ss.load_input(m, &input(s));
            outputs.lock().unwrap()[s] = Some(ss.output);
            ss.pcomp()(m, k)
        })
    }

    pub fn worker(path: &str, shard: usize) {
        let outputs = Arc::new(Mutex::new(vec![None; ppm::pm::MAX_SHARDS]));
        let rep = cluster::run_worker(path, shard, &build(outputs)).expect("worker session");
        if let Some(summary) = &rep.cluster {
            let own = &summary.shard_reports[shard];
            println!(
                "worker {shard}: completed={} adopted_jobs={} adopted_locals={} \
                 blocked={} declared_dead={:?}",
                rep.completed(),
                own.adopted_jobs,
                own.adopted_locals,
                own.blocked_adoptions,
                summary.dead_shards,
            );
        }
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    pub fn parent() {
        let shards = workers();
        println!("sharded fault scenario: {shards} worker processes x {PROCS_PER_SHARD} procs");
        for attempt in 1..=MAX_ATTEMPTS {
            let outcome = run_scenario(attempt, shards);
            if shards == 1 {
                // A lone worker has no survivors: the scenario here is
                // the degraded path — SIGKILL, then a process-level
                // recovery resumes the crash frontier exactly-once.
                if outcome.recovered {
                    println!("single-shard leg: kill + recover demonstrated");
                    return;
                }
                println!("attempt {attempt}: child finished before the kill; retrying\n");
            } else if outcome.adopted {
                return;
            } else {
                println!("attempt {attempt}: no live adoption observed; retrying\n");
            }
        }
        panic!("no attempt out of {MAX_ATTEMPTS} demonstrated the scenario — statistically absurd");
    }

    struct Outcome {
        /// Survivors adopted the dead shard's frontier and completed.
        adopted: bool,
        /// The degraded single-process recovery path ran (and verified).
        recovered: bool,
    }

    fn count_written(machine: &Machine, out: Region) -> usize {
        // Values are >= 1, so nonzero means written; sample every 8th.
        (0..N)
            .step_by(8)
            .filter(|i| machine.mem().load(out.at(*i)) != 0)
            .count()
            * 8
    }

    fn run_scenario(attempt: usize, shards: usize) -> Outcome {
        let file = TempMachineFile::new(&format!("sharded-fault-{attempt}"));
        let outputs = Arc::new(Mutex::new(vec![None; ppm::pm::MAX_SHARDS]));
        let build = build(outputs.clone());
        let observer = cluster_builder(file.path(), shards)
            .observe(&build)
            .expect("init");
        let metrics_port = ppm::obs::Obs::metrics_port_from_env();
        let _metrics = metrics_port.and_then(|p| observer.serve_metrics(p));

        // Each attempt is a fresh machine file: clear the previous
        // attempt's span sidecars so a recovery-appended coordinator file
        // can't leak stale spans into this attempt's DAG.
        if let Some(base) = ppm::obs::Obs::trace_file_from_env() {
            let _ = std::fs::remove_file(ppm::obs::SpanSink::path_for(&base));
            for s in 0..shards {
                let _ = std::fs::remove_file(ppm::obs::SpanSink::shard_path_for(&base, s));
            }
        }

        let exe = std::env::current_exe().expect("current_exe");
        let mut children: Vec<std::process::Child> = (0..shards)
            .map(|s| {
                std::process::Command::new(&exe)
                    .arg("worker")
                    .arg(file.path())
                    .arg(s.to_string())
                    .spawn()
                    .expect("spawn worker")
            })
            .collect();

        // Kill the last shard's worker once its own output is half full.
        let victim = shards - 1;
        let victim_out = outputs.lock().unwrap()[victim].expect("builder ran");
        let killed = wait_and_kill(&observer, victim_out, &mut children[victim]);
        println!(
            "attempt {attempt}: victim shard {victim} {}",
            if killed {
                "SIGKILLed mid-sort; lease tombstoned"
            } else {
                "finished before the kill window"
            }
        );
        if killed {
            observer.tombstone(victim);
        }

        // Wait for the survivors (or, with one worker, nobody) to finish.
        // A kill can land in one of the narrow unadoptable windows (the
        // victim mid-steal or mid-push, its thread's restart pointer a
        // process-local closure): survivors refuse that adoption and the
        // run stalls — past the deadline we degrade to recovery instead.
        let deadline = Instant::now() + Duration::from_secs(45);
        let mut last_scrape = String::new();
        let mut next_scrape = Instant::now();
        let mut done = loop {
            if observer.is_done() {
                break true;
            }
            let any_alive = children
                .iter_mut()
                .any(|c| c.try_wait().expect("try_wait").is_none());
            if !any_alive || Instant::now() >= deadline {
                break false;
            }
            // Keep the aggregate exporter's per-worker cache warm: each
            // scrape pulls the live workers, so their last-seen counters
            // survive into post-mortem scrapes after they exit.
            if let Some(port) = metrics_port {
                if Instant::now() >= next_scrape {
                    if let Ok(text) = scrape(port) {
                        last_scrape = text;
                    }
                    next_scrape = Instant::now() + Duration::from_millis(150);
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        if done {
            // One more scrape while the survivors are (most likely)
            // still alive writing exit reports: final counter values.
            if let Some(port) = metrics_port {
                if let Ok(text) = scrape(port) {
                    last_scrape = text;
                }
            }
        }
        if done {
            // Let the survivors write their exit reports (they halt as
            // soon as they read the completion flag) before summarizing.
            let grace = Instant::now() + Duration::from_secs(10);
            while Instant::now() < grace
                && children
                    .iter_mut()
                    .any(|c| c.try_wait().expect("try_wait").is_none())
            {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
        done = done && observer.is_done();

        let mut outcome = if done {
            let summary = observer.summary();
            observer.finish().expect("flush + mark clean");
            let adopted = summary.adopted();
            println!(
                "run complete: adopted={} blocked={} dead_shards={:?}",
                adopted,
                summary.blocked(),
                summary.dead_shards
            );
            assert!(
                summary.shard_reports.iter().all(|r| r.subtree_complete),
                "every shard's subtree must arrive"
            );
            if killed {
                assert!(
                    summary.dead_shards.contains(&victim),
                    "the killed worker must be reported dead"
                );
            }
            // Survivors adopted: the run never restarted, so any progress
            // on the dead shard's subtree after the kill is adoption.
            let adoption_shown =
                killed && adopted > 0 && summary.shard_reports[victim].subtree_complete;
            if adoption_shown && metrics_port.is_some() {
                assert_adoption_scraped(&last_scrape, victim);
            }
            Outcome {
                adopted: adoption_shown,
                recovered: false,
            }
        } else {
            // No survivors (1-worker matrix leg) or a blocked-adoption
            // stall: degrade to single-process recovery — the run must
            // still finish exactly-once.
            drop(observer);
            println!("survivors could not finish; degrading to cluster::recover");
            let rep = cluster::recover(file.path(), &build).expect("recover");
            assert!(rep.completed(), "recovery must finish the sort");
            println!(
                "recover mode: {:?} ({} frontier entries resumed)",
                rep.mode, rep.resumed
            );
            assert_ne!(rep.mode, SessionMode::FreshRun);
            Outcome {
                adopted: false,
                recovered: killed,
            }
        };

        // Exactly-once output: every shard's slice is the sorted input.
        let machine = Machine::attach(
            file.path(),
            ppm::pm::FaultConfig::none(),
            ppm::pm::ValidateMode::Strict,
        )
        .expect("attach for verification");
        for s in 0..shards {
            let out = outputs.lock().unwrap()[s].expect("region recorded");
            let mut expect = input(s);
            expect.sort_unstable();
            let got: Vec<Word> = (0..N).map(|i| machine.mem().load(out.at(i))).collect();
            assert_eq!(got, expect, "shard {s} output must be its sorted slice");
        }
        println!("all {shards} slices sorted exactly-once");

        // Causal-trace acceptance gate (active when PPM_TRACE_FILE is
        // set): the span sidecars must reconstruct into a *complete* DAG
        // — every stolen or adopted capsule's parent resolves across the
        // per-shard files — and the analyzer must see the fault: a kill
        // replays work (wasted ratio > 0), a crash-free run wastes
        // nothing. A kill can land with both victim processors parked
        // between traced capsules (nothing measurably replayed); such an
        // attempt proves nothing about waste attribution, so it retries
        // like a kill-before-adoption does.
        if let Some(waste_shown) = verify_trace(shards, killed) {
            if !waste_shown {
                println!("kill landed between traced capsules (no measurable waste); retrying");
                outcome.adopted = false;
                outcome.recovered = false;
            }
        }
        outcome
    }

    /// Reconstructs the capsule DAG from every span sidecar this run
    /// wrote and checks it end-to-end. Returns `None` when tracing is
    /// off, otherwise whether fault waste matched expectation (`killed`
    /// runs must show waste; crash-free runs must show exactly zero —
    /// the latter is a hard assert, since no schedule can fake waste).
    fn verify_trace(shards: usize, killed: bool) -> Option<bool> {
        let base = ppm::obs::Obs::trace_file_from_env()?;
        let mut set = ppm::obs::TraceSet::default();
        let coord = ppm::obs::SpanSink::path_for(&base);
        if coord.exists() {
            set.ingest_file(&coord).expect("ingest recovery span file");
        }
        for s in 0..shards {
            let p = ppm::obs::SpanSink::shard_path_for(&base, s);
            if p.exists() {
                set.ingest_file(&p).expect("ingest shard span file");
            }
        }
        let a = set.analyze();
        println!(
            "trace DAG: {} spans ({} interrupted), W={} D={} parallelism={:.2}x wasted={:.2}%",
            a.spans_total,
            a.interrupted,
            a.work,
            a.depth,
            a.parallelism,
            a.wasted_ratio * 100.0,
        );
        assert!(a.spans_total > 0, "span sidecars must not be empty");
        assert_eq!(
            a.unresolved_parents, 0,
            "every stolen/adopted span must link to its forker across shard files"
        );
        assert!(a.depth > 0 && a.work >= a.depth);
        if killed {
            Some(a.wasted_ratio > 0.0)
        } else {
            assert_eq!(a.wasted_ratio, 0.0, "crash-free run must waste nothing");
            Some(true)
        }
    }

    /// One scrape of the parent's aggregate exporter.
    fn scrape(port: u16) -> std::io::Result<String> {
        ppm::obs::http_get(
            (Ipv4Addr::LOCALHOST, port),
            "/metrics",
            Duration::from_secs(2),
        )
    }

    /// A live adoption must be legible from the scrape alone: the dead
    /// shard's lease gauge reads down (its series stayed visible after
    /// the kill), and some survivor's adopted-jobs counter is nonzero.
    fn assert_adoption_scraped(scrape: &str, victim: usize) {
        assert!(!scrape.is_empty(), "aggregate exporter never answered");
        assert!(
            scrape.contains(&format!("ppm_lease_up{{shard=\"{victim}\"}} 0")),
            "dead shard {victim} must stay visible with its lease down; scrape:\n{scrape}"
        );
        let survivor_adopted: u64 = scrape
            .lines()
            .filter(|l| l.starts_with("ppm_adopted_jobs_total{"))
            .filter(|l| !l.contains(&format!("shard=\"{victim}\"")))
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
            .sum();
        assert!(
            survivor_adopted > 0,
            "some survivor's ppm_adopted_jobs_total must be nonzero; scrape:\n{scrape}"
        );
        println!(
            "metrics scrape confirms adoption: shard {victim} lease down, \
             survivors adopted {survivor_adopted} jobs"
        );
    }

    /// Waits until the victim's output region is ~half written, then
    /// SIGKILLs it. Returns false if the victim exits first.
    fn wait_and_kill(
        observer: &ClusterObserver,
        out: Region,
        victim: &mut std::process::Child,
    ) -> bool {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "victim made no progress in 60s");
            if victim.try_wait().expect("try_wait").is_some() {
                return false;
            }
            if count_written(observer.machine(), out) >= KILL_AT {
                victim.kill().expect("SIGKILL victim");
                victim.wait().expect("reap victim");
                return true;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    }
}
