//! Bounded replay from epoch checkpoints, against a real `kill -9`.
//!
//! A worker process runs a checkpointed prefix sum on a durable machine
//! file: every few hundred capsules it quiesces, flushes only its dirty
//! pages, garbage-collects dead frame-pool words, and writes a
//! [`ppm::pm::CheckpointRecord`] into the superblock page. The parent
//! watches the record slots, SIGKILLs the worker *between* checkpoints,
//! then smashes the persisted restart pointer — simulating the narrow
//! crash windows in which the exact crash frontier is unresumable — and
//! recovers in a fresh session.
//!
//! Verified on a successful attempt:
//!
//! * recovery runs in `Resumed` mode **from the checkpoint record**, not
//!   by replaying from the root;
//! * the resumed run re-drives at most the work after that checkpoint
//!   (replay distance ≤ one epoch), measured in capsules against a
//!   from-root reference run;
//! * the recovered output equals the sequential oracle.
//!
//! Run with `cargo run --release --example checkpointed_run`.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("child") => scenario::child(&args[2]),
        _ => scenario::parent(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("checkpointed_run needs the unix durable backend (mmap); skipping");
}

#[cfg(unix)]
mod scenario {
    use std::path::Path;
    use std::time::{Duration, Instant};

    use ppm::algs::{prefix_sum_seq, PrefixSum};
    use ppm::pm::backend::superblock::{CheckpointRecord, CKPT_SLOT_BYTES, CKPT_SLOT_OFFSETS};
    use ppm::pm::{PmConfig, Word};
    use ppm::sched::{CheckpointPolicy, Runtime, RuntimeConfig, SessionMode};

    /// One model processor: the capsule schedule is deterministic, so the
    /// replay-distance bound is an exact inequality, not a statistical
    /// observation.
    const PROCS: usize = 1;
    const WORDS: usize = 1 << 22;
    const N: usize = 4096;
    const SLOTS: usize = 1 << 13;
    /// The checkpoint epoch: at most this many capsules are ever re-run.
    const EPOCH: u64 = 500;
    const MAX_ATTEMPTS: usize = 8;

    fn runtime_cfg() -> RuntimeConfig {
        RuntimeConfig::new(PmConfig::parallel(PROCS, WORDS))
            .with_slots(SLOTS)
            .with_checkpoint(CheckpointPolicy::every_capsules(EPOCH))
    }

    fn input() -> Vec<Word> {
        (0..N as u64)
            .map(|i| i.wrapping_mul(37) % 100_003)
            .collect()
    }

    pub fn child(path: &str) {
        let rt = Runtime::create(path, runtime_cfg()).expect("create durable session");
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        let rep = rt.run_or_recover(&ps.pcomp());
        rt.mark_clean().expect("flush completed run");
        std::process::exit(if rep.completed() { 0 } else { 1 });
    }

    /// Reads the newest valid checkpoint record straight off the file.
    fn newest_record(path: &Path) -> Option<CheckpointRecord> {
        let bytes = std::fs::read(path).ok()?;
        CKPT_SLOT_OFFSETS
            .iter()
            .filter_map(|off| {
                CheckpointRecord::decode(bytes.get(*off..*off + CKPT_SLOT_BYTES)?)
                    .ok()
                    .flatten()
            })
            .max_by_key(|r| r.seq)
    }

    /// Capsules a complete from-root run completes (the replay cost a
    /// checkpoint resume must beat).
    fn full_run_capsules() -> u64 {
        let rt = Runtime::volatile(runtime_cfg());
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        let rep = rt.run_or_recover(&ps.pcomp());
        assert!(rep.completed());
        rep.stats().capsule_completions
    }

    pub fn parent() {
        let full = full_run_capsules();
        println!("reference from-root run: {full} capsules (epoch = {EPOCH})");
        for attempt in 1..=MAX_ATTEMPTS {
            if run_scenario(attempt, full) {
                return;
            }
            println!("attempt {attempt}: kill window missed; retrying\n");
        }
        panic!("no attempt out of {MAX_ATTEMPTS} caught the worker between checkpoints");
    }

    fn run_scenario(attempt: usize, full: u64) -> bool {
        // Guarded path: removed when the attempt ends, even on a panic.
        let file = ppm::pm::TempMachineFile::new(&format!("checkpointed-run-{attempt}"));
        let path = file.path();

        println!("spawning checkpointed worker on {}", path.display());
        let exe = std::env::current_exe().expect("current_exe");
        let mut worker = std::process::Command::new(exe)
            .arg("child")
            .arg(path)
            .spawn()
            .expect("spawn child worker");

        // SIGKILL between checkpoints: wait until at least two records
        // exist (the second proves the epoch cadence), then kill.
        let seen = wait_for_records(path, 2, &mut worker);
        worker.kill().expect("SIGKILL child");
        let status = worker.wait().expect("reap child");
        let Some(seen) = seen else {
            println!("child completed before two checkpoints (exit {status:?})");
            return false;
        };
        println!(
            "killed child after checkpoint seq {} (~{} capsules committed, exit {status:?})",
            seen.seq, seen.capsules
        );

        // --- the recovering process ---
        let rt = Runtime::open(path, runtime_cfg()).expect("open session");
        // Force the unresumable-crash-frontier case: point every restart
        // pointer at garbage (the checkpoint frontier's frames stay
        // intact) so recovery *must* use the checkpoint record.
        for p in 0..PROCS {
            if rt.machine().active_handle(p) != 0 {
                rt.machine()
                    .mem()
                    .store(rt.machine().proc_meta(p).active, 0xBAAD_F00D);
            }
        }
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        let rec = rt.run_or_recover(&ps.pcomp());
        assert!(rec.completed(), "recovery must finish the computation");
        assert_eq!(
            ps.read_output(rt.machine()),
            prefix_sum_seq(&input()),
            "recovered output must match the sequential oracle"
        );
        if rec.mode != SessionMode::Resumed {
            // A kill in the first epoch can leave nothing to resume.
            println!("no checkpoint resume this attempt (mode {:?})", rec.mode);
            return false;
        }
        let ckpt = rec
            .checkpoint_resume
            .as_ref()
            .expect("smashed frontier must resume via the checkpoint record");
        let recovered = rec.run.as_ref().unwrap().stats.capsule_completions;
        let budget = full - ckpt.capsules_at_checkpoint + 4 * rec.resumed as u64 + 64;
        println!(
            "resumed from checkpoint seq {} ({} capsules into the run): \
             recovery re-ran {recovered} capsules (budget {budget}, full replay {full})",
            ckpt.seq, ckpt.capsules_at_checkpoint
        );
        assert!(
            recovered <= budget,
            "replay distance must be bounded by one epoch: {recovered} > {budget}"
        );
        assert!(
            recovered < full,
            "checkpoint resume must beat a from-root replay"
        );
        rt.mark_clean().expect("record clean shutdown");
        println!(
            "bounded replay verified: at most one {EPOCH}-capsule epoch plus seed overhead re-ran"
        );
        true
    }

    /// Waits until the file holds a record with `seq >= min_seq`; `None`
    /// if the child exits first.
    fn wait_for_records(
        path: &Path,
        min_seq: u64,
        worker: &mut std::process::Child,
    ) -> Option<CheckpointRecord> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            assert!(
                Instant::now() < deadline,
                "child wrote no checkpoints in 120s"
            );
            if worker.try_wait().expect("try_wait").is_some() {
                return None;
            }
            if let Some(rec) = newest_record(path) {
                if rec.seq >= min_seq {
                    return Some(rec);
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}
