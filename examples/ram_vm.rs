//! Theorem 3.2 live: a RAM program running on the faulty PM machine.
//!
//! Assembles a small RAM program (array sum), runs it natively for the
//! baseline step count `t`, then runs the Theorem 3.2 simulation — one
//! instruction per capsule, two swapped register copies in persistent
//! memory — under increasing fault rates, comparing results and costs.
//!
//! ```sh
//! cargo run --release --example ram_vm
//! ```

use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sim::ram::programs::sum_array;
use ppm::sim::run_both;

fn main() {
    let n = 200;
    let mut init: Vec<i64> = (0..n as i64).collect();
    init.push(0); // result slot
    let prog = sum_array(n);
    let expected: i64 = (0..n as i64).sum();

    println!("RAM program: sum of {n} words; simulating on the PM model\n");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "f", "t", "W_f", "faults", "W_f per t", "correct"
    );

    for f in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let cfg = if f == 0.0 {
            FaultConfig::none()
        } else {
            FaultConfig::soft(f, 99)
        };
        let machine = Machine::new(PmConfig::parallel(1, 1 << 21).with_fault(cfg));
        let (native, report, pm_mem) = run_both(&machine, &prog, &init, 1 << 22);
        assert!(native.halted && report.halted);
        let ok = pm_mem[n] == expected && report.regs == native.regs;
        let s = machine.snapshot();
        println!(
            "{:>8} {:>8} {:>12} {:>10} {:>12.2} {:>10}",
            f,
            native.steps,
            s.total_work(),
            s.soft_faults,
            s.total_work() as f64 / native.steps as f64,
            ok,
        );
        assert!(ok, "simulation must match native execution");
    }

    println!("\nthe `W_f per t` column is Theorem 3.2's constant: every RAM step");
    println!("costs a constant number of persistent transfers, in expectation,");
    println!("at any fault rate f <= 1/(2C).");
}
