//! Sorting a large array while processors die.
//!
//! Runs the paper's samplesort (§7, Theorem 7.3) on a machine where three
//! of four processors hard-fault mid-run. The survivors steal the dead
//! processors' in-progress threads (including their *local* deque entries,
//! resumed from `getActiveCapsule`) and finish the sort.
//!
//! ```sh
//! cargo run --release --example resilient_sort
//! ```

use ppm::algs::sort::samplesort_pool_words;
use ppm::algs::SampleSort;
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{Runtime, SchedConfig};

fn main() {
    let n = 1 << 13;

    // Three scheduled assassinations: processors 1, 2, 3 die at their
    // 2_000th / 5_000th / 9_000th persistent access. Plus background soft
    // faults everywhere.
    let faults = FaultConfig::soft(0.001, 7)
        .with_scheduled_hard_fault(1, 2_000)
        .with_scheduled_hard_fault(2, 5_000)
        .with_scheduled_hard_fault(3, 9_000);

    let machine = Machine::with_pool_words(
        PmConfig::parallel(4, 1 << 24)
            .with_ephemeral_words(256)
            .with_fault(faults),
        samplesort_pool_words(n),
    );

    let sorter = SampleSort::new(&machine, n);
    let input: Vec<u64> = (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF;
            x % 1_000_000
        })
        .collect();
    sorter.load_input(&machine, &input);

    println!("sorting {n} keys on 4 processors; 3 will hard-fault mid-run...");
    let rt = Runtime::new(machine, SchedConfig::with_slots(1 << 14));
    let report = rt.run_or_replay(&sorter.comp());

    let mut expected = input.clone();
    expected.sort_unstable();
    let got = sorter.read_output(rt.machine());

    assert!(report.completed(), "the sort must complete");
    assert_eq!(got, expected, "and be correct");

    println!("\ncompleted     : {}", report.completed());
    println!(
        "dead procs    : {} of {}",
        report.dead_procs(),
        rt.machine().procs()
    );
    println!("outcome/proc  : {:?}", report.run_report().outcomes);
    println!("soft faults   : {}", report.stats().soft_faults);
    println!("hard faults   : {}", report.stats().hard_faults);
    println!("total work    : {} transfers", report.stats().total_work());
    println!("wall time     : {:?}", report.elapsed());
    println!("\nsorted correctly with one surviving processor.");
}
