//! The cost of fault tolerance: total work `W_f` versus fault rate `f`.
//!
//! Runs the same prefix-sum computation (§7, Theorem 7.1) at increasing
//! soft-fault probabilities and prints how the total work and restart
//! counts grow. Theorem 6.2 predicts the work term grows like
//! `W / (1 − C·f)` — a mild constant factor while `f ≤ 1/(2C)`.
//!
//! ```sh
//! cargo run --release --example fault_sweep
//! ```

use ppm::algs::{prefix_sum_seq, PrefixSum};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{Runtime, SchedConfig};

fn main() {
    let n = 1 << 12;
    let input: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
    let expected = prefix_sum_seq(&input);

    println!("prefix sum, n = {n}, P = 2, sweeping soft-fault probability f\n");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12} {:>8}",
        "f", "W_f", "faults", "restarts", "C (max)", "W_f/W_0"
    );

    let mut w0 = 0u64;
    for (i, f) in [0.0, 0.001, 0.005, 0.01, 0.02, 0.05].iter().enumerate() {
        let cfg = if *f == 0.0 {
            FaultConfig::none()
        } else {
            FaultConfig::soft(*f, 42)
        };
        let machine = Machine::new(PmConfig::parallel(2, 1 << 22).with_fault(cfg));
        let ps = PrefixSum::new(&machine, n);
        ps.load_input(&machine, &input);
        let rt = Runtime::new(machine, SchedConfig::with_slots(1 << 13));
        let report = rt.run_or_replay(&ps.comp());
        assert!(report.completed());
        assert_eq!(ps.read_output(rt.machine()), expected, "f = {f}");

        let s = report.stats();
        if i == 0 {
            w0 = s.total_work();
        }
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>12} {:>8.3}",
            f,
            s.total_work(),
            s.soft_faults,
            s.capsule_restarts(),
            s.max_capsule_work,
            s.total_work() as f64 / w0 as f64,
        );
    }

    println!("\nevery run produced identical, correct output; the overhead of");
    println!("fault tolerance is the W_f/W_0 column — a small constant factor,");
    println!("exactly the O(t) expected-work shape of Theorems 3.2/6.2.");
}
