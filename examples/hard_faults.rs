//! Watching the scheduler survive hard faults.
//!
//! Builds a fork-join matrix multiply, kills two of four processors at
//! scheduled points, and prints each WS-deque after the run — showing the
//! `taken` entries (`T`) left behind by the steals that rescued the dead
//! processors' threads (§6.2's entry states, Figure 4).
//!
//! ```sh
//! cargo run --release --example hard_faults
//! ```

use ppm::algs::matmul::matmul_pool_words;
use ppm::algs::{matmul_seq, MatMul};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{Runtime, SchedConfig};

fn main() {
    let n = 24;
    let m_eph = 256;
    let faults = FaultConfig::none()
        .with_scheduled_hard_fault(1, 800)
        .with_scheduled_hard_fault(3, 1_500);
    let machine = Machine::with_pool_words(
        PmConfig::parallel(4, 1 << 23)
            .with_ephemeral_words(m_eph)
            .with_fault(faults),
        matmul_pool_words(n, m_eph),
    );

    let mm = MatMul::new(&machine, n);
    let a: Vec<u64> = (0..(n * n) as u64).map(|i| i % 9).collect();
    let b: Vec<u64> = (0..(n * n) as u64).map(|i| (i * 7) % 11).collect();
    mm.load_inputs(&machine, &a, &b);

    println!("matrix multiply {n}x{n} on 4 procs; procs 1 and 3 will hard-fault\n");
    let rt = Runtime::new(machine, SchedConfig::with_slots(1 << 13));
    let report = rt.run_or_replay(&mm.comp());

    assert!(report.completed());
    assert_eq!(
        mm.read_output(rt.machine()),
        matmul_seq(&a, &b, n),
        "product must be correct despite the deaths"
    );

    println!("outcomes    : {:?}", report.run_report().outcomes);
    println!("hard faults : {}", report.stats().hard_faults);
    println!("total work  : {} transfers", report.stats().total_work());
    println!("result      : correct\n");

    println!("per-processor activity:");
    for (p, ps) in report.stats().per_proc.iter().enumerate() {
        println!(
            "  proc {p}: reads={:<8} writes={:<8} capsules={:<7} {}",
            ps.reads,
            ps.writes,
            ps.capsule_runs,
            if ps.hard_faults > 0 {
                "DIED"
            } else {
                "survived"
            }
        );
    }

    println!("\nfinal WS-deques (T taken, J job, L local, . empty):");
    for line in &report.run_report().deque_dump {
        // Truncate the long empty tail for readability.
        let cut = line.find(". . . .").unwrap_or(line.len().min(120));
        println!("  {}...", &line[..cut.min(line.len())]);
    }
    println!("\nthe `T` runs on the dead processors' deques are the steals that");
    println!("rescued their threads — including local entries resumed from the");
    println!("dead processors' restart pointers (getActiveCapsule, Figure 3 line 60).");
}
