//! Quickstart: write a typed persistent fork-join computation, run it in
//! a `Runtime` session on a faulty Parallel-PM machine, and watch it
//! complete exactly once — with every continuation living in persistent
//! memory, so the same program would survive `kill -9` unchanged (see
//! `examples/crash_resume.rs` for that scenario).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ppm::core::dsl::{CapsuleSet, Fold, Span, Step, K};
use ppm::core::{Machine, PComp};
use ppm::pm::{FaultConfig, PmConfig, Region};
use ppm::sched::{Runtime, RuntimeConfig};

fn main() {
    // A session over a machine with 4 processors, 1M words of persistent
    // memory — and an adversary that soft-faults every processor with
    // probability 2% at each persistent-memory access. (Swap `volatile`
    // for `Runtime::create(path, cfg)` to put the words in a durable
    // file.)
    let rt = Runtime::volatile(
        RuntimeConfig::new(
            PmConfig::parallel(4, 1 << 21).with_fault(FaultConfig::soft(0.02, 2024)),
        )
        .with_slots(1 << 10),
    );

    // 64 output slots plus one result word in persistent memory.
    let n = 64usize;
    let out = rt.machine().alloc_region(n);
    let total = rt.machine().alloc_region(1);

    // The computation, typed end to end: a parallel map writes each
    // square into its own slot (first access is a write, so re-running
    // after a fault is harmless — Theorem 3.1), then a parallel reduce
    // sums the squares into `total`. Both loops unfold as persistent
    // capsule frames; nothing here touches raw frame words.
    let pcomp: PComp = Arc::new(move |machine: &Machine, finale| {
        let mut set = CapsuleSet::new(machine);
        let square_leaf = set.define("quickstart/squares", |st: &Span<Region>, k, ctx| {
            for i in st.lo..st.hi {
                ctx.pwrite(st.env.at(i), (i * i) as u64)?;
            }
            Ok(Step::Jump(k))
        });
        let squares = set.map_grain("quickstart/map", 4, square_leaf);
        let sum = set.reduce(
            "quickstart/sum",
            8,
            |env: &Region, lo, hi, ctx: &mut ppm::pm::ProcCtx| {
                let mut acc = 0u64;
                for i in lo..hi {
                    acc = acc.wrapping_add(ctx.pread(env.at(i))?);
                }
                Ok(acc)
            },
            |a, b| a.wrapping_add(b),
        );

        // map, then reduce, then the session's finale.
        let entry = set.define("quickstart/root", move |_: &(), k, ctx| {
            let reduce_k = sum.frame(
                ctx,
                &Fold {
                    env: out,
                    lo: 0,
                    hi: n,
                    dst: total.start,
                },
                k,
            )?;
            ppm::core::dsl::jump_to(
                ctx,
                squares,
                &Span {
                    env: out,
                    lo: 0,
                    hi: n,
                },
                reduce_k,
            )
        });
        entry.setup(machine, &(), K(finale)).word()
    });

    // One entry point: fresh machines run, reopened machines resume.
    let report = rt.run_or_recover(&pcomp);

    assert!(
        report.completed(),
        "the computation must finish despite faults"
    );
    for i in 0..n {
        assert_eq!(rt.machine().mem().load(out.at(i)), (i * i) as u64);
    }
    let expect: u64 = (0..n as u64).map(|i| i * i).sum();
    assert_eq!(rt.machine().mem().load(total.start), expect);

    let s = report.stats();
    println!("mode               : {:?}", report.mode);
    println!("completed          : {}", report.completed());
    println!(
        "processors         : {} (dead: {})",
        rt.machine().procs(),
        report.dead_procs()
    );
    println!("soft faults        : {}", s.soft_faults);
    println!(
        "capsule runs       : {} ({} restarts)",
        s.capsule_runs,
        s.capsule_restarts()
    );
    println!("total work W_f     : {} transfers", s.total_work());
    println!("max capsule work C : {}", s.max_capsule_work);
    println!("wall time          : {:?}", report.elapsed());
    println!("sum of squares     : {expect}");
    println!("\nall {n} tasks and the reduction ran exactly once — fault tolerance for free.");
}
