//! Quickstart: run a fork-join computation on a faulty Parallel-PM
//! machine and watch it complete exactly once.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ppm::core::{comp_step, par_all, Machine};
use ppm::pm::{FaultConfig, PmConfig, ProcCtx};
use ppm::sched::{run_computation, SchedConfig};

fn main() {
    // A machine with 4 processors, 1M words of persistent memory, blocks
    // of 8 words — and an adversary that soft-faults every processor with
    // probability 2% at each persistent-memory access.
    let machine =
        Machine::new(PmConfig::parallel(4, 1 << 21).with_fault(FaultConfig::soft(0.02, 2024)));

    // 64 output slots in persistent memory.
    let n = 64;
    let out = machine.alloc_region(n);

    // One idempotent capsule per task: each writes its own slot (first
    // access is a write, so re-running after a fault is harmless —
    // Theorem 3.1). `par_all` builds a balanced binary fork tree.
    let comp = par_all(
        (0..n)
            .map(|i| {
                comp_step("task", move |ctx: &mut ProcCtx| {
                    ctx.pwrite(out.at(i), (i * i) as u64)
                })
            })
            .collect(),
    );

    // Run it under the fault-tolerant work-stealing scheduler (Figure 3).
    let report = run_computation(&machine, &comp, &SchedConfig::with_slots(1 << 10));

    assert!(
        report.completed,
        "the computation must finish despite faults"
    );
    for i in 0..n {
        assert_eq!(machine.mem().load(out.at(i)), (i * i) as u64);
    }

    let s = &report.stats;
    println!("completed          : {}", report.completed);
    println!(
        "processors         : {} (dead: {})",
        machine.procs(),
        report.dead_procs()
    );
    println!("soft faults        : {}", s.soft_faults);
    println!(
        "capsule runs       : {} ({} restarts)",
        s.capsule_runs,
        s.capsule_restarts()
    );
    println!("total work W_f     : {} transfers", s.total_work());
    println!("max capsule work C : {}", s.max_capsule_work);
    println!("wall time          : {:?}", report.elapsed);
    println!("\nall {n} tasks ran exactly once — fault tolerance for free.");
}
