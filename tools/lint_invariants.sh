#!/usr/bin/env bash
# Invariant lint gate — greppable protocol rules that the type system
# cannot express. Run from the repo root; CI runs it in the `verify` job
# next to the ppm-check model explorer.
#
#   1. CAS stays quarantined. The paper's protocols are CAM-only
#      (§3: CAS is not idempotent under faults). The one CAS primitive,
#      `cas_unsafe_under_faults`, exists for the non-fault-tolerant ABP
#      baseline and may only be referenced inside `crates/pm` (its
#      definition and the costed ProcHandle wrapper) — with one scoped
#      exception: the injector queue's HOST-side surface in
#      crates/sched/src/service.rs (submit staging, reclaim, rescue).
#      Those run on client/supervisor threads outside the capsule
#      re-execution regime — a crashed host thread never re-runs its
#      CAS, and a torn staging slot is scavenged on recovery — so the
#      §3 idempotency argument does not apply. Each such site must
#      carry a `host-CAS:` justification within the six lines above it;
#      capsule-side code (the pull/done chains) stays CAM-only.
#
#   2. Cross-process superblock slots are SeqCst. Lease, tombstone and
#      cluster-header words are written by one process and read by its
#      siblings; a Relaxed ordering on that path would let a stale lease
#      resurrect a tombstoned shard (see model/lease.rs TombstoneSticky).
#
#   3. Unsafe stays quarantined in `crates/pm`. Every other crate is
#      #![forbid]-clean by policy; the mmap/word-IO surface in pm is the
#      only place raw pointers are allowed, and every site there carries
#      a SAFETY: justification (also enforced by
#      clippy::undocumented_unsafe_blocks workspace-wide).

set -u
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "lint_invariants: $1" >&2
    echo "$2" | sed 's/^/    /' >&2
    fail=1
}

# --- 1. CAS quarantine -----------------------------------------------------
hits=$(grep -rn "cas_unsafe_under_faults" --include="*.rs" crates/ \
    | grep -v "^crates/pm/" \
    | grep -v "^crates/sched/src/service.rs" || true)
if [ -n "$hits" ]; then
    err "cas_unsafe_under_faults referenced outside crates/pm (CAM-only protocols; see §3 of the paper):" "$hits"
fi
# The service.rs exception is justification-gated: every CAS site there
# must have a `host-CAS:` comment within the six lines above it (the
# marker documents why the host-thread crash model makes CAS sound).
unjustified=$(awk '
    /host-CAS:/ { last = NR }
    /cas_unsafe_under_faults/ && !/host-CAS:/ {
        if (NR - last > 6) print FILENAME ":" NR ": " $0
    }
' crates/sched/src/service.rs || true)
if [ -n "$unjustified" ]; then
    err "cas_unsafe_under_faults in service.rs without a host-CAS: justification within 6 lines (capsule-side code must stay CAM-only):" "$unjustified"
fi

# --- 2. SeqCst on cross-process slots --------------------------------------
# The sb_word/write_sb_words/read_sb_words surface in the mmap backend is
# the only path to lease/tombstone/cluster-header words; it must never
# relax. Scope the check to that file so observability counters elsewhere
# can stay Relaxed.
hits=$(grep -n "Ordering::Relaxed\|Ordering::Acquire\|Ordering::Release" \
    crates/pm/src/backend/mmap.rs || true)
if [ -n "$hits" ]; then
    err "non-SeqCst ordering in the mmap superblock-slot surface (lease/tombstone slots must be SeqCst):" "$hits"
fi
hits=$(grep -n "Ordering::Relaxed" crates/pm/src/lease.rs crates/sched/src/cluster.rs 2>/dev/null \
    | grep -i "lease\|tombstone" || true)
if [ -n "$hits" ]; then
    err "Relaxed ordering on a lease/tombstone access path:" "$hits"
fi

# --- 3. unsafe quarantine + SAFETY comments --------------------------------
hits=$(grep -rn "unsafe" --include="*.rs" \
    crates/core/src crates/sched/src crates/algs/src crates/check/src \
    crates/obs/src crates/sim/src crates/bench/src 2>/dev/null \
    | grep -v "unsafe_code\|cas_unsafe_under_faults\|// \|//!" || true)
if [ -n "$hits" ]; then
    err "unsafe outside crates/pm (the raw-pointer surface is quarantined there):" "$hits"
fi

# Every unsafe site in crates/pm must have a SAFETY: line within the six
# lines above it (clippy::undocumented_unsafe_blocks enforces the same
# rule at compile time; this is the toolchain-independent backstop).
missing=$(awk '
    /SAFETY:/ { last = NR }
    /^[^\/]*unsafe/ && !/cas_unsafe_under_faults/ && !/"/ {
        if (NR - last > 6) print FILENAME ":" NR ": " $0
    }
' $(grep -rl "unsafe" --include="*.rs" crates/pm/src) || true)
if [ -n "$missing" ]; then
    err "unsafe site in crates/pm without a SAFETY: comment within 6 lines:" "$missing"
fi

if [ "$fail" -ne 0 ]; then
    echo "lint_invariants: FAILED" >&2
    exit 1
fi
echo "lint_invariants: ok (CAS quarantined, slot orderings SeqCst, unsafe documented)"
