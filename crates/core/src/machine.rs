//! A Parallel-PM machine instance.
//!
//! [`Machine`] bundles the shared persistent memory, statistics, liveness
//! oracle and continuation arena, carves the persistent address space
//! (per-processor metadata, per-processor allocation pools, user regions),
//! and mints [`ProcCtx`] handles for processor threads.

use std::sync::Arc;

use parking_lot::Mutex;
use ppm_obs::Obs;
use ppm_pm::{
    Addr, LayoutBuilder, Liveness, MemStats, PersistentMemory, PmConfig, ProcCtx, Region,
    StatsSnapshot, Word,
};

use crate::arena::ContArena;
use crate::registry::{register_core_capsules, CapsuleId, CapsuleRegistry};

/// Persistent words of per-processor metadata.
///
/// Layout per processor: `[slot_a, active_capsule, slot_b, watermark]`.
/// * `active_capsule` — the restart-pointer location (§2): the handle of
///   the capsule the processor is currently executing. Read by thieves via
///   `getActiveCapsule` when recovering from a hard fault.
/// * `slot_a`/`slot_b` — the two-closure swap area of §4.1 used for thread
///   continuations, so running a long thread does not consume pool space.
///   Each slot sits *adjacent* to the restart pointer so an install —
///   fill the free slot, swing the pointer to it — writes one contiguous
///   word pair (`[slot_a, active]` or `[active, slot_b]`) and coalesces
///   into a single block transfer (see `InstallCtx::install_jump`).
/// * `watermark` — mirror of the processor's committed pool-allocation
///   cursor, refreshed (uncosted) at every capsule boundary. A recovering
///   process reads it to resume allocation *above* the dead run's live
///   closure frames and join cells instead of overwriting them.
pub const PROC_META_WORDS: usize = 4;

/// Offsets within a processor's metadata area.
pub mod meta {
    /// First swap slot for thread-continuation closures.
    pub const SLOT_A: usize = 0;
    /// Restart-pointer location: handle of the active capsule. Placed
    /// between the swap slots so either `(slot, active)` install pair is
    /// contiguous.
    pub const ACTIVE: usize = 1;
    /// Second swap slot.
    pub const SLOT_B: usize = 2;
    /// Committed pool-allocation cursor mirror.
    pub const WATERMARK: usize = 3;
}

/// Addresses of one processor's metadata words.
#[derive(Debug, Clone, Copy)]
pub struct ProcMeta {
    /// Address of the restart-pointer word.
    pub active: Addr,
    /// Address of swap slot A.
    pub slot_a: Addr,
    /// Address of swap slot B.
    pub slot_b: Addr,
    /// Address of the pool-cursor watermark word.
    pub watermark: Addr,
}

/// One Parallel-PM machine: shared state plus address-space layout.
#[derive(Debug)]
pub struct Machine {
    cfg: PmConfig,
    mem: Arc<PersistentMemory>,
    stats: Arc<MemStats>,
    obs: Arc<Obs>,
    liveness: Arc<Liveness>,
    arena: Arc<ContArena>,
    registry: Arc<CapsuleRegistry>,
    layout: Mutex<LayoutBuilder>,
    proc_meta: Region,
    pools: Vec<Region>,
    pool_words: usize,
    /// Durable-backend run epoch (1 for the creating run, +1 per reopen);
    /// 0 for volatile machines.
    epoch: u64,
}

/// Default per-processor allocation pool size in words. Each fork consumes
/// `CLOSURE_WORDS + 1` (child closure + join cell), so this supports on the
/// order of 10^5 forks per processor; construct with
/// [`Machine::with_pool_words`] for larger workloads.
pub const DEFAULT_POOL_WORDS: usize = 1 << 18;

impl Machine {
    /// Builds a machine from `cfg` with default pool sizing: up to
    /// [`DEFAULT_POOL_WORDS`] per processor, but never more than half the
    /// address space in total (the rest is left for user data).
    pub fn new(cfg: PmConfig) -> Self {
        let budget = cfg.persistent_words / 2 / cfg.procs.max(1);
        Self::with_pool_words(cfg, DEFAULT_POOL_WORDS.min(budget).max(1))
    }

    /// Builds a machine with `pool_words` of allocation pool per processor.
    ///
    /// # Panics
    /// Panics if the persistent memory cannot hold the metadata and pools —
    /// a configuration error.
    pub fn with_pool_words(cfg: PmConfig, pool_words: usize) -> Self {
        let mem = Arc::new(PersistentMemory::new(cfg.persistent_words, cfg.block_size));
        Self::from_mem(cfg, pool_words, mem, 0)
    }

    /// Builds a machine over already-constructed memory, replaying the
    /// deterministic address-space layout (null guard, processor metadata,
    /// pools). Every construction path funnels through here, which is what
    /// makes a reopened durable machine's layout line up with the layout
    /// of the run that created the file.
    fn from_mem(cfg: PmConfig, pool_words: usize, mem: Arc<PersistentMemory>, epoch: u64) -> Self {
        let mut layout = LayoutBuilder::new(cfg.persistent_words, cfg.block_size);
        // Reserve the first block so that address 0 is never a valid handle
        // (the arena's null handle).
        let _null_guard = layout.region(1);
        let proc_meta = layout.region(cfg.procs * PROC_META_WORDS.max(cfg.block_size));
        let pools = (0..cfg.procs).map(|_| layout.region(pool_words)).collect();
        let registry = Arc::new(CapsuleRegistry::new());
        register_core_capsules(&registry);
        let obs = Arc::new(Obs::new());
        let stats = Arc::new(MemStats::new(cfg.procs));
        // Every subsystem built over this machine exports through this
        // one handle: the cost-model counters now, the scheduler and
        // checkpoint layers as they are constructed.
        stats.register_into(obs.registry());
        mem.set_dirty_histogram(obs.registry().histogram(
            "ppm_dirty_run_pages",
            "page length of each run synced by an incremental flush",
        ));
        let epoch_val = epoch;
        obs.registry().gauge_fn(
            "ppm_epoch",
            "durable run epoch (0 volatile, 1 creating run, +1 per reopen)",
            &[],
            move || epoch_val as f64,
        );
        Machine {
            stats,
            obs,
            liveness: Arc::new(Liveness::new(cfg.procs)),
            arena: Arc::new(ContArena::with_rehydration(mem.clone(), registry.clone())),
            registry,
            layout: Mutex::new(layout),
            proc_meta,
            pools,
            pool_words,
            epoch,
            mem,
            cfg,
        }
    }

    /// Creates a machine whose persistent memory is a durable file at
    /// `path` (truncating anything already there), with default pool
    /// sizing. The file records the machine shape in its superblock so
    /// [`Machine::reopen`] can rebuild the machine in a later process.
    ///
    /// The fault adversary and validation mode of `cfg` apply to this run
    /// but are not persisted.
    #[cfg(unix)]
    pub fn create_durable(
        cfg: PmConfig,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let budget = cfg.persistent_words / 2 / cfg.procs.max(1);
        Self::create_durable_with_pool_words(cfg, DEFAULT_POOL_WORDS.min(budget).max(1), path)
    }

    /// [`Machine::create_durable`] with explicit per-processor pool sizing.
    #[cfg(unix)]
    pub fn create_durable_with_pool_words(
        cfg: PmConfig,
        pool_words: usize,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        use ppm_pm::backend::{MmapBackend, Superblock};
        let sb = Superblock::describe(&cfg, pool_words);
        let backend = MmapBackend::create(path, sb)?;
        let mem = Arc::new(PersistentMemory::with_backend(
            Box::new(backend),
            cfg.block_size,
        ));
        Ok(Self::from_mem(cfg, pool_words, mem, 1))
    }

    /// Reconstructs a machine from a durable file written by an earlier
    /// process: validates the superblock, bumps the run epoch, and replays
    /// the deterministic layout so every machine-owned region (processor
    /// metadata, pools) is exactly where the creating run put it. The
    /// memory contents are whatever the previous run last stored — no
    /// words are zeroed.
    ///
    /// The reopened run is fault-free and strictly validated; use
    /// [`Machine::reopen_with`] to override.
    #[cfg(unix)]
    pub fn reopen(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Self::reopen_with(
            path,
            ppm_pm::FaultConfig::none(),
            ppm_pm::ValidateMode::Strict,
        )
    }

    /// [`Machine::reopen`] with an explicit fault adversary and validation
    /// mode for the recovering run.
    #[cfg(unix)]
    pub fn reopen_with(
        path: impl AsRef<std::path::Path>,
        fault: ppm_pm::FaultConfig,
        validate: ppm_pm::ValidateMode,
    ) -> std::io::Result<Self> {
        use ppm_pm::backend::MmapBackend;
        let (backend, found) = MmapBackend::open(path)?;
        let epoch = found.epoch + 1; // open() recorded this run's attach
        let cfg = found.to_config().with_fault(fault).with_validate(validate);
        let pool_words = found.pool_words as usize;
        let mem = Arc::new(PersistentMemory::with_backend(
            Box::new(backend),
            cfg.block_size,
        ));
        Ok(Self::from_mem(cfg, pool_words, mem, epoch))
    }

    /// Attaches to a durable file as a **secondary attacher** — the
    /// sharded runtime's worker-process entry point. Unlike
    /// [`Machine::reopen`], the superblock is left exactly as the
    /// creating process wrote it: no epoch bump, no state rewrite. The
    /// attaching machine shares the creator's run epoch, so "is this a
    /// recovery?" stays a property of the *run* (file lifecycle), not of
    /// how many worker processes serve it. The deterministic layout is
    /// replayed from the superblock like every other construction path.
    #[cfg(unix)]
    pub fn attach(
        path: impl AsRef<std::path::Path>,
        fault: ppm_pm::FaultConfig,
        validate: ppm_pm::ValidateMode,
    ) -> std::io::Result<Self> {
        use ppm_pm::backend::MmapBackend;
        let (backend, found) = MmapBackend::attach(path)?;
        let epoch = found.epoch; // shared with the creating run
        let cfg = found.to_config().with_fault(fault).with_validate(validate);
        let pool_words = found.pool_words as usize;
        let mem = Arc::new(PersistentMemory::with_backend(
            Box::new(backend),
            cfg.block_size,
        ));
        Ok(Self::from_mem(cfg, pool_words, mem, epoch))
    }

    /// Forces all stored words to stable storage (the backend's durability
    /// boundary; no-op for volatile machines).
    pub fn flush(&self) -> std::io::Result<()> {
        self.mem.flush()
    }

    /// Flushes and records a clean shutdown in the durable superblock, so
    /// a later [`Machine::reopen`] can tell this run did not crash.
    pub fn mark_clean(&self) -> std::io::Result<()> {
        self.mem.backend().mark_clean()
    }

    /// Syncs only the pages mutated since the last flush (falls back to a
    /// full flush for backends without dirty tracking). The incremental
    /// durability boundary checkpoints use; exact under quiescence.
    pub fn flush_dirty(&self) -> std::io::Result<ppm_pm::DirtyFlush> {
        self.mem.flush_dirty()
    }

    /// Durably stores an epoch-checkpoint record (no-op returning `false`
    /// on volatile machines). See [`ppm_pm::CheckpointRecord`].
    pub fn write_checkpoint_record(
        &self,
        record: &ppm_pm::CheckpointRecord,
    ) -> std::io::Result<bool> {
        self.mem.backend().write_checkpoint(record)
    }

    /// The newest valid checkpoint record on stable storage, if any.
    pub fn latest_checkpoint_record(&self) -> Option<ppm_pm::CheckpointRecord> {
        self.mem.backend().latest_checkpoint()
    }

    /// Invalidates all stored checkpoint records (a replay-from-root
    /// recovery resets pool cursors, so old checkpoint frontiers no
    /// longer denote live frames).
    pub fn clear_checkpoint_records(&self) -> std::io::Result<()> {
        self.mem.backend().clear_checkpoints()
    }

    /// Durable run epoch: 1 for the creating run, incremented on every
    /// reopen; 0 for volatile machines.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-processor allocation-pool words.
    pub fn pool_words(&self) -> usize {
        self.pool_words
    }

    /// The machine's configuration.
    pub fn cfg(&self) -> &PmConfig {
        &self.cfg
    }

    /// Number of processors `P`.
    pub fn procs(&self) -> usize {
        self.cfg.procs
    }

    /// The shared persistent memory (uncosted access: setup and oracles).
    pub fn mem(&self) -> &Arc<PersistentMemory> {
        &self.mem
    }

    /// The machine's statistics.
    pub fn stats(&self) -> &Arc<MemStats> {
        &self.stats
    }

    /// The machine's observability handle: the metrics registry every
    /// subsystem over this machine registers into (scraped by
    /// [`ppm_obs::MetricsServer`]) plus the structured event tracer.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Snapshot of the statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The liveness oracle.
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.liveness
    }

    /// The continuation arena.
    pub fn arena(&self) -> &Arc<ContArena> {
        &self.arena
    }

    /// The capsule registry: rehydration constructors for persistent
    /// capsule frames, keyed by stable [`CapsuleId`]. Computations
    /// register their constructors here at construction time (both in the
    /// creating run and, identically, in a recovering run).
    pub fn registry(&self) -> &Arc<CapsuleRegistry> {
        &self.registry
    }

    /// Writes a persistent capsule frame with uncosted setup stores into
    /// a freshly carved region, returning its handle. Machine-setup use
    /// (e.g. a computation's root frame, written before the processors
    /// start); runtime frames come from [`ppm_pm::write_frame`] inside
    /// capsules. Deterministic: a recovering run replaying the same setup
    /// calls produces the same handles and the same words.
    pub fn setup_frame(&self, id: CapsuleId, args: &[ppm_pm::Word]) -> Word {
        let r = self.alloc_region(ppm_pm::frame_words(args.len()));
        ppm_pm::store_frame(&self.mem, r.start, id, args);
        r.start as Word
    }

    /// Carves a fresh block-aligned region of `len` words for user data.
    pub fn alloc_region(&self, len: usize) -> Region {
        self.layout.lock().region(len)
    }

    /// Words still unallocated in the address space.
    pub fn remaining_words(&self) -> usize {
        self.layout.lock().remaining()
    }

    /// Metadata addresses for processor `proc`.
    pub fn proc_meta(&self, proc: usize) -> ProcMeta {
        assert!(proc < self.cfg.procs);
        // Metadata areas are block-separated so installs by one processor
        // never share a block with another's restart pointer.
        let stride = PROC_META_WORDS.max(self.cfg.block_size);
        let base = self.proc_meta.start + proc * stride;
        ProcMeta {
            active: base + meta::ACTIVE,
            slot_a: base + meta::SLOT_A,
            slot_b: base + meta::SLOT_B,
            watermark: base + meta::WATERMARK,
        }
    }

    /// The allocation pool of processor `proc`.
    pub fn pool(&self, proc: usize) -> Region {
        self.pools[proc]
    }

    /// Mints the context for processor `proc`, with its pool installed
    /// from offset 0 (a fresh run).
    pub fn ctx(&self, proc: usize) -> ProcCtx {
        self.ctx_with_pool_cursor(proc, 0)
    }

    /// Mints the context for processor `proc` with the pool cursor at
    /// `cursor`. Recovery uses this with the persisted watermark so a
    /// resumed run allocates above the dead run's live frames.
    pub fn ctx_with_pool_cursor(&self, proc: usize, cursor: usize) -> ProcCtx {
        let mut ctx = ProcCtx::new(
            &self.cfg,
            proc,
            self.mem.clone(),
            self.stats.clone(),
            self.liveness.clone(),
        );
        ctx.set_alloc_pool(self.pools[proc], cursor);
        ctx.set_watermark_addr(Some(self.proc_meta(proc).watermark));
        // Causal span tracing: every context minted after the runtime
        // installed a sink emits span records (traced capsules only).
        // `None` when tracing is off — the per-capsule cost is one
        // Option check.
        ctx.set_span_sink(self.obs.span_sink());
        ctx
    }

    /// The persisted pool-cursor watermark of `proc` (oracle read).
    pub fn pool_watermark(&self, proc: usize) -> usize {
        self.mem.load(self.proc_meta(proc).watermark) as usize
    }

    /// Reads the active-capsule handle of `proc` directly (oracle use; the
    /// costed path is a normal `pread` of [`ProcMeta::active`]).
    pub fn active_handle(&self, proc: usize) -> Word {
        self.mem.load(self.proc_meta(proc).active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::FaultConfig;

    #[test]
    fn layout_reserves_null_guard_and_metadata() {
        let m = Machine::new(PmConfig::parallel(4, 1 << 20));
        // Address 0 is inside the null guard; no metadata or pool may
        // start at 0.
        for p in 0..4 {
            let meta = m.proc_meta(p);
            assert!(meta.active > 0);
            assert!(m.pool(p).start > 0);
        }
    }

    #[test]
    fn proc_metadata_areas_are_disjoint_across_blocks() {
        let m = Machine::new(PmConfig::parallel(4, 1 << 20));
        let b = m.cfg().block_size;
        let mut blocks: Vec<usize> = (0..4).map(|p| m.proc_meta(p).active / b).collect();
        blocks.dedup();
        assert_eq!(blocks.len(), 4, "each proc's metadata in its own block");
    }

    #[test]
    fn pools_are_disjoint() {
        let m = Machine::with_pool_words(PmConfig::parallel(3, 1 << 20), 1 << 10);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let (a, b) = (m.pool(i), m.pool(j));
                assert!(a.end() <= b.start || b.end() <= a.start);
            }
        }
    }

    #[test]
    fn user_regions_do_not_overlap_machine_state() {
        let m = Machine::with_pool_words(PmConfig::parallel(2, 1 << 16), 1 << 10);
        let r1 = m.alloc_region(100);
        let r2 = m.alloc_region(100);
        assert!(r1.end() <= r2.start);
        for p in 0..2 {
            assert!(m.pool(p).end() <= r1.start);
        }
    }

    #[test]
    fn ctx_has_pool_installed() {
        let m = Machine::new(PmConfig::parallel(2, 1 << 20));
        let mut ctx = m.ctx(1);
        ctx.begin_capsule("t");
        let a = ctx.palloc(4);
        assert!(m.pool(1).contains(a));
    }

    #[test]
    fn fault_config_reaches_ctx() {
        let cfg = PmConfig::parallel(1, 1 << 16)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 1));
        let m = Machine::new(cfg);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("t");
        assert!(ctx.pwrite(1, 1).is_err());
        assert!(!m.liveness().is_live(0));
    }

    #[test]
    #[should_panic(expected = "persistent memory exhausted")]
    fn oversized_machine_panics_at_construction_or_alloc() {
        let m = Machine::with_pool_words(PmConfig::parallel(1, 1 << 12), 1 << 10);
        let _ = m.alloc_region(1 << 12);
    }

    #[test]
    fn volatile_machines_report_epoch_zero_and_flush_trivially() {
        let m = Machine::new(PmConfig::parallel(2, 1 << 16));
        assert_eq!(m.epoch(), 0);
        m.flush().unwrap();
        m.mark_clean().unwrap();
    }

    #[cfg(unix)]
    fn tmp(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppm-machine-test-{}-{tag}.ppm", std::process::id()));
        p
    }

    #[cfg(unix)]
    #[test]
    fn durable_reopen_reproduces_layout_and_data() {
        let path = tmp("layout");
        let cfg = PmConfig::parallel(3, 1 << 16).with_block_size(16);
        let (region_created, meta_created, pool_created) = {
            let m = Machine::create_durable_with_pool_words(cfg, 1 << 10, &path).unwrap();
            assert_eq!(m.epoch(), 1);
            let r = m.alloc_region(64);
            m.mem().write_range(r.start, &[11, 22, 33]);
            m.mem().store(m.proc_meta(1).active, 777);
            m.flush().unwrap();
            (r, m.proc_meta(1).active, m.pool(2))
        };
        let m = Machine::reopen(&path).unwrap();
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.procs(), 3);
        assert_eq!(m.cfg().block_size, 16);
        assert_eq!(m.pool_words(), 1 << 10);
        // Same deterministic layout as the creating run.
        assert_eq!(m.proc_meta(1).active, meta_created);
        assert_eq!(m.pool(2), pool_created);
        let r = m.alloc_region(64);
        assert_eq!(r, region_created);
        // Same words.
        assert_eq!(m.mem().to_vec(r.start, 3), vec![11, 22, 33]);
        assert_eq!(m.mem().load(m.proc_meta(1).active), 777);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn attach_shares_epoch_and_layout_with_the_creator() {
        let path = tmp("attach");
        let cfg = PmConfig::parallel(2, 1 << 14);
        let creator = Machine::create_durable_with_pool_words(cfg, 1 << 8, &path).unwrap();
        assert_eq!(creator.epoch(), 1);
        let r = creator.alloc_region(32);
        creator.mem().store(r.at(3), 99);

        let worker =
            Machine::attach(&path, FaultConfig::none(), ppm_pm::ValidateMode::Strict).unwrap();
        // Same epoch (no bump), same deterministic layout, same words.
        assert_eq!(worker.epoch(), 1);
        assert_eq!(worker.procs(), 2);
        assert_eq!(worker.proc_meta(1).active, creator.proc_meta(1).active);
        assert_eq!(worker.pool(0), creator.pool(0));
        let r2 = worker.alloc_region(32);
        assert_eq!(r2, r);
        assert_eq!(worker.mem().load(r2.at(3)), 99);
        // Stores propagate both ways through the shared mapping.
        worker.mem().store(r.at(5), 55);
        assert_eq!(creator.mem().load(r.at(5)), 55);

        drop(worker);
        drop(creator);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn reopen_with_overrides_run_properties() {
        let path = tmp("overrides");
        {
            let m = Machine::create_durable(PmConfig::parallel(1, 1 << 14), &path).unwrap();
            m.mark_clean().unwrap();
        }
        let m = Machine::reopen_with(
            &path,
            FaultConfig::none().with_scheduled_hard_fault(0, 1),
            ppm_pm::ValidateMode::Record,
        )
        .unwrap();
        assert_eq!(m.cfg().validate, ppm_pm::ValidateMode::Record);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("t");
        assert!(ctx.pwrite(1, 1).is_err(), "overridden fault config applies");
        std::fs::remove_file(&path).unwrap();
    }
}
