//! The continuation arena: closures "in persistent memory".
//!
//! The paper stores closures (capsule state) in persistent memory and uses
//! their addresses as restart pointers and deque entries. In this
//! reproduction the closure *content* is a Rust object (`Cont`), and the
//! arena maps a persistent address — obtained from the processor's
//! restart-stable allocator (§4.1) — to that object. The address is the
//! *handle* that flows through persistent memory (deque entries, restart
//! pointer words); the arena is the backing store.
//!
//! Registration is idempotent under restarts: the address comes from
//! [`ppm_pm::ProcCtx::palloc`], which rolls back on restart, so a re-run
//! registers an equivalent closure at the same address (overwriting the
//! previous, equivalent, entry). The one costed external write per
//! registration models filling the (constant-size) closure.
//!
//! Handle `0` is reserved as the null handle; machine layout guarantees
//! address 0 is never allocated.
//!
//! Since the persistent-capsule refactor there are two kinds of handle,
//! and [`ContArena::resolve`] treats the persistent words as the
//! authority on which is which:
//!
//! * **Frame handles**: the words at the handle parse as a
//!   [`ppm_pm::frame`] frame fully describing the closure. These are
//!   rehydrated through the machine's
//!   [`crate::registry::CapsuleRegistry`] on *every* resolution — never
//!   cached in the map — because frame addresses come from pool
//!   allocators whose cursors reset between runs (and on
//!   replay-from-root recovery), so an address can denote different
//!   frames over a machine's lifetime; the words are always current,
//!   a cache would not be. This is also what makes frame handles
//!   survive process death: a fresh process resolves them from
//!   persistent words alone.
//! * **Legacy closure handles** ([`ContArena::register`] /
//!   [`ContArena::register_at`]): the closure content is a process-local
//!   Rust object; the persistent word is only a marker (never
//!   frame-shaped). These resolve through the map and die with the
//!   process.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use ppm_pm::{Addr, PersistentMemory, PmResult, ProcCtx, Word};

use crate::capsule::Cont;
use crate::registry::{CapsuleRegistry, RehydrateError};

/// The reserved null handle: "no continuation".
pub const NULL_HANDLE: Word = 0;

/// Number of words a closure occupies in the persistent address space.
/// Closures are constant-size in the model; one word of costed content is
/// enough to account for them (the Rust object carries the rest).
pub const CLOSURE_WORDS: usize = 1;

const SHARDS: usize = 16;

/// Shared registry of continuations keyed by persistent address.
///
/// Sharded to keep registration (owner-local) from contending with lookups
/// (thieves resolving stolen handles).
pub struct ContArena {
    shards: Vec<RwLock<HashMap<Addr, Cont>>>,
    /// Frame-rehydration backing (memory + registry); absent for
    /// standalone arenas, always present on machine-owned arenas.
    rehydrate: Option<(Arc<PersistentMemory>, Arc<CapsuleRegistry>)>,
}

impl std::fmt::Debug for ContArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContArena({} entries)", self.len())
    }
}

impl Default for ContArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ContArena {
    /// Creates an empty arena without frame rehydration.
    pub fn new() -> Self {
        ContArena {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            rehydrate: None,
        }
    }

    /// Creates an empty arena that can rehydrate frame handles from
    /// `mem` through `registry` (machine construction path).
    pub fn with_rehydration(mem: Arc<PersistentMemory>, registry: Arc<CapsuleRegistry>) -> Self {
        ContArena {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            rehydrate: Some((mem, registry)),
        }
    }

    #[inline]
    fn shard(&self, addr: Addr) -> &RwLock<HashMap<Addr, Cont>> {
        &self.shards[(addr / CLOSURE_WORDS) % SHARDS]
    }

    /// Registers `cont` at a fresh persistent address drawn from the
    /// executing processor's pool. Costs one external write (filling the
    /// closure). Idempotent under capsule restart.
    pub fn register(&self, ctx: &mut ProcCtx, cont: Cont) -> PmResult<Word> {
        let addr = ctx.palloc(CLOSURE_WORDS);
        // Insert before the costed write: if the write faults, the entry is
        // unreachable (the handle is not yet published anywhere) and the
        // re-run will overwrite it with an equivalent closure.
        self.shard(addr).write().insert(addr, cont);
        ctx.pwrite(addr, 1)?; // closure content marker
        Ok(addr as Word)
    }

    /// Registers `cont` at a *fixed* slot address (the per-processor
    /// two-slot swap of §4.1's tail-call optimization, used by the engine
    /// for thread continuations). Costs one external write.
    pub fn register_at(
        &self,
        ctx: &mut ProcCtx,
        slot: Addr,
        cont: Cont,
        gen: Word,
    ) -> PmResult<()> {
        self.shard(slot).write().insert(slot, cont);
        ctx.pwrite(slot, gen)?;
        Ok(())
    }

    /// Registers `cont` at a fixed address with no cost and no fault risk.
    /// Machine-setup use only (e.g. installing the root thread before the
    /// processors start); runtime code must use the costed paths.
    pub fn preregister(&self, addr: Addr, cont: Cont) {
        assert_ne!(addr, 0, "address 0 is the null handle");
        self.shard(addr).write().insert(addr, cont);
    }

    /// Resolves a handle from the in-process map only. `None` for the
    /// null handle or an address never registered in this process.
    pub fn get(&self, handle: Word) -> Option<Cont> {
        if handle == NULL_HANDLE {
            return None;
        }
        let addr = handle as Addr;
        self.shard(addr).read().get(&addr).cloned()
    }

    /// Resolves a handle: if the persistent words at it parse as a
    /// capsule frame, rehydrate through the registry (the words are
    /// authoritative — frame addresses can be reused across runs, so
    /// rehydrations are never cached); otherwise fall back to the
    /// in-process map. `None` when the handle is null, unregistered, and
    /// not a well-formed registered frame.
    pub fn resolve(&self, handle: Word) -> Option<Cont> {
        self.try_resolve(handle).ok()
    }

    /// [`ContArena::resolve`] with the rehydration failure preserved, for
    /// recovery code that must distinguish "legacy closure" from
    /// "malformed frame". The null handle and map misses report as frame
    /// errors.
    pub fn try_resolve(&self, handle: Word) -> Result<Cont, RehydrateError> {
        if let Some((mem, registry)) = self.rehydrate.as_ref() {
            if ppm_pm::is_frame_at(mem, handle as Addr) {
                return registry.rehydrate(mem, handle);
            }
        }
        self.get(handle)
            .ok_or(RehydrateError::Frame(ppm_pm::FrameError::NotAFrame {
                addr: handle as Addr,
                word: 0,
            }))
    }

    /// Number of live registrations (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::end_capsule;
    use ppm_pm::{MemStats, PersistentMemory, PmConfig, Region};
    use std::sync::Arc;

    fn ctx_with_pool() -> ProcCtx {
        let cfg = PmConfig::small_single();
        let mem = Arc::new(PersistentMemory::new(cfg.persistent_words, cfg.block_size));
        let stats = Arc::new(MemStats::new(1));
        let live = Arc::new(ppm_pm::Liveness::new(1));
        let mut ctx = ProcCtx::new(&cfg, 0, mem, stats, live);
        ctx.set_alloc_pool(
            Region {
                start: 64,
                len: 1024,
            },
            0,
        );
        ctx
    }

    #[test]
    fn register_and_get_round_trip() {
        let arena = ContArena::new();
        let mut ctx = ctx_with_pool();
        ctx.begin_capsule("t");
        let h = arena.register(&mut ctx, end_capsule()).unwrap();
        assert_ne!(h, NULL_HANDLE);
        let c = arena.get(h).expect("registered handle resolves");
        assert_eq!(c.name(), "end");
    }

    #[test]
    fn null_handle_resolves_to_none() {
        let arena = ContArena::new();
        assert!(arena.get(NULL_HANDLE).is_none());
        assert!(arena.get(12345).is_none());
    }

    #[test]
    fn restart_re_registers_at_same_address() {
        let arena = ContArena::new();
        let mut ctx = ctx_with_pool();
        ctx.begin_capsule("fork-like");
        let h1 = arena.register(&mut ctx, end_capsule()).unwrap();
        // Simulate a soft fault and re-run of the registering capsule.
        ctx.restart_capsule("fork-like");
        let h2 = arena.register(&mut ctx, end_capsule()).unwrap();
        assert_eq!(h1, h2, "restart must reuse the same closure address");
        assert_eq!(arena.len(), 1, "re-registration overwrites, not leaks");
    }

    #[test]
    fn distinct_registrations_get_distinct_handles() {
        let arena = ContArena::new();
        let mut ctx = ctx_with_pool();
        ctx.begin_capsule("a");
        let h1 = arena.register(&mut ctx, end_capsule()).unwrap();
        ctx.complete_capsule();
        ctx.begin_capsule("b");
        let h2 = arena.register(&mut ctx, end_capsule()).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn register_at_overwrites_slot() {
        let arena = ContArena::new();
        let mut ctx = ctx_with_pool();
        ctx.begin_capsule("t");
        arena.register_at(&mut ctx, 40, end_capsule(), 1).unwrap();
        arena
            .register_at(
                &mut ctx,
                40,
                crate::capsule::capsule("v2", |_| Ok(crate::capsule::Next::End)),
                2,
            )
            .unwrap();
        assert_eq!(arena.get(40).unwrap().name(), "v2");
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn registration_costs_one_write() {
        let arena = ContArena::new();
        let mut ctx = ctx_with_pool();
        ctx.begin_capsule("t");
        let before = ctx.stats().snapshot().total_writes;
        arena.register(&mut ctx, end_capsule()).unwrap();
        assert_eq!(ctx.stats().snapshot().total_writes, before + 1);
    }
}
