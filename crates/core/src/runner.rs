//! The capsule engine: installing and running capsules with restarts.
//!
//! This module implements the machine-level protocol of §2/§4: each
//! completed capsule's *last instructions* write the next capsule's closure
//! and the new restart pointer ("installing" it); a soft fault re-runs the
//! active capsule from its beginning after a constant-cost restart
//! sequence; a hard fault stops the processor, leaving its restart pointer
//! in persistent memory for thieves to pick up (`getActiveCapsule`).
//!
//! Thread continuations are installed into the processor's two-slot swap
//! area (the §4.1 optimization: "the implementation could use just two
//! closures and swap back and forth"), so long-running threads consume no
//! pool space; forked children are registered at fresh pool addresses since
//! their handles sit in deques for arbitrarily long.
//!
//! Capsules denoted by *persistent frames* ([`Next::JumpHandle`] /
//! [`Next::ForkHandle`]) bypass the swap area: the frame address itself
//! becomes the restart pointer (one external write instead of two), and —
//! because the frame's words fully describe the closure — a fresh process
//! can rehydrate the pointed-to capsule after a crash instead of replaying
//! the computation from its root.

use ppm_pm::{Addr, Fault, PmResult, ProcCtx, Word};

use crate::arena::{ContArena, NULL_HANDLE};
use crate::capsule::{Cont, Next};
use crate::machine::ProcMeta;

/// Per-processor installation state: where the restart pointer lives and
/// which swap slot receives the next thread-continuation closure.
#[derive(Debug)]
pub struct InstallCtx {
    active: Addr,
    slot_a: Addr,
    slot_b: Addr,
    use_a: bool,
    gen: Word,
}

impl InstallCtx {
    /// Creates installation state over processor metadata.
    pub fn new(meta: ProcMeta) -> Self {
        InstallCtx {
            active: meta.active,
            slot_a: meta.slot_a,
            slot_b: meta.slot_b,
            use_a: true,
            gen: 1,
        }
    }

    /// Address of the restart-pointer word this context writes.
    pub fn active_addr(&self) -> Addr {
        self.active
    }

    #[inline]
    fn next_slot(&self) -> Addr {
        if self.use_a {
            self.slot_a
        } else {
            self.slot_b
        }
    }

    /// Installs `c` as the next capsule: writes its closure into the free
    /// swap slot and swings the restart pointer to it.
    ///
    /// The metadata layout places each swap slot adjacent to the restart
    /// pointer (`[slot_a, active, slot_b, watermark]`, block-aligned), so
    /// filling the closure and swinging the pointer is **one** contiguous
    /// block transfer — the §4.1 "swap back and forth" pair lives in a
    /// single block. The write may fault, in which case the *current*
    /// capsule restarts and the (idempotent) install is re-attempted.
    /// Machines whose block size cannot hold the pair fall back to the
    /// two-write install.
    pub fn install_jump(&mut self, ctx: &mut ProcCtx, arena: &ContArena, c: &Cont) -> PmResult<()> {
        let slot = self.next_slot();
        let adjacent = self.slot_a + 1 == self.active && self.active + 1 == self.slot_b;
        let (lo, pair) = if self.use_a {
            (self.slot_a, [self.gen, self.slot_a as Word])
        } else {
            (self.active, [self.slot_b as Word, self.gen])
        };
        let b = ctx.block_size();
        if adjacent && lo / b == (lo + 1) / b {
            // The in-process map entry is uncosted bookkeeping; the costed
            // closure content is the block write below.
            arena.preregister(slot, c.clone());
            ctx.write_block(lo, &pair)?;
        } else {
            arena.register_at(ctx, slot, c.clone(), self.gen)?;
            ctx.pwrite(self.active, slot as Word)?;
        }
        // Flip only after the install succeeded: a re-run must target the
        // same slot.
        self.use_a = !self.use_a;
        self.gen += 1;
        Ok(())
    }

    /// Clears the restart pointer (the processor is leaving threaded user
    /// code, or halting). One external write.
    pub fn install_null(&mut self, ctx: &mut ProcCtx) -> PmResult<()> {
        ctx.pwrite(self.active, NULL_HANDLE)
    }

    /// Installs a frame-denoted capsule: swings the restart pointer to the
    /// frame address itself. One external write — the closure was already
    /// persisted when the frame was written, so there is nothing to copy
    /// into a swap slot, and the restart pointer becomes meaningful to
    /// *any* process that can read persistent memory.
    pub fn install_handle(&mut self, ctx: &mut ProcCtx, handle: Word) -> PmResult<()> {
        ctx.pwrite(self.active, handle)
    }
}

/// Result of driving one capsule to completion.
pub enum Step {
    /// The installed successor; keep driving.
    Next(Cont),
    /// The chain is finished on this processor.
    Done,
}

/// Hook invoked when a capsule forks: given the freshly registered child
/// handle, the thread's continuation, and — when the continuation is a
/// persistent frame — its frame handle, produce the capsule to install
/// next (a scheduler wraps the continuation in its `pushBottom` sequence,
/// threading the frame handle through so the post-push jump keeps the
/// restart pointer frame-backed).
pub type ForkWrap<'a> = &'a (dyn Fn(Word, Cont, Option<Word>) -> Cont + 'a);

/// Runs `cur` to completion, restarting on soft faults, and installs its
/// successor. `fork_wrap` handles [`Next::Fork`] (absent ⇒ forking
/// panics: the caller is a non-forking chain). `on_end` converts
/// [`Next::End`] (thread finished) into a jump — the scheduler passes its
/// own entry capsule; absent ⇒ `End` finishes the chain.
///
/// Returns `Err(Fault::Hard)` only if the processor dies; soft faults never
/// escape.
pub fn run_capsule(
    ctx: &mut ProcCtx,
    arena: &ContArena,
    install: &mut InstallCtx,
    cur: &Cont,
    fork_wrap: Option<ForkWrap<'_>>,
    on_end: Option<&Cont>,
) -> Result<Step, Fault> {
    ctx.begin_capsule(cur.name());
    ctx.set_war_exempt(!cur.war_checked());
    // Open the causal span before the retry loop: the span id is
    // restart-stable (one execution = one span, however many soft-fault
    // re-runs it takes), and the frames the body writes carry it as
    // their parent-span word. An untraced (scheduler) capsule instead
    // breaks the same-thread parent chain here — see `ProcCtx::span_begin`.
    ctx.span_begin(cur.name(), cur.traced());
    loop {
        let attempt: PmResult<Step> =
            run_body_and_install(ctx, arena, install, cur, fork_wrap, on_end);
        match attempt {
            Ok(step) => {
                ctx.complete_capsule();
                ctx.set_war_exempt(false);
                return Ok(step);
            }
            Err(Fault::Soft) => {
                ctx.restart_capsule(cur.name());
                // The restart sequence itself performs external transfers
                // and can fault; retry until it completes or the processor
                // dies.
                loop {
                    match ctx.charge_restart() {
                        Ok(()) => break,
                        Err(Fault::Soft) => continue,
                        Err(Fault::Hard) => return Err(Fault::Hard),
                    }
                }
            }
            Err(Fault::Hard) => return Err(Fault::Hard),
        }
    }
}

fn run_body_and_install(
    ctx: &mut ProcCtx,
    arena: &ContArena,
    install: &mut InstallCtx,
    cur: &Cont,
    fork_wrap: Option<ForkWrap<'_>>,
    on_end: Option<&Cont>,
) -> PmResult<Step> {
    let next = cur.run(ctx)?;
    // Charge the frames the body staged as coalesced block persists
    // *before* anything can publish their handles: after this point the
    // staged words are paid for, so an install or a successor's deque
    // write never exposes an uncharged frame. A fault here restarts the
    // capsule like any body fault.
    ctx.flush_staged()?;
    // The installs below may publish frames the body just allocated (the
    // restart pointer can become one of them); make the persisted pool
    // watermark cover them first, so a crash after the publication still
    // lets a resuming process allocate strictly above every live frame.
    ctx.publish_watermark();
    match next {
        Next::Jump(c) => {
            install.install_jump(ctx, arena, &c)?;
            Ok(Step::Next(c))
        }
        Next::JumpHandle(h) => {
            let c = resolve_handle(arena, h, cur.name());
            note_frame_provenance(ctx, h);
            install.install_handle(ctx, h)?;
            Ok(Step::Next(c))
        }
        Next::End => match on_end {
            Some(sched) => {
                install.install_jump(ctx, arena, sched)?;
                Ok(Step::Next(sched.clone()))
            }
            None => {
                install.install_null(ctx)?;
                Ok(Step::Done)
            }
        },
        Next::Halt => {
            install.install_null(ctx)?;
            Ok(Step::Done)
        }
        Next::Fork { child, cont } => {
            let handle = arena.register(ctx, child)?;
            let target = match fork_wrap {
                Some(w) => w(handle, cont, None),
                None => panic_no_scheduler(cur.name()),
            };
            install.install_jump(ctx, arena, &target)?;
            Ok(Step::Next(target))
        }
        Next::ForkHandle { child, cont } => {
            // Both sides were persisted by the capsule body; the child
            // frame handle goes straight into the deque and the
            // continuation resolves through the arena (rehydrating from
            // its frame on first touch).
            let cont_c = resolve_handle(arena, cont, cur.name());
            let target = match fork_wrap {
                Some(w) => w(child, cont_c, Some(cont)),
                None => panic_no_scheduler(cur.name()),
            };
            install.install_jump(ctx, arena, &target)?;
            Ok(Step::Next(target))
        }
    }
}

/// Records the causal edge of a frame-handle install: the frame's
/// parent-span word plus the frame address, delivered to the next traced
/// capsule begin. Uncosted oracle read — provenance metadata, charged to
/// nobody (the costed install is the restart-pointer write). Runs after
/// the current (possibly untraced, chain-breaking) capsule body, so a
/// scheduler's `popBottom`/`popTop` hand-off survives to the computation
/// capsule it installs. Public for the scheduler driver, which performs
/// the same hand-off when it plants recovered or adopted frames.
pub fn note_frame_provenance(ctx: &mut ProcCtx, handle: Word) {
    if let Some(parent) = ppm_pm::frame::frame_parent_span(ctx.raw_mem(), handle as Addr) {
        ctx.set_pending_parent(parent, handle as Addr);
    }
}

fn resolve_handle(arena: &ContArena, handle: Word, from: &str) -> Cont {
    arena.resolve(handle).unwrap_or_else(|| {
        panic!("capsule `{from}` jumped to dangling continuation handle {handle} — scheduler bug")
    })
}

fn panic_no_scheduler(name: &str) -> ! {
    panic!(
        "capsule `{name}` forked but this engine has no scheduler; \
         run fork-join computations on ppm-sched"
    )
}

/// Drives a non-forking capsule chain to completion on one processor.
/// Returns `Err(Fault::Hard)` if the processor dies mid-chain.
pub fn run_chain(
    ctx: &mut ProcCtx,
    arena: &ContArena,
    install: &mut InstallCtx,
    first: Cont,
) -> Result<(), Fault> {
    let mut cur = first;
    loop {
        match run_capsule(ctx, arena, install, &cur, None, None)? {
            Step::Next(c) => cur = c,
            Step::Done => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::{capsule, final_capsule, step_capsule};
    use crate::machine::Machine;
    use ppm_pm::{FaultConfig, PmConfig};

    fn machine_with(f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 16).with_fault(f))
    }

    #[test]
    fn chain_runs_in_order() {
        let m = machine_with(FaultConfig::none());
        let r = m.alloc_region(8);
        let c3 = final_capsule("c3", move |ctx| ctx.pwrite(r.at(2), 3));
        let c2 = step_capsule("c2", move |ctx| ctx.pwrite(r.at(1), 2), c3);
        let c1 = step_capsule("c1", move |ctx| ctx.pwrite(r.at(0), 1), c2);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        run_chain(&mut ctx, m.arena(), &mut install, c1).unwrap();
        assert_eq!(m.mem().to_vec(r.start, 3), vec![1, 2, 3]);
        // The restart pointer is cleared at the end.
        assert_eq!(m.active_handle(0), NULL_HANDLE);
    }

    #[test]
    fn installs_write_restart_pointer() {
        let m = machine_with(FaultConfig::none());
        let c2 = final_capsule("c2", |_| Ok(()));
        let c1 = step_capsule("c1", |_| Ok(()), c2);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        let step = run_capsule(&mut ctx, m.arena(), &mut install, &c1, None, None).unwrap();
        // After c1 completes, the active handle resolves to c2's closure.
        let h = m.active_handle(0);
        assert_ne!(h, NULL_HANDLE);
        assert_eq!(m.arena().get(h).unwrap().name(), "c2");
        match step {
            Step::Next(c) => assert_eq!(c.name(), "c2"),
            Step::Done => panic!("expected Next"),
        }
    }

    #[test]
    fn soft_faults_restart_until_success_with_identical_effects() {
        let m = machine_with(FaultConfig::soft(0.2, 1234));
        let r = m.alloc_region(64);
        // A chain of 8 capsules each writing a distinct word.
        let mut cur = final_capsule("last", move |ctx| ctx.pwrite(r.at(63), 100));
        for i in (0..8).rev() {
            let prev = cur;
            cur = step_capsule("step", move |ctx| ctx.pwrite(r.at(i), i as u64 + 1), prev);
        }
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        run_chain(&mut ctx, m.arena(), &mut install, cur).unwrap();
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
        assert_eq!(m.mem().load(r.at(63)), 100);
        let snap = m.snapshot();
        assert!(snap.soft_faults > 0, "f=0.2 over ~27 writes must fault");
        assert!(snap.capsule_restarts() > 0);
    }

    #[test]
    fn hard_fault_stops_chain_and_leaves_restart_pointer() {
        let m = machine_with(FaultConfig::none().with_scheduled_hard_fault(0, 4));
        let r = m.alloc_region(8);
        let c3 = final_capsule("c3", move |ctx| ctx.pwrite(r.at(2), 3));
        let c2 = step_capsule("c2", move |ctx| ctx.pwrite(r.at(1), 2), c3);
        let c1 = step_capsule("c1", move |ctx| ctx.pwrite(r.at(0), 1), c2);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        let err = run_chain(&mut ctx, m.arena(), &mut install, c1).unwrap_err();
        assert_eq!(err, Fault::Hard);
        assert!(!m.liveness().is_live(0));
        // c1 completed (write r0 = access 1, coalesced install of c2 = 2),
        // then c2 starts: write r1 (3), and its install of c3 faults at
        // access 4. The restart pointer still points at the last
        // *installed* capsule, so a thief could resume from there.
        let h = m.active_handle(0);
        assert_ne!(h, NULL_HANDLE);
        assert!(m.arena().get(h).is_some());
    }

    #[test]
    fn total_work_under_faults_is_constant_factor_of_faultless() {
        // A long chain; compare W (f = 0) with W_f (f = 0.05) — Theorem 3.2
        // style accounting at engine level.
        let build = |_m: &Machine, r: ppm_pm::Region| {
            let mut cur = final_capsule("last", |_| Ok(()));
            for i in (0..200usize).rev() {
                let prev = cur;
                cur = step_capsule("s", move |ctx| ctx.pwrite(r.at(i % 64), 1), prev);
            }
            cur
        };
        let faultless = {
            let m = machine_with(FaultConfig::none());
            let r = m.alloc_region(64);
            let mut ctx = m.ctx(0);
            let mut install = InstallCtx::new(m.proc_meta(0));
            run_chain(&mut ctx, m.arena(), &mut install, build(&m, r)).unwrap();
            m.snapshot().total_work()
        };
        let faulty = {
            let m = machine_with(FaultConfig::soft(0.05, 77));
            let r = m.alloc_region(64);
            let mut ctx = m.ctx(0);
            let mut install = InstallCtx::new(m.proc_meta(0));
            run_chain(&mut ctx, m.arena(), &mut install, build(&m, r)).unwrap();
            m.snapshot().total_work()
        };
        assert!(faulty >= faultless);
        assert!(
            (faulty as f64) < 2.0 * faultless as f64,
            "W_f = {faulty} should be within a small constant of W = {faultless}"
        );
    }

    #[test]
    #[should_panic(expected = "no scheduler")]
    fn fork_without_scheduler_panics() {
        let m = machine_with(FaultConfig::none());
        let forker = capsule("forker", |_ctx| {
            Ok(Next::Fork {
                child: crate::capsule::end_capsule(),
                cont: crate::capsule::end_capsule(),
            })
        });
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        let _ = run_chain(&mut ctx, m.arena(), &mut install, forker);
    }
}
