//! # `ppm-core` — the capsule runtime of the Parallel-PM model
//!
//! This crate implements the programming methodology of §§2–5 of
//! *The Parallel Persistent Memory Model* (Blelloch et al., SPAA 2018):
//!
//! * **Capsules and closures** (the [`mod@capsule`] module): immutable, re-runnable units
//!   of computation whose captured state is the paper's closure; restart =
//!   re-run with fresh ephemeral state.
//! * **The continuation arena** ([`arena`]): closures addressed by
//!   persistent-memory handles minted from the restart-stable per-processor
//!   allocator of §4.1, so forked threads can be stored in deques and
//!   stolen across processors (including from dead ones).
//! * **The engine** ([`runner`]): installs capsules (writing the closure
//!   and swinging the restart pointer as the capsule's last instructions),
//!   restarts on soft faults with the model's constant restart overhead,
//!   and surfaces hard faults to the scheduler.
//! * **Join cells** ([`join`]): the §5 CAM test-and-set join — no CAS, safe
//!   under faults, exactly-once continuation.
//! * **Fork-join combinators** ([`comp`]): continuation-passing composition
//!   of capsules into the binary fork-join DAGs of the multithreaded model,
//!   with dynamic expansion for recursive algorithms.
//! * **Machines** ([`machine`]): bundling memory, statistics, liveness, the
//!   arena and the address-space layout into one instance.
//! * **The capsule registry** ([`registry`]): stable capsule ids mapped to
//!   rehydration constructors, so continuations stored as persistent
//!   frames ([`ppm_pm::frame`]) can be re-materialized from words alone —
//!   by this process (lazily, through [`arena`]) or by a fresh process
//!   recovering a crashed run.
//!
//! The scheduler that maps these computations onto `P` faulty processors
//! lives in `ppm-sched`; this crate is scheduler-agnostic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod capsule;
pub mod comp;
pub mod dsl;
pub mod flag;
pub mod join;
pub mod machine;
pub mod persist;
pub mod registry;
pub mod runner;

pub use arena::{ContArena, CLOSURE_WORDS, NULL_HANDLE};
pub use capsule::{
    capsule, capsule_unchecked, end_capsule, final_capsule, sched_capsule, step_capsule, Capsule,
    Cont, Next,
};
pub use comp::{comp_dyn, comp_fork2, comp_nop, comp_seq, comp_step, par_all, root, seq_all, Comp};
pub use dsl::{fork2, fork_many, jump_to, seq, CapsuleDef, CapsuleSet, Fold, Span, K};
pub use flag::DoneFlag;
pub use join::{fork_join_frames, JoinCell, TOKEN_LEFT, TOKEN_RIGHT, UNSET};
pub use machine::{Machine, ProcMeta, DEFAULT_POOL_WORDS, PROC_META_WORDS};
pub use persist::{
    decode_args, encode_args, FrameDecodeError, FrameDecodeKind, Persist, PoolRefs, ValueError,
    WordReader,
};
pub use registry::{
    frame_args, register_core_capsules, CapsuleId, CapsuleRegistry, CapsuleTracer, PComp,
    RehydrateError, CORE_ID_END, CORE_ID_FINALE, CORE_ID_FORK_PAIR, CORE_ID_JOIN_CAM,
    CORE_ID_JOIN_CHECK, FIRST_USER_CAPSULE_ID,
};
pub use runner::{run_capsule, run_chain, ForkWrap, InstallCtx, Step};
