//! Join cells: synchronizing forked threads without a CAS.
//!
//! §5 of the paper: "a CAM can be used to implement a form of test-and-set
//! ... It can also be used at the join point of two threads in fork-join
//! parallelism to determine who got there last (the one whose CAM from
//! unset was unsuccessful) and hence needs to run the code after the join."
//!
//! A [`JoinCell`] is one persistent word, initially `UNSET` (0). Each of
//! the two arriving threads runs two capsules:
//!
//! 1. a **CAM capsule** that CAMs the cell from `UNSET` to the thread's
//!    token (1 for the left branch, 2 for the right) — a non-reverting CAM,
//!    so the capsule is atomically idempotent (Theorem 5.2); and
//! 2. a **check capsule** that reads the cell: if it holds the thread's own
//!    token the thread arrived *first* and ends (jumps to the scheduler);
//!    otherwise it arrived last and continues with the code after the join.
//!
//! The capsule boundary between the CAM and the check is essential: a CAM's
//! local result cannot survive a fault, so success is observed only by
//! reading the location in a later capsule (the paper's test-and-set
//! idiom). Exactly one thread continues, no matter how many soft faults or
//! which hard faults occur (the stolen thread resumes at whichever of the
//! two capsules was active).

use ppm_pm::{write_frame, Addr, PmResult, ProcCtx, Word};

use crate::capsule::{capsule, Cont, Next};
use crate::registry::{CORE_ID_JOIN_CAM, CORE_ID_JOIN_CHECK};

/// The unset value of a join cell.
pub const UNSET: Word = 0;
/// Token CAM'd by the left (continuing) branch of a fork.
pub const TOKEN_LEFT: Word = 1;
/// Token CAM'd by the right (forked child) branch.
pub const TOKEN_RIGHT: Word = 2;

/// A two-party join cell at a persistent address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCell {
    addr: Addr,
}

impl JoinCell {
    /// Wraps an address as a join cell. The word must be `UNSET`; use
    /// [`JoinCell::init`] inside a capsule to allocate-and-initialize.
    pub fn at(addr: Addr) -> Self {
        JoinCell { addr }
    }

    /// Allocates a cell from the processor's pool and writes `UNSET`.
    /// Restart-stable (same address and value on a capsule re-run); one
    /// external write. The write is first-access-write, so it cannot create
    /// a write-after-read conflict.
    pub fn init(ctx: &mut ProcCtx) -> PmResult<Self> {
        let addr = ctx.palloc(1);
        ctx.pwrite(addr, UNSET)?;
        Ok(JoinCell { addr })
    }

    /// The cell's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Builds the two-capsule arrival chain for one branch: CAM the cell
    /// with `token`, then check; the last arriver jumps to `after`, the
    /// first ends its thread.
    pub fn arrive(self, token: Word, after: Cont) -> Cont {
        assert_ne!(token, UNSET, "a join token must be non-zero");
        let cell = self.addr;
        let check = capsule("join-check", move |ctx| {
            let v = ctx.pread(cell)?;
            if v == token {
                // Our CAM won: we arrived first; the peer will continue.
                Ok(Next::End)
            } else {
                // Someone else's token is installed: we arrived last.
                Ok(Next::Jump(after.clone()))
            }
        });
        capsule("join-cam", move |ctx| {
            ctx.pcam(cell, UNSET, token)?;
            Ok(Next::Jump(check.clone()))
        })
    }

    /// Frame-denotable arrival, CAM half: CAMs the cell with `token`,
    /// writes a persistent frame for the check capsule, and jumps to it
    /// *by handle*, so the restart pointer stays a frame address. `after`
    /// is the frame handle of the post-join continuation.
    pub fn arrive_cam_frame(self, token: Word, after: Word) -> Cont {
        assert_ne!(token, UNSET, "a join token must be non-zero");
        let cell = self.addr;
        capsule("join-cam", move |ctx| {
            ctx.pcam(cell, UNSET, token)?;
            let check = write_frame(ctx, CORE_ID_JOIN_CHECK, &[cell as Word, token, after])?;
            Ok(Next::JumpHandle(check as Word))
        })
    }

    /// Frame-denotable arrival, check half: reads the cell; the first
    /// arriver ends its thread, the last continues with the `after` frame.
    pub fn arrive_check_frame(self, token: Word, after: Word) -> Cont {
        let cell = self.addr;
        capsule("join-check", move |ctx| {
            let v = ctx.pread(cell)?;
            if v == token {
                Ok(Next::End)
            } else {
                Ok(Next::JumpHandle(after))
            }
        })
    }
}

/// Initializes a join cell and writes the two arrival-CAM frames for a
/// fork whose post-join continuation is the frame `after`. Returns the
/// `(left, right)` arrival frame handles — the continuations of the
/// fork's two branches. One external write for the cell plus two frames;
/// restart-stable.
pub fn fork_join_frames(ctx: &mut ProcCtx, after: Word) -> PmResult<(Word, Word)> {
    let cell = JoinCell::init(ctx)?;
    let l = write_frame(
        ctx,
        CORE_ID_JOIN_CAM,
        &[cell.addr() as Word, TOKEN_LEFT, after],
    )?;
    let r = write_frame(
        ctx,
        CORE_ID_JOIN_CAM,
        &[cell.addr() as Word, TOKEN_RIGHT, after],
    )?;
    Ok((l as Word, r as Word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::final_capsule;
    use crate::machine::Machine;
    use crate::runner::{run_chain, InstallCtx};
    use ppm_pm::{FaultConfig, PmConfig};

    fn machine(f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 16).with_fault(f))
    }

    /// Runs both arrival chains sequentially on one processor and returns
    /// how many times `after` ran.
    fn run_both_arrivals(m: &Machine, order: [Word; 2]) -> u64 {
        let out = m.alloc_region(8);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));

        // Allocate the cell in a setup capsule.
        let cell_slot = m.alloc_region(8);
        let setup = final_capsule("setup", move |ctx| {
            let cell = JoinCell::init(ctx)?;
            ctx.pwrite(cell_slot.at(0), cell.addr() as Word)
        });
        run_chain(&mut ctx, m.arena(), &mut install, setup).unwrap();
        let cell = JoinCell::at(m.mem().load(cell_slot.at(0)) as usize);

        for token in order {
            // Each branch, if it continues past the join, writes its own
            // marker word (an idempotent, conflict-free record of "this
            // branch continued").
            let after = final_capsule("after", move |ctx| ctx.pwrite(out.at(token as usize), 1));
            let chain = cell.arrive(token, after);
            run_chain(&mut ctx, m.arena(), &mut install, chain).unwrap();
        }
        m.mem().load(out.at(1)) + m.mem().load(out.at(2))
    }

    #[test]
    fn exactly_one_arrival_continues_left_first() {
        let m = machine(FaultConfig::none());
        assert_eq!(run_both_arrivals(&m, [TOKEN_LEFT, TOKEN_RIGHT]), 1);
    }

    #[test]
    fn exactly_one_arrival_continues_right_first() {
        let m = machine(FaultConfig::none());
        assert_eq!(run_both_arrivals(&m, [TOKEN_RIGHT, TOKEN_LEFT]), 1);
    }

    #[test]
    fn join_survives_soft_faults() {
        for seed in 0..20 {
            let m = machine(FaultConfig::soft(0.2, seed));
            assert_eq!(
                run_both_arrivals(&m, [TOKEN_LEFT, TOKEN_RIGHT]),
                1,
                "seed {seed}: after-join code must run exactly once"
            );
        }
    }

    #[test]
    fn first_arriver_ends_thread() {
        let m = machine(FaultConfig::none());
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        let cell_slot = m.alloc_region(8);
        let setup = final_capsule("setup", move |ctx| {
            let cell = JoinCell::init(ctx)?;
            ctx.pwrite(cell_slot.at(0), cell.addr() as Word)
        });
        run_chain(&mut ctx, m.arena(), &mut install, setup).unwrap();
        let cell = JoinCell::at(m.mem().load(cell_slot.at(0)) as usize);

        // Only the left branch arrives: its chain must End without running
        // the continuation.
        let marker = m.alloc_region(8);
        let after = final_capsule("after", move |ctx| ctx.pwrite(marker.at(0), 1));
        run_chain(
            &mut ctx,
            m.arena(),
            &mut install,
            cell.arrive(TOKEN_LEFT, after),
        )
        .unwrap();
        assert_eq!(m.mem().load(marker.at(0)), 0, "after must not have run");
        assert_eq!(m.mem().load(cell.addr()), TOKEN_LEFT);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_token_rejected() {
        let cell = JoinCell::at(100);
        let _ = cell.arrive(UNSET, crate::capsule::end_capsule());
    }
}
