//! Composable fork-join computations in continuation-passing style.
//!
//! Writing algorithms directly as capsule graphs is verbose: every capsule
//! must carry its continuation, forks must allocate join cells, and joins
//! must follow the two-capsule CAM/check protocol. This module provides the
//! paper's §4 programming methodology as combinators.
//!
//! A [`Comp`] is a computation awaiting its continuation: a function from
//! "what to run afterwards" (a [`Cont`]) to the computation's entry capsule.
//! Combinators compose them:
//!
//! * [`comp_step`] — one capsule running a body (a "persistent call" whose
//!   boundaries are capsule boundaries);
//! * [`comp_seq`] / [`seq_all`] — sequential composition;
//! * [`comp_fork2`] / [`par_all`] — parallel composition: fork the right
//!   branch, run the left, join with the §5 CAM test-and-set protocol;
//! * [`comp_dyn`] — dynamic expansion: a capsule that *computes* the rest
//!   of the computation at run time, which is how recursive
//!   divide-and-conquer algorithms unfold without materializing their whole
//!   task tree up front.
//!
//! All combinators produce capsules that are write-after-read conflict free
//! by construction provided the user bodies are (checked dynamically in
//! strict mode).

use std::sync::Arc;

use ppm_pm::{PmResult, ProcCtx};

use crate::capsule::{capsule, Cont, Next};
use crate::join::{JoinCell, TOKEN_LEFT, TOKEN_RIGHT};

/// A computation awaiting its continuation.
pub type Comp = Arc<dyn Fn(Cont) -> Cont + Send + Sync>;

/// The empty computation: immediately continues.
pub fn comp_nop() -> Comp {
    Arc::new(|k| k)
}

/// A single capsule running `body`, then continuing. `body` must be
/// idempotent under re-runs (write-after-read conflict free).
pub fn comp_step<F>(name: &'static str, body: F) -> Comp
where
    F: Fn(&mut ProcCtx) -> PmResult<()> + Send + Sync + 'static,
{
    let body = Arc::new(body);
    Arc::new(move |k: Cont| {
        let body = body.clone();
        capsule(name, move |ctx| {
            body(ctx)?;
            Ok(Next::Jump(k.clone()))
        })
    })
}

/// Sequential composition: `a` then `b`.
pub fn comp_seq(a: Comp, b: Comp) -> Comp {
    Arc::new(move |k| a(b(k)))
}

/// Sequential composition of many computations, in order.
pub fn seq_all(comps: Vec<Comp>) -> Comp {
    comps
        .into_iter()
        .rev()
        .fold(comp_nop(), |acc, c| comp_seq(c, acc))
}

/// Parallel composition: forks `right` as a new thread, runs `left` on the
/// current thread, and joins. Whichever branch finishes last continues;
/// the other thread ends and its processor returns to the scheduler.
///
/// The fork capsule allocates the join cell from the executing processor's
/// pool (restart-stable) and initializes it with a first-access write, then
/// returns [`Next::Fork`]; the engine registers the child closure and the
/// scheduler pushes it (§6.1).
pub fn comp_fork2(left: Comp, right: Comp) -> Comp {
    Arc::new(move |k: Cont| {
        let left = left.clone();
        let right = right.clone();
        capsule("fork2", move |ctx| {
            let cell = JoinCell::init(ctx)?;
            let lchain = left(cell.arrive(TOKEN_LEFT, k.clone()));
            let rchain = right(cell.arrive(TOKEN_RIGHT, k.clone()));
            Ok(Next::Fork {
                child: rchain,
                cont: lchain,
            })
        })
    })
}

/// Parallel composition of many computations as a balanced binary fork
/// tree (the model's DAG nodes have out-degree at most two).
pub fn par_all(mut comps: Vec<Comp>) -> Comp {
    match comps.len() {
        0 => comp_nop(),
        1 => comps.pop().expect("len checked"),
        _ => {
            let mid = comps.len() / 2;
            let right = comps.split_off(mid);
            comp_fork2(par_all(comps), par_all(right))
        }
    }
}

/// Dynamic expansion: a capsule whose body computes the remaining
/// computation. `f` runs at capsule granularity — it may read persistent
/// memory (costed) and must be deterministic and conflict free, since a
/// restart re-evaluates it.
pub fn comp_dyn<F>(name: &'static str, f: F) -> Comp
where
    F: Fn(&mut ProcCtx) -> PmResult<Comp> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    Arc::new(move |k: Cont| {
        let f = f.clone();
        let k = k.clone();
        capsule(name, move |ctx| {
            let rest = f(ctx)?;
            Ok(Next::Jump(rest(k.clone())))
        })
    })
}

/// Builds the root capsule of a computation whose final act is running
/// `finale` (typically setting a completion flag).
pub fn root(comp: &Comp, finale: Cont) -> Cont {
    comp(finale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::final_capsule;
    use crate::machine::Machine;
    use crate::runner::{run_chain, InstallCtx};
    use ppm_pm::{FaultConfig, PmConfig, Region};

    fn machine() -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 16))
    }

    fn run(m: &Machine, comp: Comp, done: Region) {
        let finale = final_capsule("finale", move |ctx| ctx.pwrite(done.at(0), 1));
        let rootc = root(&comp, finale);
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        run_chain(&mut ctx, m.arena(), &mut install, rootc).unwrap();
        assert_eq!(m.mem().load(done.at(0)), 1, "finale must run");
    }

    #[test]
    fn seq_runs_in_order() {
        let m = machine();
        let r = m.alloc_region(8);
        let done = m.alloc_region(8);
        // Each step writes its sequence number into the next word; order is
        // observable because step i reads nothing and writes slot i.
        let steps: Vec<Comp> = (0..4)
            .map(|i| {
                comp_step("s", move |ctx: &mut ProcCtx| {
                    // Record arrival order: count previously-filled slots.
                    let mut order = 0;
                    for j in 0..4 {
                        if ctx.raw_mem().load(r.at(j)) != 0 {
                            order += 1;
                        }
                    }
                    ctx.pwrite(r.at(i), order + 1)
                })
            })
            .collect();
        run(&m, seq_all(steps), done);
        assert_eq!(m.mem().to_vec(r.start, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn comp_nop_continues() {
        let m = machine();
        let done = m.alloc_region(8);
        run(&m, comp_nop(), done);
    }

    #[test]
    fn comp_dyn_expands_at_runtime() {
        let m = machine();
        let r = m.alloc_region(8);
        let done = m.alloc_region(8);
        // Recursive countdown via dynamic expansion.
        fn countdown(r: Region, n: u64) -> Comp {
            comp_dyn("countdown", move |_ctx| {
                if n == 0 {
                    Ok(comp_nop())
                } else {
                    Ok(comp_seq(
                        comp_step("mark", move |ctx: &mut ProcCtx| {
                            ctx.pwrite(r.at(n as usize), n)
                        }),
                        countdown(r, n - 1),
                    ))
                }
            })
        }
        run(&m, countdown(r, 5), done);
        for i in 1..=5 {
            assert_eq!(m.mem().load(r.at(i)), i as u64);
        }
    }

    #[test]
    fn seq_under_soft_faults_runs_each_step_effectively_once() {
        for seed in 0..10 {
            let m = Machine::new(
                PmConfig::parallel(1, 1 << 16).with_fault(FaultConfig::soft(0.15, seed)),
            );
            let r = m.alloc_region(8);
            let done = m.alloc_region(8);
            // Persistent counter with a commit between read and write:
            // capsule i reads slot i-1 and writes slot i (conflict free).
            let steps: Vec<Comp> = (0..5)
                .map(|i| {
                    comp_step("inc", move |ctx: &mut ProcCtx| {
                        let prev = if i == 0 { 0 } else { ctx.pread(r.at(i - 1))? };
                        ctx.pwrite(r.at(i), prev + 1)
                    })
                })
                .collect();
            run(&m, seq_all(steps), done);
            assert_eq!(
                m.mem().load(r.at(4)),
                5,
                "seed {seed}: chained increments must each apply exactly once"
            );
        }
    }
}
