//! Typed encoding of capsule state into frame words.
//!
//! A persistent capsule frame ([`ppm_pm::frame`]) is untyped: a capsule id
//! followed by raw argument [`Word`]s. Hand-packing geometry into those
//! words — and hand-unpacking it in every rehydration constructor — was
//! the single largest source of friction (and arity bugs) in writing
//! persistent algorithms. This module gives frames a typed surface:
//!
//! * [`Persist`] — a fixed-arity encode/decode between a Rust value and
//!   frame words. Implemented for the primitive word-shaped types
//!   (`u64`/`usize`/`u32`/`u16`/`u8`/`bool`), for [`ppm_pm::Region`], and
//!   structurally for tuples and arrays of `Persist` types.
//! * [`crate::persist_struct!`] — defines a plain named struct *and* its
//!   [`Persist`] impl in one go; the struct encodes as the concatenation
//!   of its fields. This is how algorithm capsule states are declared
//!   (see `ppm-algs`).
//! * [`FrameDecodeError`] — the structured error every decode failure
//!   reports: which capsule, and whether the arity or a value was wrong.
//!   It flows through [`crate::registry::RehydrateError`] into recovery's
//!   fallback reason, so a malformed frame names itself all the way up.
//!
//! Decoding is *strict*: the argument slice must have exactly the arity
//! the type declares ([`Persist::WORDS`]), and narrow types reject
//! out-of-range words. Encoding is infallible and deterministic — the
//! same value always produces the same words, which is part of the
//! construction-determinism contract that lets a recovering process
//! rehydrate a crashed run's frames.

use ppm_pm::Word;

/// A value with a fixed-width word encoding, usable as (part of) a
/// persistent capsule's frame state.
pub trait Persist: Sized {
    /// Exact number of words the encoding occupies.
    const WORDS: usize;

    /// Appends the encoding to `out` (exactly [`Persist::WORDS`] words).
    fn encode(&self, out: &mut Vec<Word>);

    /// Decodes the value, consuming exactly [`Persist::WORDS`] words from
    /// the reader.
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError>;

    /// Reports every persistent-memory reference this value carries: frame
    /// handles ([`PoolRefs::handle`]) and word extents the capsule may
    /// still read or write ([`PoolRefs::extent`]). The checkpoint
    /// subsystem traces these from the quiesced frontier to find the
    /// highest live pool word before reclaiming everything above it, so an
    /// impl that *under-reports* lets live frames be reclaimed.
    /// [`ppm_pm::Region`] reports its full extent and
    /// [`crate::persist_struct!`] composes fields automatically; plain
    /// integers (indices, lengths, tokens) correctly report nothing. A
    /// hand-written impl holding raw addresses must override this.
    fn pool_refs(&self, out: &mut PoolRefs) {
        let _ = out;
    }
}

/// Collector for the persistent-memory references of a capsule state
/// (see [`Persist::pool_refs`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolRefs {
    /// Frame handles the state points at (continuations, children).
    pub handles: Vec<Word>,
    /// `(start, len)` word extents the state may still touch.
    pub extents: Vec<(usize, usize)>,
}

impl PoolRefs {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame handle (traced transitively).
    pub fn handle(&mut self, h: Word) {
        if h != 0 {
            self.handles.push(h);
        }
    }

    /// Records a word extent `[start, start + len)`.
    pub fn extent(&mut self, start: usize, len: usize) {
        if len > 0 {
            self.extents.push((start, len));
        }
    }
}

/// A field-level decode failure: the word does not denote a value of the
/// expected type (e.g. a `bool` word that is neither 0 nor 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueError {
    /// What the decoder expected (a type or field description).
    pub what: &'static str,
    /// The offending word.
    pub word: Word,
}

/// Why a frame's argument words failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDecodeKind {
    /// The argument slice has the wrong length for the capsule's state
    /// type.
    Arity {
        /// Words the capsule's state type requires.
        expected: usize,
        /// Words the frame actually carries.
        got: usize,
    },
    /// An argument word is out of range for its field.
    Value(ValueError),
}

/// A structured frame-argument decode failure: which capsule rejected the
/// words and why. Carried by [`crate::registry::RehydrateError::BadArgs`]
/// and, from there, by a recovery fallback reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDecodeError {
    /// Name of the capsule whose constructor rejected the arguments.
    pub capsule: &'static str,
    /// What went wrong.
    pub kind: FrameDecodeKind,
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FrameDecodeKind::Arity { expected, got } => write!(
                f,
                "capsule `{}` expects {expected} argument words, frame carries {got}",
                self.capsule
            ),
            FrameDecodeKind::Value(v) => write!(
                f,
                "capsule `{}`: word {:#x} is not a valid {}",
                self.capsule, v.word, v.what
            ),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

/// A cursor over a frame's argument words.
///
/// Created by [`decode_args`]; [`Persist::decode`] impls pull words from
/// it in field order.
#[derive(Debug)]
pub struct WordReader<'a> {
    words: &'a [Word],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Wraps a word slice.
    pub fn new(words: &'a [Word]) -> Self {
        WordReader { words, pos: 0 }
    }

    /// Takes the next word.
    ///
    /// # Panics
    /// Panics on overrun — arity is checked up front by [`decode_args`],
    /// so an overrun means a [`Persist`] impl whose `WORDS` disagrees
    /// with its `decode` (a programming bug, not a data error).
    pub fn word(&mut self) -> Word {
        let w = self.words.get(self.pos).copied().unwrap_or_else(|| {
            panic!(
                "Persist decode overran its declared arity ({} words)",
                self.words.len()
            )
        });
        self.pos += 1;
        w
    }

    /// Words consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

/// Encodes a value into a fresh word vector (exactly `T::WORDS` long).
pub fn encode_args<T: Persist>(value: &T) -> Vec<Word> {
    let mut out = Vec::with_capacity(T::WORDS);
    value.encode(&mut out);
    debug_assert_eq!(
        out.len(),
        T::WORDS,
        "Persist encode produced a different arity than it declared"
    );
    out
}

/// Decodes a frame's argument words as a `T`, on behalf of capsule
/// `capsule`. The strict front door of every typed rehydration
/// constructor: wrong arity and out-of-range words both report a
/// [`FrameDecodeError`] naming the capsule.
pub fn decode_args<T: Persist>(
    capsule: &'static str,
    args: &[Word],
) -> Result<T, FrameDecodeError> {
    if args.len() != T::WORDS {
        return Err(FrameDecodeError {
            capsule,
            kind: FrameDecodeKind::Arity {
                expected: T::WORDS,
                got: args.len(),
            },
        });
    }
    let mut r = WordReader::new(args);
    T::decode(&mut r).map_err(|v| FrameDecodeError {
        capsule,
        kind: FrameDecodeKind::Value(v),
    })
}

// ====================================================================
// Primitive impls
// ====================================================================

impl Persist for Word {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<Word>) {
        out.push(*self);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(r.word())
    }
}

impl Persist for usize {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<Word>) {
        out.push(*self as Word);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        let w = r.word();
        usize::try_from(w).map_err(|_| ValueError {
            what: "usize",
            word: w,
        })
    }
}

macro_rules! narrow_persist {
    ($($ty:ty => $what:literal),* $(,)?) => {$(
        impl Persist for $ty {
            const WORDS: usize = 1;
            fn encode(&self, out: &mut Vec<Word>) {
                out.push(*self as Word);
            }
            fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
                let w = r.word();
                <$ty>::try_from(w).map_err(|_| ValueError { what: $what, word: w })
            }
        }
    )*};
}

narrow_persist!(u32 => "u32", u16 => "u16", u8 => "u8");

impl Persist for bool {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<Word>) {
        out.push(*self as Word);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        match r.word() {
            0 => Ok(false),
            1 => Ok(true),
            w => Err(ValueError {
                what: "bool (0 or 1)",
                word: w,
            }),
        }
    }
}

impl Persist for ppm_pm::Region {
    const WORDS: usize = 2;
    fn encode(&self, out: &mut Vec<Word>) {
        out.push(self.start as Word);
        out.push(self.len as Word);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        let start = usize::decode(r)?;
        let len = usize::decode(r)?;
        Ok(ppm_pm::Region { start, len })
    }
    fn pool_refs(&self, out: &mut PoolRefs) {
        out.extent(self.start, self.len);
    }
}

// ====================================================================
// Structural impls: tuples and arrays
// ====================================================================

impl Persist for () {
    const WORDS: usize = 0;
    fn encode(&self, _out: &mut Vec<Word>) {}
    fn decode(_r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(())
    }
}

macro_rules! tuple_persist {
    ($($name:ident),+) => {
        impl<$($name: Persist),+> Persist for ($($name,)+) {
            const WORDS: usize = 0 $(+ $name::WORDS)+;
            fn encode(&self, out: &mut Vec<Word>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
                Ok(($($name::decode(r)?,)+))
            }
            fn pool_refs(&self, out: &mut PoolRefs) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.pool_refs(out);)+
            }
        }
    };
}

tuple_persist!(A);
tuple_persist!(A, B);
tuple_persist!(A, B, C);
tuple_persist!(A, B, C, D);

impl<T: Persist, const N: usize> Persist for [T; N] {
    const WORDS: usize = N * T::WORDS;
    fn encode(&self, out: &mut Vec<Word>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        match items.try_into() {
            Ok(arr) => Ok(arr),
            Err(_) => unreachable!("exactly N items were pushed"),
        }
    }
    fn pool_refs(&self, out: &mut PoolRefs) {
        for v in self {
            v.pool_refs(out);
        }
    }
}

/// Defines a plain struct together with its [`Persist`] impl: the struct
/// encodes as the concatenation of its fields, in declaration order.
///
/// Every field type must itself implement [`Persist`]. The struct derives
/// `Debug`, `Clone`, `Copy`, `PartialEq` and `Eq` (capsule states are
/// small plain-old-data geometry descriptions, and capsule bodies need to
/// re-run them under restarts).
///
/// ```
/// use ppm_core::persist_struct;
/// use ppm_core::persist::{decode_args, encode_args};
/// use ppm_pm::Region;
///
/// persist_struct! {
///     /// A slice of an array plus a grain size.
///     pub struct Slice {
///         pub data: Region,
///         pub lo: usize,
///         pub hi: usize,
///     }
/// }
///
/// let s = Slice { data: Region { start: 64, len: 100 }, lo: 3, hi: 17 };
/// let words = encode_args(&s);
/// assert_eq!(words, vec![64, 100, 3, 17]);
/// assert_eq!(decode_args::<Slice>("slice", &words).unwrap(), s);
/// assert!(decode_args::<Slice>("slice", &words[..2]).is_err());
/// ```
#[macro_export]
macro_rules! persist_struct {
    ($(#[$meta:meta])* $vis:vis struct $name:ident {
        $($(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty),* $(,)?
    }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        $vis struct $name {
            $($(#[$fmeta])* $fvis $field: $ty,)*
        }

        impl $crate::persist::Persist for $name {
            const WORDS: usize = 0 $(+ <$ty as $crate::persist::Persist>::WORDS)*;
            fn encode(&self, out: &mut Vec<$crate::persist::PersistWord>) {
                $($crate::persist::Persist::encode(&self.$field, out);)*
            }
            fn decode(
                r: &mut $crate::persist::WordReader<'_>,
            ) -> Result<Self, $crate::persist::ValueError> {
                Ok(Self {
                    $($field: <$ty as $crate::persist::Persist>::decode(r)?,)*
                })
            }
            fn pool_refs(&self, out: &mut $crate::persist::PoolRefs) {
                $($crate::persist::Persist::pool_refs(&self.$field, out);)*
                let _ = out;
            }
        }
    };
}

/// The word type [`crate::persist_struct!`] expands against (an alias so the
/// macro works without the caller importing `ppm_pm`).
pub type PersistWord = Word;

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::Region;

    persist_struct! {
        struct Geometry {
            input: Region,
            n: usize,
            flagged: bool,
        }
    }

    #[test]
    fn primitives_round_trip() {
        let words = encode_args(&(7u64, 8usize, true, 300u32));
        assert_eq!(words, vec![7, 8, 1, 300]);
        let back: (u64, usize, bool, u32) = decode_args("t", &words).unwrap();
        assert_eq!(back, (7, 8, true, 300));
    }

    #[test]
    fn arrays_round_trip() {
        let v = [Region { start: 1, len: 2 }, Region { start: 3, len: 4 }];
        let words = encode_args(&v);
        assert_eq!(words, vec![1, 2, 3, 4]);
        assert_eq!(decode_args::<[Region; 2]>("t", &words).unwrap(), v);
    }

    #[test]
    fn struct_macro_round_trips() {
        let g = Geometry {
            input: Region { start: 10, len: 20 },
            n: 17,
            flagged: false,
        };
        assert_eq!(Geometry::WORDS, 4);
        let words = encode_args(&g);
        assert_eq!(decode_args::<Geometry>("geom", &words).unwrap(), g);
    }

    #[test]
    fn arity_mismatch_names_the_capsule() {
        let err = decode_args::<Geometry>("prefix/up", &[1, 2]).unwrap_err();
        assert_eq!(err.capsule, "prefix/up");
        assert_eq!(
            err.kind,
            FrameDecodeKind::Arity {
                expected: 4,
                got: 2
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("prefix/up"), "{msg}");
        assert!(msg.contains('4') && msg.contains('2'), "{msg}");
    }

    #[test]
    fn value_errors_carry_the_offending_word() {
        let err = decode_args::<Geometry>("geom", &[1, 2, 3, 9]).unwrap_err();
        match err.kind {
            FrameDecodeKind::Value(v) => {
                assert_eq!(v.word, 9);
                assert!(v.what.contains("bool"));
            }
            other => panic!("expected a value error, got {other:?}"),
        }
        let err = decode_args::<(u8,)>("narrow", &[4096]).unwrap_err();
        assert!(matches!(err.kind, FrameDecodeKind::Value(_)), "{err}");
    }

    #[test]
    fn bool_and_narrow_types_accept_their_range() {
        assert!(decode_args::<bool>("b", &[0]).is_ok());
        assert!(decode_args::<bool>("b", &[1]).is_ok());
        assert!(decode_args::<bool>("b", &[2]).is_err());
        assert_eq!(decode_args::<u16>("u", &[65535]).unwrap(), 65535);
        assert!(decode_args::<u16>("u", &[65536]).is_err());
    }

    #[test]
    fn unit_and_nested_tuples_have_zero_and_summed_arity() {
        assert_eq!(<() as Persist>::WORDS, 0);
        assert_eq!(<(Region, (usize, bool)) as Persist>::WORDS, 4);
    }

    #[test]
    fn pool_refs_compose_through_structs_tuples_and_arrays() {
        let g = Geometry {
            input: Region { start: 10, len: 20 },
            n: 17,
            flagged: false,
        };
        let mut refs = PoolRefs::new();
        g.pool_refs(&mut refs);
        assert_eq!(refs.extents, vec![(10, 20)]);
        assert!(refs.handles.is_empty(), "plain ints report nothing");

        let mut refs = PoolRefs::new();
        (
            Region { start: 1, len: 2 },
            [Region { start: 5, len: 1 }, Region { start: 9, len: 3 }],
        )
            .pool_refs(&mut refs);
        assert_eq!(refs.extents, vec![(1, 2), (5, 1), (9, 3)]);
        // Empty extents and null handles are dropped at the collector.
        let mut refs = PoolRefs::new();
        refs.extent(7, 0);
        refs.handle(0);
        assert_eq!(refs, PoolRefs::new());
    }

    #[test]
    #[should_panic(expected = "overran")]
    fn overrun_is_a_loud_programming_bug() {
        let mut r = WordReader::new(&[1]);
        let _ = r.word();
        let _ = r.word();
    }
}
