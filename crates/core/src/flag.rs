//! Completion flags: detecting that a computation has finished.
//!
//! A multithreaded computation on the Parallel-PM finishes when its final
//! join's last arriver runs the root continuation. That continuation's last
//! capsule sets a persistent flag; scheduler loops poll it (a racy read —
//! atomically idempotent per §5's racy-read analysis, since the flag only
//! ever transitions `0 → 1`).

use ppm_pm::{Addr, PersistentMemory, PmResult, ProcCtx, Word};

use crate::capsule::{capsule, Cont, Next};
use crate::machine::Machine;

/// A one-shot persistent completion flag.
#[derive(Debug, Clone, Copy)]
pub struct DoneFlag {
    addr: Addr,
}

impl DoneFlag {
    /// Carves a flag out of the machine's address space (initially 0).
    pub fn new(machine: &Machine) -> Self {
        let r = machine.alloc_region(1);
        DoneFlag { addr: r.start }
    }

    /// Wraps an existing address.
    pub fn at(addr: Addr) -> Self {
        DoneFlag { addr }
    }

    /// The flag's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Uncosted oracle read (used by driver loops outside the model and by
    /// tests).
    pub fn is_set(&self, mem: &PersistentMemory) -> bool {
        mem.load(self.addr) != 0
    }

    /// Costed read from within a capsule (the scheduler's termination
    /// check).
    pub fn read(&self, ctx: &mut ProcCtx) -> PmResult<bool> {
        Ok(ctx.pread(self.addr)? != 0)
    }

    /// The capsule that sets the flag and ends the computation's root
    /// thread. A racy-write capsule: the only racing instruction is the
    /// write, racing only with reads — atomically idempotent (§5).
    pub fn finale(&self) -> Cont {
        let addr = self.addr;
        capsule("finale", move |ctx| {
            ctx.pwrite(addr, 1 as Word)?;
            Ok(Next::End)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_chain, InstallCtx};
    use ppm_pm::PmConfig;

    #[test]
    fn finale_sets_flag() {
        let m = Machine::new(PmConfig::parallel(1, 1 << 16));
        let flag = DoneFlag::new(&m);
        assert!(!flag.is_set(m.mem()));
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        run_chain(&mut ctx, m.arena(), &mut install, flag.finale()).unwrap();
        assert!(flag.is_set(m.mem()));
    }

    #[test]
    fn costed_read_matches_oracle() {
        let m = Machine::new(PmConfig::parallel(1, 1 << 16));
        let flag = DoneFlag::new(&m);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("t");
        assert!(!flag.read(&mut ctx).unwrap());
        m.mem().store(flag.addr(), 1);
        ctx.complete_capsule();
        ctx.begin_capsule("t2");
        assert!(flag.read(&mut ctx).unwrap());
    }
}
