//! Capsules: the unit of restartable computation.
//!
//! §2 of the paper partitions a processor's computation into *capsules*:
//! maximal instruction sequences run while the restart-pointer location
//! holds the same restart pointer. A capsule is installed by writing a new
//! restart pointer; on a fault the processor re-runs the active capsule
//! from its beginning.
//!
//! Here a capsule is an immutable object implementing [`Capsule`]: its
//! captured state is the paper's *closure* (start instruction plus local
//! state plus arguments plus continuation, §4.1), created once and never
//! mutated, so a re-run observes exactly the capsule's initial state.
//! Ephemeral memory and registers are the `run` invocation's local
//! variables — dropped and rebuilt on every run, which models their loss on
//! a fault. A capsule body must be **write-after-read conflict free**
//! (checked dynamically by `ppm-pm` in strict mode) for the re-run to be
//! idempotent (Theorem 3.1).

use std::fmt;
use std::sync::Arc;

use ppm_pm::{PmResult, ProcCtx, Word};

/// What a completed capsule does next. Returning `Next` is the paper's
/// "installing" step: the engine writes the new restart pointer (a constant
/// number of external writes) before the successor runs.
pub enum Next {
    /// Continue this thread with the given capsule (a persistent call,
    /// return, or commit — all capsule boundaries look alike here).
    Jump(Cont),
    /// Continue this thread with the capsule denoted by a persistent
    /// frame handle (see [`ppm_pm::frame`]). The engine resolves the
    /// handle through the continuation arena (rehydrating from persistent
    /// words via the capsule registry on first touch) and installs the
    /// frame address itself as the restart pointer — which is what makes
    /// the thread resumable by a fresh process after a crash.
    JumpHandle(Word),
    /// Fork: push `child` as a new thread on the scheduler's deque and
    /// continue this thread with `cont` (§6.1's `fork` function). Under a
    /// scheduler, the push itself runs as dedicated capsules between this
    /// capsule and `cont`.
    Fork {
        /// The newly enabled thread's first capsule.
        child: Cont,
        /// The current thread's continuation after the fork.
        cont: Cont,
    },
    /// Fork where both sides are already persistent frames (written by
    /// this capsule's body, e.g. via [`crate::join::fork_join_frames`]):
    /// the child handle goes straight into the deque, and the
    /// continuation is resolved and installed by handle.
    ForkHandle {
        /// Frame handle of the newly enabled thread's first capsule.
        child: Word,
        /// Frame handle of the current thread's continuation.
        cont: Word,
    },
    /// The thread is finished; control returns to the scheduler (§6.1:
    /// "when a thread finishes it jumps to the scheduler").
    End,
    /// The processor stops entirely (the computation is complete and the
    /// scheduler loop exits). Unlike [`Next::End`], this is never rewrapped
    /// by a scheduler.
    Halt,
}

impl fmt::Debug for Next {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Next::Jump(c) => write!(f, "Jump({})", c.name()),
            Next::JumpHandle(h) => write!(f, "JumpHandle({h})"),
            Next::Fork { child, cont } => {
                write!(f, "Fork{{child: {}, cont: {}}}", child.name(), cont.name())
            }
            Next::ForkHandle { child, cont } => {
                write!(f, "ForkHandle{{child: {child}, cont: {cont}}}")
            }
            Next::End => write!(f, "End"),
            Next::Halt => write!(f, "Halt"),
        }
    }
}

/// A restartable unit of computation.
pub trait Capsule: Send + Sync {
    /// Executes the capsule body. All persistent-memory traffic must go
    /// through `ctx`; a returned [`ppm_pm::Fault`] aborts the run and the
    /// engine restarts the capsule (soft) or the processor dies (hard).
    ///
    /// Bodies must be deterministic functions of their captured state and
    /// the persistent values they read (the model's determinism
    /// assumption), and must be write-after-read conflict free.
    fn run(&self, ctx: &mut ProcCtx) -> PmResult<Next>;

    /// Diagnostic name, used in validator panics and traces.
    fn name(&self) -> &str {
        "capsule"
    }

    /// Whether the dynamic write-after-read validator should check this
    /// capsule (default: yes). The few Figure 3 scheduler capsules that
    /// deliberately read an entry and then CAM it in the same capsule
    /// (pushBottom's conditional push, clearBottom) override this: their
    /// idempotence is the paper's tag argument (Lemmas A.6/A.12), not
    /// Theorem 3.1.
    fn war_checked(&self) -> bool {
        true
    }

    /// Whether this capsule's executions appear as spans in the causal
    /// trace (default: yes). Scheduler-internal capsules (the Figure 3
    /// deque steps, steal attempts, push/pop sequences) override this to
    /// `false`: they are machinery *between* computation capsules, and
    /// excluding them is what makes a scheduler-mediated transfer break
    /// the same-thread parent chain — so a stolen or adopted capsule
    /// takes its parent from the persistent frame word (the true causal
    /// edge) instead of from the thief's scheduling loop. Join capsules
    /// stay traced: the slower arrival's join-check is genuinely on the
    /// critical path of the continuation it releases.
    fn traced(&self) -> bool {
        true
    }
}

/// A continuation: a shared handle to a capsule ("closure") that can be
/// stored, passed to the scheduler, or registered in the continuation
/// arena for cross-processor stealing.
pub type Cont = Arc<dyn Capsule>;

/// A capsule built from a closure. The closure's captured environment is
/// the capsule's persistent "closure" state; the `Fn` bound (not `FnOnce`)
/// enforces re-runnability.
pub struct FnCapsule<F> {
    name: &'static str,
    body: F,
    war_checked: bool,
    traced: bool,
}

impl<F> Capsule for FnCapsule<F>
where
    F: Fn(&mut ProcCtx) -> PmResult<Next> + Send + Sync,
{
    fn run(&self, ctx: &mut ProcCtx) -> PmResult<Next> {
        (self.body)(ctx)
    }

    fn name(&self) -> &str {
        self.name
    }

    fn war_checked(&self) -> bool {
        self.war_checked
    }

    fn traced(&self) -> bool {
        self.traced
    }
}

/// Creates a capsule from a closure.
///
/// ```
/// use ppm_core::capsule::{capsule, Next};
///
/// let c = capsule("hello", |_ctx| Ok(Next::End));
/// assert_eq!(c.name(), "hello");
/// ```
pub fn capsule<F>(name: &'static str, body: F) -> Cont
where
    F: Fn(&mut ProcCtx) -> PmResult<Next> + Send + Sync + 'static,
{
    Arc::new(FnCapsule {
        name,
        body,
        war_checked: true,
        traced: true,
    })
}

/// Creates a capsule exempt from dynamic write-after-read checking. For
/// scheduler internals only — see [`Capsule::war_checked`].
pub fn capsule_unchecked<F>(name: &'static str, body: F) -> Cont
where
    F: Fn(&mut ProcCtx) -> PmResult<Next> + Send + Sync + 'static,
{
    Arc::new(FnCapsule {
        name,
        body,
        war_checked: false,
        traced: false,
    })
}

/// Creates a scheduler-internal capsule: WAR-checked but excluded from
/// causal span tracing — see [`Capsule::traced`].
pub fn sched_capsule<F>(name: &'static str, body: F) -> Cont
where
    F: Fn(&mut ProcCtx) -> PmResult<Next> + Send + Sync + 'static,
{
    Arc::new(FnCapsule {
        name,
        body,
        war_checked: true,
        traced: false,
    })
}

/// A capsule that runs a side-effecting body and then jumps to a fixed
/// continuation. The workhorse for straight-line capsule chains.
pub fn step_capsule<F>(name: &'static str, body: F, then: Cont) -> Cont
where
    F: Fn(&mut ProcCtx) -> PmResult<()> + Send + Sync + 'static,
{
    capsule(name, move |ctx| {
        body(ctx)?;
        Ok(Next::Jump(then.clone()))
    })
}

/// A capsule that runs a body and ends the thread.
pub fn final_capsule<F>(name: &'static str, body: F) -> Cont
where
    F: Fn(&mut ProcCtx) -> PmResult<()> + Send + Sync + 'static,
{
    capsule(name, move |ctx| {
        body(ctx)?;
        Ok(Next::End)
    })
}

/// The trivial capsule: ends the thread immediately.
pub fn end_capsule() -> Cont {
    capsule("end", |_ctx| Ok(Next::End))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{PmConfig, ProcCtx};

    fn test_ctx() -> ProcCtx {
        let cfg = PmConfig::small_single();
        let mem = std::sync::Arc::new(ppm_pm::PersistentMemory::new(
            cfg.persistent_words,
            cfg.block_size,
        ));
        let stats = std::sync::Arc::new(ppm_pm::MemStats::new(1));
        let live = std::sync::Arc::new(ppm_pm::Liveness::new(1));
        ProcCtx::new(&cfg, 0, mem, stats, live)
    }

    #[test]
    fn fn_capsule_runs_body() {
        let c = capsule("write-then-end", |ctx| {
            ctx.pwrite(0, 99)?;
            Ok(Next::End)
        });
        let mut ctx = test_ctx();
        ctx.begin_capsule(c.name());
        match c.run(&mut ctx).unwrap() {
            Next::End => {}
            other => panic!("expected End, got {other:?}"),
        }
        assert_eq!(ctx.raw_mem().load(0), 99);
    }

    #[test]
    fn capsules_are_rerunnable() {
        // The Fn bound means a capsule can run any number of times; a
        // conflict-free body leaves the same state each time (Theorem 3.1).
        let c = capsule("idempotent", |ctx| {
            ctx.pwrite(4, 7)?;
            Ok(Next::End)
        });
        let mut ctx = test_ctx();
        for _ in 0..5 {
            ctx.begin_capsule(c.name());
            c.run(&mut ctx).unwrap();
        }
        assert_eq!(ctx.raw_mem().load(4), 7);
    }

    #[test]
    fn step_capsule_chains() {
        let tail = end_capsule();
        let head = step_capsule("head", |ctx| ctx.pwrite(1, 5), tail);
        let mut ctx = test_ctx();
        ctx.begin_capsule(head.name());
        match head.run(&mut ctx).unwrap() {
            Next::Jump(c) => assert_eq!(c.name(), "end"),
            other => panic!("expected Jump, got {other:?}"),
        }
        assert_eq!(ctx.raw_mem().load(1), 5);
    }

    #[test]
    fn next_debug_formats() {
        let d = format!("{:?}", Next::End);
        assert_eq!(d, "End");
        let j = format!("{:?}", Next::Jump(end_capsule()));
        assert!(j.contains("end"));
    }
}
