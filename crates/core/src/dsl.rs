//! Typed combinators for persistent fork-join capsules.
//!
//! This module is the programming surface for **registered persistent
//! computations**: fork-join programs whose every continuation lives in
//! persistent memory as a [`ppm_pm::frame`] frame, so that a crashed run
//! is *resumed* from its in-flight deque entries
//! (`ppm_sched::Runtime::run_or_recover`) instead of replayed from the
//! root. It replaces the hand-rolled plumbing the first persistent ports
//! needed — manual capsule-id bases, raw `Word`-slice packing, explicit
//! `write_frame`/`fork_join_frames` calls — with typed state
//! ([`crate::persist::Persist`]) and combinators that write the frames
//! for you.
//!
//! ## Mapping to the paper's capsule model (§4.1)
//!
//! | DSL construct | Paper concept |
//! |---|---|
//! | [`CapsuleDef<T>`] | a capsule's *code*: the start instruction of §4.1's closure, named by a stable id |
//! | a `T: Persist` state + [`K`] | the rest of the closure: "local state, arguments and continuation" |
//! | [`CapsuleDef::frame`] | writing a closure into persistent memory from the §4.1 restart-stable pool |
//! | [`CapsuleDef::setup`] | writing a root closure with uncosted setup stores (before the processors start) |
//! | [`jump_to`] / [`Step::Jump`] | a persistent call/jump: installing the next capsule's restart pointer |
//! | [`fork2`] / [`Step::Fork`] | §6.1's `fork`: child pushed on the WS-deque, both branches joining through the §5 CAM test-and-set join cell |
//! | [`seq`] | sequential composition: the first capsule's continuation is the second's frame |
//! | [`fork_many`] | an n-ary fork as a balanced binary tree of `fork-pair` capsules (the model's out-degree-2 DAG nodes) |
//! | [`CapsuleSet::map_grain`] | a parallel loop: recursive binary splitting down to `grain` iterations per leaf capsule |
//! | [`CapsuleSet::reduce`] | a parallel reduction: leaf values combined pairwise up a join tree, scratch cells from the restart-stable pool |
//! | [`Step::End`] | "when a thread finishes it jumps to the scheduler" (§6.1) |
//!
//! ## Migrating from the raw (PR 2) API
//!
//! | Old (hand-rolled) | New (typed DSL) |
//! |---|---|
//! | `pub const MY_ID_BASE: CapsuleId = FIRST_USER_CAPSULE_ID + 0x30` | ids allocated by name: [`CapsuleSet::declare`] |
//! | `registry.register(MY_ID_BASE, "x", \|args\| { let [a, b, k] = frame_args(args)?; … })` | `set.body(def, \|st: &MyState, k, ctx\| { … })` |
//! | geometry packed/unpacked as `[Word; N]` by hand | `persist_struct! { struct MyState { … } }` |
//! | `write_frame(ctx, MY_ID_BASE + 1, &args)?` | `def.frame(ctx, &state, k)?` |
//! | `fork_join_frames(ctx, k)` + two `write_frame`s + `Next::ForkHandle { … }` | `fork2(ctx, (left_def, &l), (right_def, &r), k)?` |
//! | `Ok(Next::JumpHandle(k))` | `Ok(Step::Jump(k))` |
//! | `run_persistent` / `recover_persistent` free functions | one `ppm_sched::Runtime` session: `run_or_recover(&pcomp)` |
//!
//! ## Determinism contract
//!
//! Everything here inherits the construction-determinism discipline of
//! [`crate::registry`]: a recovering process re-runs the same `PComp`
//! builder, declares the same capsule names in the same order, and
//! therefore re-registers identical constructors under identical ids.
//! Capsule bodies run under the §3 rules — write-after-read conflict
//! free, deterministic in their captured state and persistent reads — and
//! every frame written by a combinator comes from the restart-stable pool
//! allocator, so a re-run after a soft fault rewrites identical words at
//! identical addresses.

use std::sync::Arc;

use ppm_pm::{write_frame, PmResult, ProcCtx, Word};

use crate::capsule::{capsule, Next};
use crate::join::fork_join_frames;
use crate::machine::Machine;
use crate::persist::{decode_args, FrameDecodeError, Persist, ValueError, WordReader};
use crate::registry::{CapsuleId, CapsuleRegistry, CORE_ID_FORK_PAIR};

/// A persistent continuation handle: the address of a capsule frame.
///
/// The typed twin of the raw `Word` handles threaded through
/// [`crate::capsule::Next::JumpHandle`]; every DSL capsule body receives
/// the `K` to run after it, and every combinator that builds a new frame
/// returns one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct K(pub Word);

impl K {
    /// The raw frame-handle word.
    pub fn word(self) -> Word {
        self.0
    }
}

impl Persist for K {
    const WORDS: usize = 1;
    fn encode(&self, out: &mut Vec<Word>) {
        out.push(self.0);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(K(r.word()))
    }
    fn pool_refs(&self, out: &mut crate::persist::PoolRefs) {
        out.handle(self.0);
    }
}

/// What a DSL capsule body does next — the typed, frame-handle-only
/// subset of [`Next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Continue this thread with the capsule behind the handle.
    Jump(K),
    /// Fork `child` as a new thread and continue with `cont` (both
    /// already persisted as frames).
    Fork {
        /// Frame handle of the newly enabled thread.
        child: K,
        /// Frame handle of this thread's continuation.
        cont: K,
    },
    /// The thread is finished; control returns to the scheduler.
    End,
}

impl Step {
    /// Lowers into the engine's [`Next`].
    pub fn into_next(self) -> Next {
        match self {
            Step::Jump(k) => Next::JumpHandle(k.0),
            Step::Fork { child, cont } => Next::ForkHandle {
                child: child.0,
                cont: cont.0,
            },
            Step::End => Next::End,
        }
    }
}

/// A registered persistent capsule with typed state `T`.
///
/// Obtained from [`CapsuleSet::declare`]; `Copy`, so mutually recursive
/// capsule bodies capture each other's defs freely. The frame layout is
/// always `state words … , continuation handle` (`T::WORDS + 1` argument
/// words).
pub struct CapsuleDef<T> {
    id: CapsuleId,
    name: &'static str,
    _state: std::marker::PhantomData<fn(&T)>,
}

impl<T> Clone for CapsuleDef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for CapsuleDef<T> {}

impl<T> std::fmt::Debug for CapsuleDef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CapsuleDef(`{}` = {:#x})", self.name, self.id)
    }
}

impl<T: Persist> CapsuleDef<T> {
    /// The capsule's registry id.
    pub fn id(&self) -> CapsuleId {
        self.id
    }

    /// The capsule's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn words(state: &T, k: K) -> Vec<Word> {
        let mut words = Vec::with_capacity(T::WORDS + 1);
        state.encode(&mut words);
        k.encode(&mut words);
        debug_assert_eq!(words.len(), T::WORDS + 1);
        words
    }

    /// Writes a frame for this capsule over `state`, continuing with `k`,
    /// from within a running capsule (costed, restart-stable pool
    /// allocation). Returns the new frame's handle.
    pub fn frame(&self, ctx: &mut ProcCtx, state: &T, k: K) -> PmResult<K> {
        let words = Self::words(state, k);
        Ok(K(write_frame(ctx, self.id, &words)? as Word))
    }

    /// Writes a root frame with uncosted setup stores (machine
    /// construction, before the processors start). Deterministic: a
    /// recovering run replaying the same setup produces the same handle
    /// and words.
    pub fn setup(&self, machine: &Machine, state: &T, k: K) -> K {
        let words = Self::words(state, k);
        K(machine.setup_frame(self.id, &words))
    }
}

/// Builder that declares a computation's capsules against a machine's
/// [`CapsuleRegistry`], with ids allocated dynamically by name.
///
/// One `CapsuleSet` per algorithm (or per cooperating family of
/// capsules); any number of sets can coexist on one machine — the
/// registry hands every distinct name its own id, so two algorithms can
/// never collide the way the old hand-spaced id bases could. Declaring
/// the same names again (another instance of the same algorithm, or a
/// recovering process replaying construction) is idempotent and yields
/// the same ids.
pub struct CapsuleSet {
    registry: Arc<CapsuleRegistry>,
}

impl CapsuleSet {
    /// A capsule set registering against `machine`'s registry.
    pub fn new(machine: &Machine) -> Self {
        CapsuleSet {
            registry: machine.registry().clone(),
        }
    }

    /// A capsule set over a bare registry (tests, custom machines).
    pub fn on_registry(registry: Arc<CapsuleRegistry>) -> Self {
        CapsuleSet { registry }
    }

    /// Allocates the id for a capsule named `name` with state type `T`,
    /// without installing its body yet — so mutually recursive bodies
    /// can capture each other's defs. Install the body with
    /// [`CapsuleSet::body`].
    pub fn declare<T: Persist>(&mut self, name: &'static str) -> CapsuleDef<T> {
        CapsuleDef {
            id: self.registry.allocate(name),
            name,
            _state: std::marker::PhantomData,
        }
    }

    /// Installs the body of a declared capsule: the rehydration
    /// constructor decodes the typed state and continuation from the
    /// frame words, and the capsule runs `body(&state, k, ctx)` under the
    /// usual restart rules (so `body` must be write-after-read conflict
    /// free and deterministic).
    pub fn body<T, F>(&mut self, def: CapsuleDef<T>, body: F)
    where
        T: Persist + Send + Sync + 'static,
        F: Fn(&T, K, &mut ProcCtx) -> PmResult<Step> + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        self.registry.register_traced(
            def.id,
            def.name,
            move |args| {
                let (state, k) = decode_state::<T>(def.name, args)?;
                let body = body.clone();
                Ok(capsule(def.name, move |ctx| {
                    body(&state, k, ctx).map(Step::into_next)
                }))
            },
            // Checkpoint-GC tracer, derived from the typed state: the
            // state's own references plus the continuation handle. A
            // frame whose words no longer decode is reported as
            // untraceable (returning `false`) so GC refuses to reclaim —
            // silently reporting nothing would let the frame's live
            // children be collected.
            move |args, out| match decode_state::<T>(def.name, args) {
                Ok((state, k)) => {
                    state.pool_refs(out);
                    k.pool_refs(out);
                    true
                }
                Err(_) => false,
            },
        );
    }

    /// [`CapsuleSet::declare`] + [`CapsuleSet::body`] in one step, for
    /// capsules that only recurse on themselves or on already-declared
    /// defs.
    pub fn define<T, F>(&mut self, name: &'static str, body: F) -> CapsuleDef<T>
    where
        T: Persist + Send + Sync + 'static,
        F: Fn(&T, K, &mut ProcCtx) -> PmResult<Step> + Send + Sync + 'static,
    {
        let def = self.declare(name);
        self.body(def, body);
        def
    }

    /// A typed parallel loop: recursively splits `[lo, hi)` in half until
    /// at most `grain` indices remain, then jumps to `leaf` with the
    /// final sub-span. Returns the *split* capsule; enter the loop by
    /// framing it over the full span.
    ///
    /// The environment `T` rides along in every frame, so the loop works
    /// for any number of coexisting instances.
    pub fn map_grain<T>(
        &mut self,
        name: &'static str,
        grain: usize,
        leaf: CapsuleDef<Span<T>>,
    ) -> CapsuleDef<Span<T>>
    where
        T: Persist + Clone + Send + Sync + 'static,
    {
        let split = self.declare::<Span<T>>(name);
        let grain = grain.max(1);
        self.body(split, move |st, k, ctx| {
            if st.hi - st.lo <= grain {
                return jump_to(ctx, leaf, st, k);
            }
            let mid = st.lo + (st.hi - st.lo) / 2;
            fork2(
                ctx,
                (
                    split,
                    &Span {
                        env: st.env.clone(),
                        lo: st.lo,
                        hi: mid,
                    },
                ),
                (
                    split,
                    &Span {
                        env: st.env.clone(),
                        lo: mid,
                        hi: st.hi,
                    },
                ),
                k,
            )
        });
        split
    }

    /// A typed parallel reduction: `leaf(env, lo, hi)` computes each
    /// base-range value (at most `grain` indices), values combine
    /// pairwise with `combine` up a fork-join tree, and the root value is
    /// written to the state's `dst` address. Scratch cells for subtree
    /// results come from the restart-stable pool. Enter by framing the
    /// returned capsule over [`Fold`] state covering the full range.
    pub fn reduce<T, L, C>(
        &mut self,
        name: &'static str,
        grain: usize,
        leaf: L,
        combine: C,
    ) -> CapsuleDef<Fold<T>>
    where
        T: Persist + Clone + Send + Sync + 'static,
        L: Fn(&T, usize, usize, &mut ProcCtx) -> PmResult<Word> + Send + Sync + 'static,
        C: Fn(Word, Word) -> Word + Send + Sync + 'static,
    {
        let node = self.declare::<Fold<T>>(name);
        let join = self.declare::<FoldJoin>(intern_name(format!("{name}.combine")));
        let grain = grain.max(1);
        let combine = Arc::new(combine);
        self.body(join, move |st: &FoldJoin, k, ctx| {
            let l = ctx.pread(st.left)?;
            let r = ctx.pread(st.right)?;
            ctx.pwrite(st.dst, combine(l, r))?;
            Ok(Step::Jump(k))
        });
        self.body(node, move |st: &Fold<T>, k, ctx| {
            if st.hi - st.lo <= grain {
                let v = leaf(&st.env, st.lo, st.hi, ctx)?;
                ctx.pwrite(st.dst, v)?;
                return Ok(Step::Jump(k));
            }
            let mid = st.lo + (st.hi - st.lo) / 2;
            let cells = ctx.palloc(2);
            let after = join.frame(
                ctx,
                &FoldJoin {
                    left: cells,
                    right: cells + 1,
                    dst: st.dst,
                },
                k,
            )?;
            fork2(
                ctx,
                (
                    node,
                    &Fold {
                        env: st.env.clone(),
                        lo: st.lo,
                        hi: mid,
                        dst: cells,
                    },
                ),
                (
                    node,
                    &Fold {
                        env: st.env.clone(),
                        lo: mid,
                        hi: st.hi,
                        dst: cells + 1,
                    },
                ),
                after,
            )
        });
        node
    }
}

fn decode_state<T: Persist>(
    capsule: &'static str,
    args: &[Word],
) -> Result<(T, K), FrameDecodeError> {
    decode_args::<(T, K)>(capsule, args)
}

/// Interns a derived capsule name so repeated registrations (a
/// recovering session re-running the same builder, or many instances in
/// one process) reuse one leaked allocation per distinct name instead of
/// leaking per call.
fn intern_name(name: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().expect("name interner poisoned");
    let set = guard.get_or_insert_with(HashSet::new);
    if let Some(existing) = set.get(name.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    set.insert(leaked);
    leaked
}

/// The state of one [`CapsuleSet::map_grain`] task: a shared environment
/// plus the index span `[lo, hi)` this subtree covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span<T> {
    /// The loop's shared environment (instance geometry).
    pub env: T,
    /// First index of the span.
    pub lo: usize,
    /// One past the last index.
    pub hi: usize,
}

impl<T: Persist> Persist for Span<T> {
    const WORDS: usize = T::WORDS + 2;
    fn encode(&self, out: &mut Vec<Word>) {
        self.env.encode(out);
        self.lo.encode(out);
        self.hi.encode(out);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(Span {
            env: T::decode(r)?,
            lo: usize::decode(r)?,
            hi: usize::decode(r)?,
        })
    }
    fn pool_refs(&self, out: &mut crate::persist::PoolRefs) {
        self.env.pool_refs(out);
    }
}

/// The state of one [`CapsuleSet::reduce`] subtree: environment, index
/// span, and the persistent address receiving the subtree's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fold<T> {
    /// The reduction's shared environment.
    pub env: T,
    /// First index of the span.
    pub lo: usize,
    /// One past the last index.
    pub hi: usize,
    /// Address the subtree's value is written to.
    pub dst: usize,
}

impl<T: Persist> Persist for Fold<T> {
    const WORDS: usize = T::WORDS + 3;
    fn encode(&self, out: &mut Vec<Word>) {
        self.env.encode(out);
        self.lo.encode(out);
        self.hi.encode(out);
        self.dst.encode(out);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(Fold {
            env: T::decode(r)?,
            lo: usize::decode(r)?,
            hi: usize::decode(r)?,
            dst: usize::decode(r)?,
        })
    }
    fn pool_refs(&self, out: &mut crate::persist::PoolRefs) {
        self.env.pool_refs(out);
        // `dst` is a raw cell address (often a pool scratch cell).
        out.extent(self.dst, 1);
    }
}

/// Internal state of a reduction's combine capsule. Hand-implemented
/// (not `persist_struct!`) because all three fields are raw cell
/// addresses that must surface as live extents for checkpoint GC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FoldJoin {
    left: usize,
    right: usize,
    dst: usize,
}

impl Persist for FoldJoin {
    const WORDS: usize = 3;
    fn encode(&self, out: &mut Vec<Word>) {
        self.left.encode(out);
        self.right.encode(out);
        self.dst.encode(out);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(FoldJoin {
            left: usize::decode(r)?,
            right: usize::decode(r)?,
            dst: usize::decode(r)?,
        })
    }
    fn pool_refs(&self, out: &mut crate::persist::PoolRefs) {
        out.extent(self.left, 1);
        out.extent(self.right, 1);
        out.extent(self.dst, 1);
    }
}

/// Writes a frame for `(def, state)` and jumps to it: the typed
/// persistent call.
pub fn jump_to<T: Persist>(
    ctx: &mut ProcCtx,
    def: CapsuleDef<T>,
    state: &T,
    k: K,
) -> PmResult<Step> {
    Ok(Step::Jump(def.frame(ctx, state, k)?))
}

/// Sequential composition: run `a`, then `b`, then `k`. Writes `b`'s
/// frame first (it is `a`'s continuation), then jumps to `a`.
pub fn seq<A: Persist, B: Persist>(
    ctx: &mut ProcCtx,
    a: (CapsuleDef<A>, &A),
    b: (CapsuleDef<B>, &B),
    k: K,
) -> PmResult<Step> {
    let kb = b.0.frame(ctx, b.1, k)?;
    jump_to(ctx, a.0, a.1, kb)
}

/// Parallel composition: fork `right` as a new thread, continue with
/// `left`, and join — the last arriver continues with `k`. Allocates the
/// §5 CAM join cell and both arrival frames (restart-stable), then the
/// two branch frames.
pub fn fork2<L: Persist, R: Persist>(
    ctx: &mut ProcCtx,
    left: (CapsuleDef<L>, &L),
    right: (CapsuleDef<R>, &R),
    k: K,
) -> PmResult<Step> {
    let (la, ra) = fork_join_frames(ctx, k.0)?;
    let lf = left.0.frame(ctx, left.1, K(la))?;
    let rf = right.0.frame(ctx, right.1, K(ra))?;
    Ok(Step::Fork {
        child: rf,
        cont: lf,
    })
}

/// N-ary parallel composition over homogeneous states: forks a balanced
/// binary tree of `fork-pair` capsules whose leaves are `def` frames, all
/// joining down to `k`. Empty input jumps straight to `k`.
pub fn fork_many<T: Persist>(
    ctx: &mut ProcCtx,
    def: CapsuleDef<T>,
    states: &[T],
    k: K,
) -> PmResult<Step> {
    match states.len() {
        0 => Ok(Step::Jump(k)),
        1 => jump_to(ctx, def, &states[0], k),
        _ => {
            let mid = states.len() / 2;
            let (la, ra) = fork_join_frames(ctx, k.0)?;
            let lf = plant_tree(ctx, def, &states[..mid], K(la))?;
            let rf = plant_tree(ctx, def, &states[mid..], K(ra))?;
            Ok(Step::Fork {
                child: rf,
                cont: lf,
            })
        }
    }
}

/// Builds the frame tree for a slice of states, returning its entry
/// handle. Interior nodes are `fork-pair` frames; leaves are `def`
/// frames.
fn plant_tree<T: Persist>(
    ctx: &mut ProcCtx,
    def: CapsuleDef<T>,
    states: &[T],
    k: K,
) -> PmResult<K> {
    debug_assert!(!states.is_empty());
    if states.len() == 1 {
        return def.frame(ctx, &states[0], k);
    }
    let mid = states.len() / 2;
    let (la, ra) = fork_join_frames(ctx, k.0)?;
    let lf = plant_tree(ctx, def, &states[..mid], K(la))?;
    let rf = plant_tree(ctx, def, &states[mid..], K(ra))?;
    Ok(K(
        write_frame(ctx, CORE_ID_FORK_PAIR, &[lf.0, rf.0])? as Word
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::registry::PComp;
    use ppm_pm::{PmConfig, Region};

    crate::persist_struct! {
        struct Mark {
            out: Region,
            i: usize,
        }
    }

    fn machine() -> Machine {
        Machine::new(PmConfig::parallel(2, 1 << 18))
    }

    /// Drives a pcomp with the minimal single-processor harness (no
    /// scheduler dependency inside ppm-core): repeatedly resolve and run
    /// capsules, treating forks as run-child-first.
    fn drive(machine: &Machine, root: Word) {
        let mut stack = vec![root];
        let mut ctx = machine.ctx(0);
        while let Some(h) = stack.pop() {
            let mut cur = machine
                .arena()
                .resolve(h)
                .unwrap_or_else(|| panic!("handle {h} must rehydrate"));
            loop {
                ctx.begin_capsule(cur.name());
                let next = cur.run(&mut ctx).expect("faultless run");
                ctx.flush_staged().expect("faultless flush");
                ctx.publish_watermark();
                ctx.complete_capsule();
                match next {
                    Next::Jump(c) => cur = c,
                    Next::JumpHandle(h) => {
                        cur = machine.arena().resolve(h).expect("jump target");
                    }
                    Next::Fork { .. } => panic!("dsl capsules fork by handle"),
                    Next::ForkHandle { child, cont } => {
                        stack.push(child);
                        cur = machine.arena().resolve(cont).expect("fork cont");
                    }
                    Next::End | Next::Halt => break,
                }
            }
        }
    }

    fn run_pcomp(machine: &Machine, pcomp: &PComp) {
        let done = machine.alloc_region(1);
        let finale = machine.setup_frame(crate::registry::CORE_ID_FINALE, &[done.start as Word]);
        let root = pcomp(machine, finale);
        drive(machine, root);
        assert_eq!(machine.mem().load(done.start), 1, "finale must run");
    }

    #[test]
    fn define_frame_jump_round_trip() {
        let m = machine();
        let out = m.alloc_region(8);
        let mut set = CapsuleSet::new(&m);
        let mark = set.define("dsl-test/mark", |st: &Mark, k, ctx| {
            ctx.pwrite(st.out.at(st.i), st.i as Word + 1)?;
            Ok(Step::Jump(k))
        });
        let pcomp: PComp = std::sync::Arc::new(move |mm: &Machine, finale| {
            mark.setup(mm, &Mark { out, i: 3 }, K(finale)).0
        });
        run_pcomp(&m, &pcomp);
        assert_eq!(m.mem().load(out.at(3)), 4);
    }

    #[test]
    fn fork2_runs_both_branches_and_joins_once() {
        let m = machine();
        let out = m.alloc_region(8);
        let joined = m.alloc_region(1);
        let mut set = CapsuleSet::new(&m);
        let mark = set.define("dsl-fork/mark", |st: &Mark, k, ctx| {
            ctx.pwrite(st.out.at(st.i), 7)?;
            Ok(Step::Jump(k))
        });
        let after = set.define("dsl-fork/after", move |_: &(), k, ctx| {
            // CAM from 0: exactly-once even if both branches raced here.
            ctx.pcam(joined.start, 0, 1)?;
            Ok(Step::Jump(k))
        });
        let root = set.define("dsl-fork/root", move |_: &(), k, ctx| {
            let ka = after.frame(ctx, &(), k)?;
            fork2(
                ctx,
                (mark, &Mark { out, i: 0 }),
                (mark, &Mark { out, i: 1 }),
                ka,
            )
        });
        let pcomp: PComp =
            std::sync::Arc::new(move |mm: &Machine, finale| root.setup(mm, &(), K(finale)).0);
        run_pcomp(&m, &pcomp);
        assert_eq!(m.mem().load(out.at(0)), 7);
        assert_eq!(m.mem().load(out.at(1)), 7);
        assert_eq!(m.mem().load(joined.start), 1);
    }

    #[test]
    fn seq_orders_two_capsules() {
        let m = machine();
        let out = m.alloc_region(4);
        let mut set = CapsuleSet::new(&m);
        let first = set.define("dsl-seq/first", move |_: &(), k, ctx| {
            ctx.pwrite(out.at(0), 10)?;
            Ok(Step::Jump(k))
        });
        let second = set.define("dsl-seq/second", move |_: &(), k, ctx| {
            let v = ctx.pread(out.at(0))?;
            ctx.pwrite(out.at(1), v + 1)?;
            Ok(Step::Jump(k))
        });
        let root = set.define("dsl-seq/root", move |_: &(), k, ctx| {
            seq(ctx, (first, &()), (second, &()), k)
        });
        let pcomp: PComp =
            std::sync::Arc::new(move |mm: &Machine, finale| root.setup(mm, &(), K(finale)).0);
        run_pcomp(&m, &pcomp);
        assert_eq!(m.mem().load(out.at(1)), 11);
    }

    #[test]
    fn fork_many_covers_every_leaf() {
        let m = machine();
        let n = 13;
        let out = m.alloc_region(n);
        let mut set = CapsuleSet::new(&m);
        let mark = set.define("dsl-many/mark", |st: &Mark, k, ctx| {
            ctx.pwrite(st.out.at(st.i), st.i as Word + 1)?;
            Ok(Step::Jump(k))
        });
        let root = set.define("dsl-many/root", move |_: &(), k, ctx| {
            let states: Vec<Mark> = (0..n).map(|i| Mark { out, i }).collect();
            fork_many(ctx, mark, &states, k)
        });
        let pcomp: PComp =
            std::sync::Arc::new(move |mm: &Machine, finale| root.setup(mm, &(), K(finale)).0);
        run_pcomp(&m, &pcomp);
        for i in 0..n {
            assert_eq!(m.mem().load(out.at(i)), i as Word + 1, "leaf {i}");
        }
    }

    #[test]
    fn map_grain_visits_every_index_once() {
        let m = machine();
        let n = 37;
        let out = m.alloc_region(n);
        let mut set = CapsuleSet::new(&m);
        let leaf = set.define("dsl-map/leaf", |st: &Span<Region>, k, ctx| {
            for i in st.lo..st.hi {
                ctx.pwrite(st.env.at(i), i as Word + 100)?;
            }
            Ok(Step::Jump(k))
        });
        let split = set.map_grain("dsl-map/split", 4, leaf);
        let pcomp: PComp = std::sync::Arc::new(move |mm: &Machine, finale| {
            split
                .setup(
                    mm,
                    &Span {
                        env: out,
                        lo: 0,
                        hi: n,
                    },
                    K(finale),
                )
                .0
        });
        run_pcomp(&m, &pcomp);
        for i in 0..n {
            assert_eq!(m.mem().load(out.at(i)), i as Word + 100, "index {i}");
        }
    }

    #[test]
    fn reduce_computes_the_fold() {
        let m = machine();
        let n = 100usize;
        let data = m.alloc_region(n);
        let dst = m.alloc_region(1);
        for i in 0..n {
            m.mem().store(data.at(i), i as Word);
        }
        let mut set = CapsuleSet::new(&m);
        let sum = set.reduce(
            "dsl-reduce/sum",
            8,
            |env: &Region, lo, hi, ctx: &mut ProcCtx| {
                let mut acc = 0u64;
                for i in lo..hi {
                    acc = acc.wrapping_add(ctx.pread(env.at(i))?);
                }
                Ok(acc)
            },
            |a, b| a.wrapping_add(b),
        );
        let pcomp: PComp = std::sync::Arc::new(move |mm: &Machine, finale| {
            sum.setup(
                mm,
                &Fold {
                    env: data,
                    lo: 0,
                    hi: n,
                    dst: dst.start,
                },
                K(finale),
            )
            .0
        });
        run_pcomp(&m, &pcomp);
        assert_eq!(m.mem().load(dst.start), (0..n as u64).sum::<u64>());
    }

    #[test]
    fn two_capsule_sets_never_collide() {
        let m = machine();
        let mut a = CapsuleSet::new(&m);
        let mut b = CapsuleSet::new(&m);
        let d1 = a.define("alg-a/node", |_: &(), k, _ctx| Ok(Step::Jump(k)));
        let d2 = b.define("alg-b/node", |_: &(), k, _ctx| Ok(Step::Jump(k)));
        let d3 = a.define("alg-a/leaf", |_: &(), k, _ctx| Ok(Step::Jump(k)));
        assert_ne!(d1.id(), d2.id());
        assert_ne!(d1.id(), d3.id());
        assert_ne!(d2.id(), d3.id());
        // Re-declaring (second instance / recovery replay) is idempotent.
        let mut c = CapsuleSet::new(&m);
        let d1b = c.declare::<()>("alg-a/node");
        assert_eq!(d1.id(), d1b.id());
    }

    #[test]
    fn bad_state_words_report_the_typed_decode_error() {
        let m = machine();
        let mut set = CapsuleSet::new(&m);
        let def = set.define("dsl-err/flag", |_st: &bool, k, _ctx| Ok(Step::Jump(k)));
        // A frame whose bool word is 5: rehydration must surface the
        // structured decode error, not a panic.
        let bad = m.setup_frame(def.id(), &[5, 0]);
        let err = match m.registry().rehydrate(m.mem(), bad) {
            Err(e) => e,
            Ok(_) => panic!("word 5 is not a bool; rehydration must fail"),
        };
        let decode = err.decode_error().expect("typed decode error");
        assert_eq!(decode.capsule, "dsl-err/flag");
        assert!(err.to_string().contains("bool"), "{err}");
    }
}
