//! The capsule registry: rehydrating closures from persistent words.
//!
//! A continuation stored as a [`ppm_pm::frame`] frame is just words:
//! `(capsule_id, args…)`. The *code* those words denote lives here. A
//! [`CapsuleRegistry`] maps stable [`CapsuleId`]s to **rehydration
//! constructors** — functions from argument words to a runnable
//! [`Cont`] — registered deterministically at computation-construction
//! time. Because a recovering process reconstructs the computation the
//! same way the crashed one did (same instance builders, same ids, same
//! deterministic region layout), it re-registers the identical
//! constructors, and any frame address found in a persisted deque entry
//! or restart pointer can be turned back into a live capsule.
//!
//! Constructors are **shallow**: a continuation argument inside a frame
//! stays a frame address (a plain word) in the rehydrated capsule, which
//! resolves it lazily at run time by returning
//! [`crate::capsule::Next::JumpHandle`]. There is therefore no recursive
//! rehydration and no cycle hazard at decode time.
//!
//! Ids below [`FIRST_USER_CAPSULE_ID`] are reserved for the runtime's own
//! registered capsules (join arrivals, the completion finale), installed
//! by [`register_core_capsules`] on every machine.

use std::collections::HashMap;

use parking_lot::RwLock;
use ppm_pm::{read_frame, Frame, FrameError, PersistentMemory, Word};

use crate::capsule::{capsule, Cont, Next};
use crate::join::JoinCell;

/// A stable capsule identifier. Equal across processes for the same
/// computation, by the determinism discipline of machine construction.
pub type CapsuleId = Word;

/// First id available to user computations; smaller ids are reserved for
/// the runtime's built-in registered capsules.
pub const FIRST_USER_CAPSULE_ID: CapsuleId = 0x100;

/// Built-in id: a join arrival's CAM capsule,
/// args `[cell_addr, token, after_handle]`.
pub const CORE_ID_JOIN_CAM: CapsuleId = 0x01;
/// Built-in id: a join arrival's check capsule, same args as the CAM.
pub const CORE_ID_JOIN_CHECK: CapsuleId = 0x02;
/// Built-in id: the computation finale, args `[flag_addr]` — sets the
/// completion flag and ends the root thread.
pub const CORE_ID_FINALE: CapsuleId = 0x03;
/// Built-in id: end the thread immediately (a terminal continuation).
pub const CORE_ID_END: CapsuleId = 0x04;

/// Why a handle could not be rehydrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RehydrateError {
    /// The words at the handle are not a well-formed frame.
    Frame(FrameError),
    /// The frame decoded but its capsule id has no registered constructor
    /// (a legacy-closure computation, or a construction-order mismatch).
    UnknownCapsule {
        /// The frame address.
        addr: ppm_pm::Addr,
        /// The unregistered id.
        capsule_id: CapsuleId,
    },
    /// The constructor rejected the argument words.
    BadArgs {
        /// The frame address.
        addr: ppm_pm::Addr,
        /// The capsule id whose constructor rejected them.
        capsule_id: CapsuleId,
        /// Constructor-provided reason.
        reason: String,
    },
}

impl std::fmt::Display for RehydrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RehydrateError::Frame(e) => write!(f, "{e}"),
            RehydrateError::UnknownCapsule { addr, capsule_id } => {
                write!(
                    f,
                    "frame at {addr} names unregistered capsule id {capsule_id:#x}"
                )
            }
            RehydrateError::BadArgs {
                addr,
                capsule_id,
                reason,
            } => write!(
                f,
                "frame at {addr} (capsule id {capsule_id:#x}) has bad arguments: {reason}"
            ),
        }
    }
}

impl std::error::Error for RehydrateError {}

impl From<FrameError> for RehydrateError {
    fn from(e: FrameError) -> Self {
        RehydrateError::Frame(e)
    }
}

/// A rehydration constructor: argument words to a runnable capsule.
pub type CapsuleCtor = std::sync::Arc<dyn Fn(&[Word]) -> Result<Cont, String> + Send + Sync>;

/// A computation expressed as persistent capsule frames: given the
/// machine and the frame handle of the continuation to run after the
/// computation (typically the finale), register the needed rehydration
/// constructors, build the root frame chain with deterministic setup
/// writes ([`crate::machine::Machine::setup_frame`]), and return the root
/// frame handle.
///
/// Determinism contract: calling a `PComp` on a machine reopened from a
/// crashed run must perform the same allocations, register the same ids,
/// and produce the same frame words as the creating run did — that is
/// what lets a recovering scheduler resume the crashed run's deques.
pub type PComp = std::sync::Arc<dyn Fn(&crate::machine::Machine, Word) -> Word + Send + Sync>;

struct Entry {
    name: &'static str,
    ctor: CapsuleCtor,
}

/// Registry of rehydration constructors, keyed by stable capsule id.
#[derive(Default)]
pub struct CapsuleRegistry {
    entries: RwLock<HashMap<CapsuleId, Entry>>,
}

impl std::fmt::Debug for CapsuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CapsuleRegistry({} ids)", self.entries.read().len())
    }
}

impl CapsuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `ctor` under `id`. Re-registering the same `(id, name)`
    /// is idempotent (the recovering process replays the same
    /// construction sequence the creating run performed).
    ///
    /// # Panics
    /// Panics if `id` is already registered under a *different* name — a
    /// construction-determinism bug that would silently rehydrate the
    /// wrong code.
    pub fn register<F>(&self, id: CapsuleId, name: &'static str, ctor: F)
    where
        F: Fn(&[Word]) -> Result<Cont, String> + Send + Sync + 'static,
    {
        let mut entries = self.entries.write();
        if let Some(existing) = entries.get(&id) {
            assert_eq!(
                existing.name, name,
                "capsule id {id:#x} registered twice with different names \
                 ({} vs {name}) — ids must be construction-deterministic",
                existing.name
            );
            return;
        }
        entries.insert(
            id,
            Entry {
                name,
                ctor: std::sync::Arc::new(ctor),
            },
        );
    }

    /// Whether `id` has a constructor.
    pub fn contains(&self, id: CapsuleId) -> bool {
        self.entries.read().contains_key(&id)
    }

    /// The diagnostic name registered for `id`.
    pub fn name_of(&self, id: CapsuleId) -> Option<&'static str> {
        self.entries.read().get(&id).map(|e| e.name)
    }

    /// Number of registered ids.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no ids are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Rehydrates a decoded frame into a runnable capsule.
    pub fn instantiate(&self, frame: &Frame) -> Result<Cont, RehydrateError> {
        let ctor = {
            let entries = self.entries.read();
            match entries.get(&frame.capsule_id) {
                Some(e) => e.ctor.clone(),
                None => {
                    return Err(RehydrateError::UnknownCapsule {
                        addr: frame.addr,
                        capsule_id: frame.capsule_id,
                    })
                }
            }
        };
        ctor(&frame.args).map_err(|reason| RehydrateError::BadArgs {
            addr: frame.addr,
            capsule_id: frame.capsule_id,
            reason,
        })
    }

    /// Decodes the frame at `handle` in `mem` and rehydrates it. The
    /// end-to-end path recovery uses on every persisted deque entry and
    /// restart pointer.
    pub fn rehydrate(&self, mem: &PersistentMemory, handle: Word) -> Result<Cont, RehydrateError> {
        let frame = read_frame(mem, handle as ppm_pm::Addr)?;
        self.instantiate(&frame)
    }
}

/// Decodes a frame's argument words into a fixed-arity array, with the
/// uniform error message rehydration constructors report for an arity
/// mismatch. The shared front door of every registered constructor:
///
/// ```
/// use ppm_core::registry::frame_args;
/// let [node, k] = frame_args::<2>(&[7, 99]).unwrap();
/// assert_eq!((node, k), (7, 99));
/// assert!(frame_args::<2>(&[7]).is_err());
/// ```
pub fn frame_args<const N: usize>(args: &[Word]) -> Result<[Word; N], String> {
    args.try_into()
        .map_err(|_| format!("expected {N} args, got {}", args.len()))
}

/// Registers the runtime's built-in capsules (join arrivals, the finale,
/// the trivial end) on `registry`. Called by machine construction;
/// idempotent.
pub fn register_core_capsules(registry: &CapsuleRegistry) {
    registry.register(CORE_ID_JOIN_CAM, "join-cam", |args| {
        let [cell, token, after] = frame_args(args)?;
        Ok(JoinCell::at(cell as ppm_pm::Addr).arrive_cam_frame(token, after))
    });
    registry.register(CORE_ID_JOIN_CHECK, "join-check", |args| {
        let [cell, token, after] = frame_args(args)?;
        Ok(JoinCell::at(cell as ppm_pm::Addr).arrive_check_frame(token, after))
    });
    registry.register(CORE_ID_FINALE, "finale", |args| {
        let [flag] = frame_args(args)?;
        let flag = flag as ppm_pm::Addr;
        Ok(capsule("finale", move |ctx| {
            ctx.pwrite(flag, 1)?;
            Ok(Next::End)
        }))
    });
    registry.register(
        CORE_ID_END,
        "end",
        |_args| Ok(crate::capsule::end_capsule()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::store_frame;
    use std::sync::Arc;

    #[test]
    fn register_and_instantiate() {
        let reg = CapsuleRegistry::new();
        reg.register(0x200, "probe", |args| {
            let target = args[0] as ppm_pm::Addr;
            Ok(capsule("probe", move |ctx| {
                ctx.pwrite(target, 77)?;
                Ok(Next::End)
            }))
        });
        assert!(reg.contains(0x200));
        assert_eq!(reg.name_of(0x200), Some("probe"));
        let mem = Arc::new(PersistentMemory::new(256, 8));
        store_frame(&mem, 16, 0x200, &[40]);
        let c = reg.rehydrate(&mem, 16).expect("rehydrates");
        assert_eq!(c.name(), "probe");
    }

    fn expect_err(r: Result<Cont, RehydrateError>) -> RehydrateError {
        match r {
            Err(e) => e,
            Ok(c) => panic!("expected rehydration failure, got capsule `{}`", c.name()),
        }
    }

    #[test]
    fn unknown_capsule_is_a_clean_error() {
        let reg = CapsuleRegistry::new();
        let mem = PersistentMemory::new(256, 8);
        store_frame(&mem, 16, 0xDEAD, &[]);
        let err = expect_err(reg.rehydrate(&mem, 16));
        assert!(
            matches!(
                err,
                RehydrateError::UnknownCapsule {
                    capsule_id: 0xDEAD,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn malformed_frame_is_a_clean_error() {
        let reg = CapsuleRegistry::new();
        let mem = PersistentMemory::new(256, 8);
        mem.store(16, 1); // legacy marker word
        let err = expect_err(reg.rehydrate(&mem, 16));
        assert!(matches!(err, RehydrateError::Frame(_)), "{err}");
        // Null handle is not a frame either.
        assert!(reg.rehydrate(&mem, 0).is_err());
    }

    #[test]
    fn re_registration_is_idempotent() {
        let reg = CapsuleRegistry::new();
        reg.register(0x300, "same", |_| Ok(crate::capsule::end_capsule()));
        reg.register(0x300, "same", |_| Ok(crate::capsule::end_capsule()));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn conflicting_registration_panics() {
        let reg = CapsuleRegistry::new();
        reg.register(0x300, "a", |_| Ok(crate::capsule::end_capsule()));
        reg.register(0x300, "b", |_| Ok(crate::capsule::end_capsule()));
    }

    #[test]
    fn core_capsules_cover_reserved_ids() {
        let reg = CapsuleRegistry::new();
        register_core_capsules(&reg);
        for id in [
            CORE_ID_JOIN_CAM,
            CORE_ID_JOIN_CHECK,
            CORE_ID_FINALE,
            CORE_ID_END,
        ] {
            assert!(reg.contains(id));
            assert!(id < FIRST_USER_CAPSULE_ID);
        }
        register_core_capsules(&reg); // idempotent
    }

    #[test]
    fn bad_args_surface_the_constructor_reason() {
        let reg = CapsuleRegistry::new();
        register_core_capsules(&reg);
        let mem = PersistentMemory::new(256, 8);
        store_frame(&mem, 16, CORE_ID_FINALE, &[]); // finale wants 1 arg
        let err = expect_err(reg.rehydrate(&mem, 16));
        assert!(matches!(err, RehydrateError::BadArgs { .. }), "{err}");
    }
}
