//! The capsule registry: rehydrating closures from persistent words.
//!
//! A continuation stored as a [`ppm_pm::frame`] frame is just words:
//! `(capsule_id, args…)`. The *code* those words denote lives here. A
//! [`CapsuleRegistry`] maps stable [`CapsuleId`]s to **rehydration
//! constructors** — functions from argument words to a runnable
//! [`Cont`] — registered deterministically at computation-construction
//! time. Because a recovering process reconstructs the computation the
//! same way the crashed one did (same instance builders, same ids, same
//! deterministic region layout), it re-registers the identical
//! constructors, and any frame address found in a persisted deque entry
//! or restart pointer can be turned back into a live capsule.
//!
//! Constructors are **shallow**: a continuation argument inside a frame
//! stays a frame address (a plain word) in the rehydrated capsule, which
//! resolves it lazily at run time by returning
//! [`crate::capsule::Next::JumpHandle`]. There is therefore no recursive
//! rehydration and no cycle hazard at decode time.
//!
//! ## Capsule-id allocation
//!
//! Ids below [`FIRST_USER_CAPSULE_ID`] are reserved for the runtime's own
//! registered capsules (join arrivals, the completion finale, the generic
//! fork pair), installed by [`register_core_capsules`] on every machine.
//!
//! User ids are **allocated, not chosen**: [`CapsuleRegistry::allocate`]
//! hands out the next free id for a capsule *name*, idempotently — the
//! same name always maps to the same id on a given machine, and because
//! computation construction is deterministic, to the same id on a
//! machine recovering the same computation. This replaces the old
//! manual-base scheme (`PREFIX_ID_BASE`, `MSORT_ID_BASE`, hand-spaced
//! offsets) whose silent-collision hazard grew with every ported
//! algorithm. Manual registration under an explicit id remains possible
//! (the core capsules use it); colliding registrations panic, naming
//! both capsules.

use std::collections::HashMap;

use parking_lot::RwLock;
use ppm_pm::{read_frame, Frame, FrameError, PersistentMemory, Word};

use crate::capsule::{capsule, Cont, Next};
use crate::join::JoinCell;
use crate::persist::{FrameDecodeError, FrameDecodeKind, PoolRefs};

/// A stable capsule identifier. Equal across processes for the same
/// computation, by the determinism discipline of machine construction.
pub type CapsuleId = Word;

/// First id available to user computations; smaller ids are reserved for
/// the runtime's built-in registered capsules.
pub const FIRST_USER_CAPSULE_ID: CapsuleId = 0x100;

/// Built-in id: a join arrival's CAM capsule,
/// args `[cell_addr, token, after_handle]`.
pub const CORE_ID_JOIN_CAM: CapsuleId = 0x01;
/// Built-in id: a join arrival's check capsule, same args as the CAM.
pub const CORE_ID_JOIN_CHECK: CapsuleId = 0x02;
/// Built-in id: the computation finale, args `[flag_addr]` — sets the
/// completion flag and ends the root thread.
pub const CORE_ID_FINALE: CapsuleId = 0x03;
/// Built-in id: end the thread immediately (a terminal continuation).
pub const CORE_ID_END: CapsuleId = 0x04;
/// Built-in id: a fork pair, args `[left, right]` — forks the thread
/// denoted by the `right` frame handle and continues with `left`. The
/// interior node of every n-ary fan-out built by
/// [`crate::dsl::fork_many`].
pub const CORE_ID_FORK_PAIR: CapsuleId = 0x05;

/// Why a handle could not be rehydrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RehydrateError {
    /// The words at the handle are not a well-formed frame.
    Frame(FrameError),
    /// The frame decoded but its capsule id has no registered constructor
    /// (a legacy-closure computation, or a construction-order mismatch).
    UnknownCapsule {
        /// The frame address.
        addr: ppm_pm::Addr,
        /// The unregistered id.
        capsule_id: CapsuleId,
    },
    /// The constructor rejected the argument words.
    BadArgs {
        /// The frame address.
        addr: ppm_pm::Addr,
        /// The capsule id whose constructor rejected them.
        capsule_id: CapsuleId,
        /// The structured decode failure (capsule name, arity or value).
        error: FrameDecodeError,
    },
}

impl RehydrateError {
    /// The structured decode error, when the failure was a constructor
    /// rejecting argument words.
    pub fn decode_error(&self) -> Option<&FrameDecodeError> {
        match self {
            RehydrateError::BadArgs { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl std::fmt::Display for RehydrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RehydrateError::Frame(e) => write!(f, "{e}"),
            RehydrateError::UnknownCapsule { addr, capsule_id } => {
                write!(
                    f,
                    "frame at {addr} names unregistered capsule id {capsule_id:#x}"
                )
            }
            RehydrateError::BadArgs {
                addr,
                capsule_id,
                error,
            } => write!(
                f,
                "frame at {addr} (capsule id {capsule_id:#x}) has bad arguments: {error}"
            ),
        }
    }
}

impl std::error::Error for RehydrateError {}

impl From<FrameError> for RehydrateError {
    fn from(e: FrameError) -> Self {
        RehydrateError::Frame(e)
    }
}

/// A rehydration constructor: argument words to a runnable capsule.
pub type CapsuleCtor =
    std::sync::Arc<dyn Fn(&[Word]) -> Result<Cont, FrameDecodeError> + Send + Sync>;

/// A frame tracer: reports the persistent-memory references a frame's
/// argument words carry (continuation handles, live word extents) into a
/// [`PoolRefs`] collector, returning whether the words were fully
/// understood — `false` (e.g. the typed state failed to decode) makes
/// the checkpoint subsystem refuse to reclaim anything, exactly like a
/// missing tracer. Installed alongside the constructor by
/// [`CapsuleRegistry::register_traced`] (the typed DSL derives it from
/// [`crate::persist::Persist::pool_refs`]).
pub type CapsuleTracer = std::sync::Arc<dyn Fn(&[Word], &mut PoolRefs) -> bool + Send + Sync>;

/// A computation expressed as persistent capsule frames: given the
/// machine and the frame handle of the continuation to run after the
/// computation (typically the finale), register the needed rehydration
/// constructors, build the root frame chain with deterministic setup
/// writes ([`crate::machine::Machine::setup_frame`]), and return the root
/// frame handle.
///
/// Determinism contract: calling a `PComp` on a machine reopened from a
/// crashed run must perform the same allocations, register the same ids,
/// and produce the same frame words as the creating run did — that is
/// what lets a recovering scheduler resume the crashed run's deques.
pub type PComp = std::sync::Arc<dyn Fn(&crate::machine::Machine, Word) -> Word + Send + Sync>;

struct Entry {
    name: &'static str,
    ctor: CapsuleCtor,
    trace: Option<CapsuleTracer>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<CapsuleId, Entry>,
    /// Name → id for every id this registry has seen (allocated or
    /// manually registered); the idempotence key of [`CapsuleRegistry::allocate`].
    by_name: HashMap<&'static str, CapsuleId>,
    /// Next id [`CapsuleRegistry::allocate`] will try.
    next: CapsuleId,
}

/// Registry of rehydration constructors, keyed by stable capsule id.
pub struct CapsuleRegistry {
    inner: RwLock<Inner>,
}

impl Default for CapsuleRegistry {
    fn default() -> Self {
        CapsuleRegistry {
            inner: RwLock::new(Inner {
                entries: HashMap::new(),
                by_name: HashMap::new(),
                next: FIRST_USER_CAPSULE_ID,
            }),
        }
    }
}

impl std::fmt::Debug for CapsuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CapsuleRegistry({} ids)",
            self.inner.read().entries.len()
        )
    }
}

impl CapsuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates (or returns the previously allocated) capsule id for
    /// `name`. Idempotent by name: the recovering process replays the
    /// same construction sequence as the creating run, asks for the same
    /// names in the same order, and receives the same ids — which is
    /// what makes dynamically allocated ids construction-deterministic.
    ///
    /// The returned id has no constructor yet; install one with
    /// [`CapsuleRegistry::register`] (or via `dsl::CapsuleSet`, which
    /// wraps both steps).
    pub fn allocate(&self, name: &'static str) -> CapsuleId {
        let mut inner = self.inner.write();
        if let Some(id) = inner.by_name.get(name) {
            return *id;
        }
        let mut id = inner.next.max(FIRST_USER_CAPSULE_ID);
        while inner.entries.contains_key(&id) {
            id += 1;
        }
        inner.next = id + 1;
        inner.by_name.insert(name, id);
        id
    }

    /// Registers `ctor` under `id`. Re-registering the same `(id, name)`
    /// is idempotent (the recovering process replays the same
    /// construction sequence the creating run performed).
    ///
    /// # Panics
    /// Panics if `id` is already registered under a *different* name, or
    /// `name` under a different id — a construction-determinism bug (or a
    /// manual-id collision) that would silently rehydrate the wrong code.
    /// The panic names both capsules.
    pub fn register<F>(&self, id: CapsuleId, name: &'static str, ctor: F)
    where
        F: Fn(&[Word]) -> Result<Cont, FrameDecodeError> + Send + Sync + 'static,
    {
        self.register_inner(id, name, std::sync::Arc::new(ctor), None);
    }

    /// [`CapsuleRegistry::register`] plus a [`CapsuleTracer`], making
    /// frames of this capsule traceable by checkpoint GC. Same idempotence
    /// and collision rules.
    pub fn register_traced<F, T>(&self, id: CapsuleId, name: &'static str, ctor: F, trace: T)
    where
        F: Fn(&[Word]) -> Result<Cont, FrameDecodeError> + Send + Sync + 'static,
        T: Fn(&[Word], &mut PoolRefs) -> bool + Send + Sync + 'static,
    {
        self.register_inner(
            id,
            name,
            std::sync::Arc::new(ctor),
            Some(std::sync::Arc::new(trace)),
        );
    }

    fn register_inner(
        &self,
        id: CapsuleId,
        name: &'static str,
        ctor: CapsuleCtor,
        trace: Option<CapsuleTracer>,
    ) {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.entries.get(&id) {
            assert_eq!(
                existing.name, name,
                "capsule id {id:#x} registered twice with different names \
                 ({} vs {name}) — ids must be construction-deterministic",
                existing.name
            );
            return;
        }
        if let Some(other) = inner.by_name.get(name) {
            assert_eq!(
                *other, id,
                "capsule name `{name}` registered under two ids ({other:#x} vs {id:#x}) \
                 — allocate ids through the registry instead of hand-picking bases"
            );
        }
        // Keep dynamic allocation above every manually chosen id.
        if id >= inner.next {
            inner.next = id + 1;
        }
        inner.by_name.insert(name, id);
        inner.entries.insert(id, Entry { name, ctor, trace });
    }

    /// Whether `id` has a constructor.
    pub fn contains(&self, id: CapsuleId) -> bool {
        self.inner.read().entries.contains_key(&id)
    }

    /// The diagnostic name registered for `id`.
    pub fn name_of(&self, id: CapsuleId) -> Option<&'static str> {
        self.inner.read().entries.get(&id).map(|e| e.name)
    }

    /// The id allocated or registered for `name`, if any.
    pub fn id_of(&self, name: &'static str) -> Option<CapsuleId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Number of registered ids.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// Whether no ids are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// Rehydrates a decoded frame into a runnable capsule.
    pub fn instantiate(&self, frame: &Frame) -> Result<Cont, RehydrateError> {
        let ctor = {
            let inner = self.inner.read();
            match inner.entries.get(&frame.capsule_id) {
                Some(e) => e.ctor.clone(),
                None => {
                    return Err(RehydrateError::UnknownCapsule {
                        addr: frame.addr,
                        capsule_id: frame.capsule_id,
                    })
                }
            }
        };
        ctor(&frame.args).map_err(|error| RehydrateError::BadArgs {
            addr: frame.addr,
            capsule_id: frame.capsule_id,
            error,
        })
    }

    /// Decodes the frame at `handle` in `mem` and rehydrates it. The
    /// end-to-end path recovery uses on every persisted deque entry and
    /// restart pointer.
    pub fn rehydrate(&self, mem: &PersistentMemory, handle: Word) -> Result<Cont, RehydrateError> {
        let frame = read_frame(mem, handle as ppm_pm::Addr)?;
        self.instantiate(&frame)
    }

    /// Traces the persistent references of a frame's argument words into
    /// `out`. Returns `false` when `capsule_id` has no tracer (an
    /// unregistered id, or a raw registration without one) or the tracer
    /// could not decode the words — the signal for checkpoint GC to skip
    /// reclamation rather than guess at liveness.
    pub fn trace_refs(&self, capsule_id: CapsuleId, args: &[Word], out: &mut PoolRefs) -> bool {
        let trace = {
            let inner = self.inner.read();
            match inner.entries.get(&capsule_id).and_then(|e| e.trace.clone()) {
                Some(t) => t,
                None => return false,
            }
        };
        trace(args, out)
    }
}

/// Decodes a frame's argument words into a fixed-arity array on behalf of
/// capsule `capsule`, reporting a structured [`FrameDecodeError`] on an
/// arity mismatch. The shared front door of raw (untyped) rehydration
/// constructors; typed constructors go through
/// [`crate::persist::decode_args`] instead.
///
/// ```
/// use ppm_core::registry::frame_args;
/// let [node, k] = frame_args::<2>("probe", &[7, 99]).unwrap();
/// assert_eq!((node, k), (7, 99));
/// let err = frame_args::<2>("probe", &[7]).unwrap_err();
/// assert_eq!(err.capsule, "probe");
/// ```
pub fn frame_args<const N: usize>(
    capsule: &'static str,
    args: &[Word],
) -> Result<[Word; N], FrameDecodeError> {
    args.try_into().map_err(|_| FrameDecodeError {
        capsule,
        kind: FrameDecodeKind::Arity {
            expected: N,
            got: args.len(),
        },
    })
}

/// Registers the runtime's built-in capsules (join arrivals, the finale,
/// the trivial end, the fork pair) on `registry`. Called by machine
/// construction; idempotent.
pub fn register_core_capsules(registry: &CapsuleRegistry) {
    // A join arrival keeps its cell word and its post-join continuation
    // frame alive; the tracer reports both (and refuses malformed args).
    let join_trace = |args: &[Word], out: &mut PoolRefs| {
        if let [cell, _token, after] = args {
            out.extent(*cell as usize, 1);
            out.handle(*after);
            true
        } else {
            false
        }
    };
    registry.register_traced(
        CORE_ID_JOIN_CAM,
        "join-cam",
        |args| {
            let [cell, token, after] = frame_args("join-cam", args)?;
            Ok(JoinCell::at(cell as ppm_pm::Addr).arrive_cam_frame(token, after))
        },
        join_trace,
    );
    registry.register_traced(
        CORE_ID_JOIN_CHECK,
        "join-check",
        |args| {
            let [cell, token, after] = frame_args("join-check", args)?;
            Ok(JoinCell::at(cell as ppm_pm::Addr).arrive_check_frame(token, after))
        },
        join_trace,
    );
    registry.register_traced(
        CORE_ID_FINALE,
        "finale",
        |args| {
            let [flag] = frame_args("finale", args)?;
            let flag = flag as ppm_pm::Addr;
            Ok(capsule("finale", move |ctx| {
                ctx.pwrite(flag, 1)?;
                Ok(Next::End)
            }))
        },
        |args, out| {
            if let [flag] = args {
                out.extent(*flag as usize, 1);
                true
            } else {
                false
            }
        },
    );
    registry.register_traced(
        CORE_ID_END,
        "end",
        |_args| Ok(crate::capsule::end_capsule()),
        |_args, _out| true,
    );
    registry.register_traced(
        CORE_ID_FORK_PAIR,
        "fork-pair",
        |args| {
            let [left, right] = frame_args("fork-pair", args)?;
            Ok(capsule("fork-pair", move |_ctx| {
                Ok(Next::ForkHandle {
                    child: right,
                    cont: left,
                })
            }))
        },
        |args, out| {
            for a in args {
                out.handle(*a);
            }
            args.len() == 2
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::store_frame;
    use std::sync::Arc;

    #[test]
    fn register_and_instantiate() {
        let reg = CapsuleRegistry::new();
        reg.register(0x200, "probe", |args| {
            let target = args[0] as ppm_pm::Addr;
            Ok(capsule("probe", move |ctx| {
                ctx.pwrite(target, 77)?;
                Ok(Next::End)
            }))
        });
        assert!(reg.contains(0x200));
        assert_eq!(reg.name_of(0x200), Some("probe"));
        assert_eq!(reg.id_of("probe"), Some(0x200));
        let mem = Arc::new(PersistentMemory::new(256, 8));
        store_frame(&mem, 16, 0x200, &[40]);
        let c = reg.rehydrate(&mem, 16).expect("rehydrates");
        assert_eq!(c.name(), "probe");
    }

    fn expect_err(r: Result<Cont, RehydrateError>) -> RehydrateError {
        match r {
            Err(e) => e,
            Ok(c) => panic!("expected rehydration failure, got capsule `{}`", c.name()),
        }
    }

    #[test]
    fn unknown_capsule_is_a_clean_error() {
        let reg = CapsuleRegistry::new();
        let mem = PersistentMemory::new(256, 8);
        store_frame(&mem, 16, 0xDEAD, &[]);
        let err = expect_err(reg.rehydrate(&mem, 16));
        assert!(
            matches!(
                err,
                RehydrateError::UnknownCapsule {
                    capsule_id: 0xDEAD,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.decode_error().is_none());
    }

    #[test]
    fn malformed_frame_is_a_clean_error() {
        let reg = CapsuleRegistry::new();
        let mem = PersistentMemory::new(256, 8);
        mem.store(16, 1); // legacy marker word
        let err = expect_err(reg.rehydrate(&mem, 16));
        assert!(matches!(err, RehydrateError::Frame(_)), "{err}");
        // Null handle is not a frame either.
        assert!(reg.rehydrate(&mem, 0).is_err());
    }

    #[test]
    fn re_registration_is_idempotent() {
        let reg = CapsuleRegistry::new();
        reg.register(0x300, "same", |_| Ok(crate::capsule::end_capsule()));
        reg.register(0x300, "same", |_| Ok(crate::capsule::end_capsule()));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice with different names (alpha/up vs beta/down)")]
    fn conflicting_registration_panics_naming_both_capsules() {
        let reg = CapsuleRegistry::new();
        reg.register(0x300, "alpha/up", |_| Ok(crate::capsule::end_capsule()));
        reg.register(0x300, "beta/down", |_| Ok(crate::capsule::end_capsule()));
    }

    #[test]
    #[should_panic(expected = "registered under two ids")]
    fn one_name_under_two_ids_panics() {
        let reg = CapsuleRegistry::new();
        reg.register(0x300, "a", |_| Ok(crate::capsule::end_capsule()));
        reg.register(0x301, "a", |_| Ok(crate::capsule::end_capsule()));
    }

    #[test]
    fn allocation_is_idempotent_by_name_and_collision_free() {
        let reg = CapsuleRegistry::new();
        let a = reg.allocate("alg1/up");
        let b = reg.allocate("alg1/down");
        let c = reg.allocate("alg2/node");
        assert!(a >= FIRST_USER_CAPSULE_ID);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // Re-asking (the recovery replay) returns the same ids.
        assert_eq!(reg.allocate("alg1/up"), a);
        assert_eq!(reg.allocate("alg2/node"), c);
    }

    #[test]
    fn allocation_skips_manually_registered_ids() {
        let reg = CapsuleRegistry::new();
        reg.register(FIRST_USER_CAPSULE_ID, "manual", |_| {
            Ok(crate::capsule::end_capsule())
        });
        let id = reg.allocate("dynamic");
        assert_ne!(id, FIRST_USER_CAPSULE_ID);
        assert!(!reg.contains(id), "allocated but not yet registered");
        reg.register(id, "dynamic", |_| Ok(crate::capsule::end_capsule()));
        assert!(reg.contains(id));
    }

    #[test]
    fn core_capsules_cover_reserved_ids() {
        let reg = CapsuleRegistry::new();
        register_core_capsules(&reg);
        for id in [
            CORE_ID_JOIN_CAM,
            CORE_ID_JOIN_CHECK,
            CORE_ID_FINALE,
            CORE_ID_END,
            CORE_ID_FORK_PAIR,
        ] {
            assert!(reg.contains(id));
            assert!(id < FIRST_USER_CAPSULE_ID);
        }
        register_core_capsules(&reg); // idempotent
    }

    #[test]
    fn bad_args_surface_the_structured_decode_error() {
        let reg = CapsuleRegistry::new();
        register_core_capsules(&reg);
        let mem = PersistentMemory::new(256, 8);
        store_frame(&mem, 16, CORE_ID_FINALE, &[]); // finale wants 1 arg
        let err = expect_err(reg.rehydrate(&mem, 16));
        let decode = err
            .decode_error()
            .expect("BadArgs carries the decode error");
        assert_eq!(decode.capsule, "finale");
        assert_eq!(
            decode.kind,
            crate::persist::FrameDecodeKind::Arity {
                expected: 1,
                got: 0
            }
        );
        assert!(err.to_string().contains("finale"), "{err}");
    }
}
