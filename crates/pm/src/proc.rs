//! The per-processor access handle.
//!
//! Every *costed* external read and write in the entire system flows through
//! a [`ProcCtx`]. It is the embodiment of one processor of the model: it
//! charges unit cost per transfer, consults the fault adversary before each
//! transfer, feeds the write-after-read validator, and carries the
//! processor's restart-stable allocation cursor (§4.1).
//!
//! Capsule bodies receive `&mut ProcCtx` and perform all persistent-memory
//! traffic with the fallible methods ([`ProcCtx::pread`], [`ProcCtx::pwrite`],
//! [`ProcCtx::pcam`], [`ProcCtx::read_block_into`], ...). A returned
//! [`Fault`] must be propagated out of the capsule (the `?` operator does
//! this naturally); the capsule engine then performs the model's restart.

use std::sync::Arc;

use crate::config::{PmConfig, ValidateMode};
use crate::error::{Fault, PmResult};
use crate::fault::{FaultInjector, Liveness};
use crate::layout::Region;
use crate::mem::PersistentMemory;
use crate::stats::MemStats;
use crate::validate::WarTracker;
use crate::word::{Addr, Word};

/// One processor's handle onto the shared machine.
#[derive(Debug)]
pub struct ProcCtx {
    proc: usize,
    mem: Arc<PersistentMemory>,
    stats: Arc<MemStats>,
    liveness: Arc<Liveness>,
    injector: FaultInjector,
    war: WarTracker,
    /// External transfers performed by the current capsule run.
    capsule_work: u64,
    /// The per-processor allocation pool (§4.1), if configured.
    alloc_pool: Option<Region>,
    /// Next free word in the pool.
    alloc_cursor: usize,
    /// Cursor value at the start of the active capsule; restarts roll back
    /// to this, so re-running a capsule re-allocates the same addresses.
    capsule_start_cursor: usize,
    /// Persistent word mirroring the committed allocation cursor, when
    /// configured. Written (uncosted) at every capsule completion so a
    /// recovering process knows how much of the pool holds live closure
    /// frames — see `ppm-core`'s machine docs.
    watermark_addr: Option<Addr>,
    /// Ephemeral memory capacity `M` (words), for algorithms sizing their
    /// base cases.
    ephemeral_words: usize,
    /// When set, word accesses bypass write-after-read tracking. Used for
    /// the Figure 3 scheduler capsules whose idempotence the paper proves
    /// directly (via entry tags) rather than via conflict freedom.
    war_exempt: bool,
    /// Write-combining staging buffer: contiguous pool ranges stored by
    /// [`ProcCtx::stage_write`] whose transfer cost has not been charged
    /// yet. Flushed as whole-block persists at the capsule boundary;
    /// cleared on capsule begin/restart (the §4.1 cursor rollback makes a
    /// re-run re-stage identical words at identical addresses).
    staged: Vec<(Addr, usize)>,
    /// Causal span sink, when span tracing is on for this process. All
    /// span fields below stay zero when absent — the disabled path costs
    /// one `Option` check per capsule.
    span_sink: Option<Arc<ppm_obs::SpanSink>>,
    /// Span id of the currently running traced capsule execution
    /// (0 = none / untraced). Minted once per execution — soft-fault
    /// restarts keep it — and stamped into every frame the capsule
    /// writes ([`crate::frame::write_frame`]).
    cur_span: u64,
    /// Last traced span in an unbroken same-thread continuation chain.
    /// A traced capsule's begin uses it as the parent (the enablement
    /// edge of a `jump_to`/fork arm run in place); any untraced
    /// scheduler capsule in between breaks the chain, forcing the
    /// parent to come from the persistent frame word instead — which is
    /// exactly the steal/adoption/recovery cross-process edge.
    chain_span: u64,
    /// Parent span read from the frame word of the next capsule to be
    /// installed via a frame handle (set by the engine at resolve time,
    /// consumed by the next traced begin).
    pending_parent: u64,
    /// Frame address the next capsule will run from (reported in its
    /// span-start record; consumed with `pending_parent`).
    pending_frame: u64,
    /// Wall-clock start of the current span, for the duration field.
    span_started: Option<std::time::Instant>,
}

impl ProcCtx {
    /// Creates processor `proc`'s context for a machine with the given
    /// shared state.
    pub fn new(
        cfg: &PmConfig,
        proc: usize,
        mem: Arc<PersistentMemory>,
        stats: Arc<MemStats>,
        liveness: Arc<Liveness>,
    ) -> Self {
        assert!(
            proc < cfg.procs,
            "proc id {proc} out of range {}",
            cfg.procs
        );
        ProcCtx {
            proc,
            mem,
            stats,
            liveness,
            injector: FaultInjector::new(&cfg.fault, proc),
            war: WarTracker::new(cfg.validate),
            capsule_work: 0,
            alloc_pool: None,
            alloc_cursor: 0,
            capsule_start_cursor: 0,
            watermark_addr: None,
            ephemeral_words: cfg.ephemeral_words,
            war_exempt: false,
            staged: Vec::new(),
            span_sink: None,
            cur_span: 0,
            chain_span: 0,
            pending_parent: 0,
            pending_frame: 0,
            span_started: None,
        }
    }

    /// This processor's id.
    #[inline]
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// The machine's block size `B`.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.mem.block_size()
    }

    /// The ephemeral memory capacity `M` in words.
    #[inline]
    pub fn ephemeral_words(&self) -> usize {
        self.ephemeral_words
    }

    /// Direct (uncosted, fault-free) access to the persistent memory, for
    /// engine internals and oracles. Capsule bodies must not use this.
    #[inline]
    pub fn raw_mem(&self) -> &PersistentMemory {
        &self.mem
    }

    /// The liveness oracle `isLive(procId)` (free, per the model).
    #[inline]
    pub fn is_live(&self, proc: usize) -> bool {
        self.liveness.is_live(proc)
    }

    /// Shared liveness oracle handle.
    #[inline]
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Shared statistics handle.
    #[inline]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Whether this processor has hard-faulted.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.injector.is_dead()
    }

    /// The validation mode this context runs under.
    #[inline]
    pub fn validate_mode(&self) -> ValidateMode {
        self.war.mode()
    }

    /// Enables or disables write-after-read tracking for subsequent
    /// accesses. The engine sets this per capsule from the capsule trait's
    /// `war_checked` hook (see `ppm-core`): the handful of Figure 3
    /// capsules that intentionally read-then-CAM the same entry are
    /// exempt, their idempotence being Lemma A.6/A.12's tag argument.
    #[inline]
    pub fn set_war_exempt(&mut self, exempt: bool) {
        self.war_exempt = exempt;
    }

    // ------------------------------------------------------------------
    // Capsule lifecycle (called by the engine, not by capsule bodies)
    // ------------------------------------------------------------------

    /// Begins a *new* capsule: commits the allocation cursor and resets the
    /// validator and work counter. Called when a capsule is installed.
    pub fn begin_capsule(&mut self, name: &str) {
        self.capsule_start_cursor = self.alloc_cursor;
        self.capsule_work = 0;
        self.staged.clear();
        self.war.reset(name);
        self.stats.record_capsule_run(self.proc);
    }

    /// Restarts the active capsule after a soft fault: ephemeral state is
    /// gone (the capsule body's locals are simply dropped by the engine),
    /// the allocation cursor rolls back so the rerun allocates identical
    /// addresses, and validation restarts.
    pub fn restart_capsule(&mut self, name: &str) {
        self.alloc_cursor = self.capsule_start_cursor;
        self.capsule_work = 0;
        self.staged.clear();
        self.war.reset(name);
        self.stats.record_capsule_run(self.proc);
    }

    /// Completes the active capsule, recording its capsule work. Returns
    /// that work (the quantity whose maximum is the paper's `C`).
    ///
    /// If a watermark word is configured, the committed allocation cursor
    /// is mirrored there with an uncosted store (machine bookkeeping, like
    /// statistics — the model's closure write is the costed install). The
    /// mirror is exact at every capsule boundary: anything a crashed run
    /// published (a frame handle in a deque entry or restart pointer) was
    /// allocated by an already-completed capsule and so sits below the
    /// persisted watermark.
    pub fn complete_capsule(&mut self) -> u64 {
        let w = self.capsule_work;
        self.stats.record_capsule_completion(self.proc, w);
        if let Some(wm) = self.watermark_addr {
            self.mem.store(wm, self.alloc_cursor as Word);
        }
        if self.cur_span != 0 {
            if let Some(sink) = &self.span_sink {
                let dur_us = self
                    .span_started
                    .map(|t| t.elapsed().as_micros() as u64)
                    .unwrap_or(0);
                sink.end(self.cur_span, w, dur_us);
            }
            self.cur_span = 0;
            self.span_started = None;
        }
        w
    }

    // ------------------------------------------------------------------
    // Causal span tracing (called by the engine, not by capsule bodies)
    // ------------------------------------------------------------------

    /// Installs (or removes) the process-wide span sink for this context.
    /// Engine use: the machine injects it into every context it mints.
    pub fn set_span_sink(&mut self, sink: Option<Arc<ppm_obs::SpanSink>>) {
        self.span_sink = sink;
    }

    /// Opens a span for a new capsule execution, resolving its causal
    /// parent. Called by the engine once per execution, right after
    /// [`ProcCtx::begin_capsule`] and **before** the soft-fault retry
    /// loop — the span id is restart-stable, like the §4.1 allocation
    /// cursor.
    ///
    /// Parent resolution: an unbroken same-thread chain wins (the
    /// previous traced capsule jumped here); otherwise the parent comes
    /// from the pending frame word set at handle-resolve time — the
    /// cross-process steal/adoption/recovery edge. An *untraced* begin
    /// (scheduler capsules) breaks the chain and clears any stale
    /// pending edge; the engine re-sets the pending edge after the
    /// scheduler body picks its target frame, so the handoff survives.
    pub fn span_begin(&mut self, name: &str, traced: bool) {
        if !traced {
            self.cur_span = 0;
            self.chain_span = 0;
            self.pending_parent = 0;
            self.pending_frame = 0;
            return;
        }
        let Some(sink) = &self.span_sink else {
            return;
        };
        let parent = if self.chain_span != 0 {
            self.chain_span
        } else {
            self.pending_parent
        };
        let frame = self.pending_frame;
        self.pending_parent = 0;
        self.pending_frame = 0;
        let id = sink.mint();
        sink.start(id, parent, frame, name, self.proc);
        self.cur_span = id;
        self.chain_span = id;
        self.span_started = Some(std::time::Instant::now());
    }

    /// Records the causal edge for the next frame-handle install: the
    /// `parent` span read from the frame's parent word and the frame
    /// address itself. Consumed by the next traced [`ProcCtx::span_begin`].
    /// Engine use (uncosted — provenance, not program state).
    pub fn set_pending_parent(&mut self, parent: u64, frame: Addr) {
        if self.span_sink.is_some() {
            self.pending_parent = parent;
            self.pending_frame = frame as u64;
        }
    }

    /// The span id of the running traced capsule execution (0 = none).
    /// Stamped into frames by [`crate::frame::write_frame`].
    #[inline]
    pub fn cur_span(&self) -> u64 {
        self.cur_span
    }

    /// Forces the current span id (tests of the frame format only).
    #[cfg(test)]
    pub(crate) fn set_span_for_test(&mut self, span: u64) {
        self.cur_span = span;
    }

    /// External transfers performed so far by the current capsule run.
    #[inline]
    pub fn capsule_work(&self) -> u64 {
        self.capsule_work
    }

    // ------------------------------------------------------------------
    // Fault plumbing
    // ------------------------------------------------------------------

    /// One adversary consultation; on a fault, records it, updates the
    /// liveness oracle for hard faults, and returns `Err`.
    #[inline]
    fn fault_point(&mut self) -> PmResult<()> {
        match self.injector.check() {
            None => Ok(()),
            Some(Fault::Soft) => {
                self.stats.record_soft_fault(self.proc);
                Err(Fault::Soft)
            }
            Some(Fault::Hard) => {
                self.stats.record_hard_fault(self.proc);
                self.liveness.mark_dead(self.proc);
                Err(Fault::Hard)
            }
        }
    }

    /// Charges the model's restart overhead: on restart the processor
    /// loads the restart pointer and the start instruction — "a constant
    /// number of external memory transfers" (§2). Charged as one external
    /// read; may itself fault (a restart can be interrupted by another
    /// fault), in which case the engine retries. Not WAR-tracked: the
    /// restart sequence is machine-level, not part of the capsule body.
    #[inline]
    pub fn charge_restart(&mut self) -> PmResult<()> {
        self.fault_point()?;
        self.stats.record_read(self.proc);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Costed word operations
    // ------------------------------------------------------------------

    /// External read of one word (unit cost; may fault).
    #[inline]
    pub fn pread(&mut self, addr: Addr) -> PmResult<Word> {
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_read(self.proc);
        if !self.war_exempt {
            self.war.on_read(addr);
        }
        Ok(self.mem.load(addr))
    }

    /// External write of one word (unit cost; may fault).
    #[inline]
    pub fn pwrite(&mut self, addr: Addr, value: Word) -> PmResult<()> {
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_write(self.proc);
        if !self.war_exempt {
            self.war.on_write(addr, &self.stats);
        }
        self.mem.store(addr, value);
        Ok(())
    }

    /// Compare-and-modify (unit cost; may fault). The swap result is not
    /// observable — see [`PersistentMemory::cam`].
    #[inline]
    pub fn pcam(&mut self, addr: Addr, old: Word, new: Word) -> PmResult<()> {
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_write(self.proc);
        if !self.war_exempt {
            self.war.on_write(addr, &self.stats);
        }
        self.mem.cam(addr, old, new);
        Ok(())
    }

    /// Full CAS returning success (unit cost; may fault). **Unsafe under
    /// faults** — provided only for the ABP baseline scheduler; see §5 of
    /// the paper for why a faulting capsule cannot use the result.
    #[inline]
    pub fn pcas_baseline(&mut self, addr: Addr, old: Word, new: Word) -> PmResult<bool> {
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_write(self.proc);
        if !self.war_exempt {
            self.war.on_write(addr, &self.stats);
        }
        Ok(self.mem.cas_unsafe_under_faults(addr, old, new))
    }

    // ------------------------------------------------------------------
    // Costed block operations
    // ------------------------------------------------------------------

    /// External read of one block into `dst` (unit cost; may fault).
    /// `dst.len()` must not exceed the block size, and the range must not
    /// cross a block boundary.
    pub fn read_block_into(&mut self, addr: Addr, dst: &mut [Word]) -> PmResult<()> {
        self.check_block_bounds(addr, dst.len());
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_read(self.proc);
        if !self.war_exempt {
            self.war.on_read_block(addr, dst.len());
        }
        self.mem.read_range(addr, dst);
        Ok(())
    }

    /// External write of one block from `src` (unit cost; may fault).
    /// Same bounds rules as [`ProcCtx::read_block_into`].
    pub fn write_block(&mut self, addr: Addr, src: &[Word]) -> PmResult<()> {
        self.check_block_bounds(addr, src.len());
        self.fault_point()?;
        self.capsule_work += 1;
        self.stats.record_write(self.proc);
        if !self.war_exempt {
            let stats = self.stats.clone();
            self.war.on_write_block(addr, src.len(), &stats);
        }
        self.mem.write_range(addr, src);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write-combining staging (frame-pool writes)
    // ------------------------------------------------------------------

    /// Stores one word through the write-combining buffer. The word hits
    /// memory **immediately** — same-capsule reads, frame rehydration and
    /// recovery-time decoding always see current words — but the model's
    /// unit transfer cost (and its fault point) is deferred to
    /// [`ProcCtx::flush_staged`] at the capsule boundary, where adjacent
    /// staged words coalesce into whole-block persists. Intended for
    /// frame-pool writes: §4.1 bump allocation makes consecutive frames
    /// contiguous, so an entire capsule boundary's closures persist as a
    /// handful of sequential block transfers instead of one random write
    /// per word. WAR-tracked like a plain [`ProcCtx::pwrite`].
    ///
    /// Crash-safe by publication ordering: a staged frame's handle only
    /// escapes through a costed install or deque write, which the engine
    /// performs *after* the boundary flush.
    #[inline]
    pub fn stage_write(&mut self, addr: Addr, value: Word) {
        if !self.war_exempt {
            self.war.on_write(addr, &self.stats);
        }
        self.stats.record_staged_word(self.proc);
        match self.staged.last_mut() {
            Some((start, len)) if *start + *len == addr => *len += 1,
            _ => self.staged.push((addr, 1)),
        }
        self.mem.store(addr, value);
    }

    /// Charges the staged writes of the current capsule as coalesced block
    /// transfers — one unit cost per touched block per contiguous range —
    /// and drains the staging buffer. Each block transfer consults the
    /// fault adversary; on a fault the engine restarts the capsule, whose
    /// re-run re-stages identical words at identical addresses (cursor
    /// rollback), so the flush is idempotent. Called by the capsule engine
    /// after the body returns, before the successor is installed.
    pub fn flush_staged(&mut self) -> PmResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let b = self.mem.block_size();
        let mut ranges = std::mem::take(&mut self.staged);
        for (start, len) in ranges.drain(..) {
            let first = start / b;
            let last = (start + len - 1) / b;
            for _ in first..=last {
                self.fault_point()?;
                self.capsule_work += 1;
                self.stats.record_write(self.proc);
                self.stats.record_staged_persist(self.proc);
            }
        }
        self.staged = ranges; // keep the (now empty) allocation
        Ok(())
    }

    /// Words currently sitting in the write-combining buffer (diagnostics).
    #[inline]
    pub fn staged_words(&self) -> usize {
        self.staged.iter().map(|(_, len)| len).sum()
    }

    #[inline]
    fn check_block_bounds(&self, addr: Addr, len: usize) {
        let b = self.mem.block_size();
        assert!(len <= b, "transfer of {len} words exceeds block size {b}");
        assert_eq!(
            addr / b,
            (addr + len.max(1) - 1) / b,
            "block transfer at {addr} len {len} crosses a block boundary"
        );
    }

    // ------------------------------------------------------------------
    // Restart-stable allocation (§4.1)
    // ------------------------------------------------------------------

    /// Installs this processor's allocation pool and cursor (engine use).
    pub fn set_alloc_pool(&mut self, pool: Region, cursor: usize) {
        self.alloc_pool = Some(pool);
        self.alloc_cursor = cursor;
        self.capsule_start_cursor = cursor;
    }

    /// Current allocation cursor (persisted at capsule boundaries by the
    /// engine).
    pub fn alloc_cursor(&self) -> usize {
        self.alloc_cursor
    }

    /// Moves the allocation cursor to `cursor` at a capsule boundary.
    /// Checkpoint GC uses this after a quiesced reclamation rolled the
    /// persisted watermark back below the old cursor: subsequent
    /// allocations reuse the pool words whose frames are dead. Must only
    /// be called between capsules (the committed cursor moves too).
    pub fn set_pool_cursor(&mut self, cursor: usize) {
        self.alloc_cursor = cursor;
        self.capsule_start_cursor = cursor;
    }

    /// Configures the persistent word that mirrors the committed
    /// allocation cursor (`None` disables mirroring). Engine use.
    pub fn set_watermark_addr(&mut self, addr: Option<Addr>) {
        self.watermark_addr = addr;
    }

    /// Mirrors the *current* allocation cursor to the watermark word
    /// immediately (uncosted). The engine calls this after a capsule body
    /// returns and **before** installing its successor: an install may
    /// publish a frame the body just allocated (as the new restart
    /// pointer), and a crash between that publication and the next
    /// capsule boundary must not leave the watermark below a reachable
    /// frame. A subsequent soft-fault restart rolls the cursor back below
    /// the mirrored value, which is harmless — an over-high watermark
    /// only wastes pool words on resume, never corrupts live frames.
    pub fn publish_watermark(&mut self) {
        if let Some(wm) = self.watermark_addr {
            self.mem.store(wm, self.alloc_cursor as Word);
        }
    }

    /// Allocates `words` fresh persistent words from the processor's pool.
    ///
    /// No external transfer is charged here: per §4.1 the bump pointer is
    /// "kept in local memory", and its final value is written into the next
    /// capsule's closure at the capsule boundary (the engine charges that
    /// write as part of installing the capsule). Because the cursor rolls
    /// back on restart, a re-run allocates exactly the same addresses —
    /// allocation is idempotent.
    pub fn palloc(&mut self, words: usize) -> Addr {
        let pool = self
            .alloc_pool
            .expect("processor has no allocation pool configured");
        assert!(
            self.alloc_cursor + words <= pool.len,
            "processor {} allocation pool exhausted ({} + {} > {})",
            self.proc,
            self.alloc_cursor,
            words,
            pool.len
        );
        let addr = pool.start + self.alloc_cursor;
        self.alloc_cursor += words;
        self.stats
            .record_pool_cursor(self.proc, self.alloc_cursor as u64);
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultConfig;

    fn machine(cfg: &PmConfig) -> (Arc<PersistentMemory>, Arc<MemStats>, Arc<Liveness>) {
        (
            Arc::new(PersistentMemory::new(cfg.persistent_words, cfg.block_size)),
            Arc::new(MemStats::new(cfg.procs)),
            Arc::new(Liveness::new(cfg.procs)),
        )
    }

    fn ctx(cfg: &PmConfig) -> ProcCtx {
        let (m, s, l) = machine(cfg);
        ProcCtx::new(cfg, 0, m, s, l)
    }

    #[test]
    fn reads_and_writes_cost_one_each() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.begin_capsule("t");
        c.pwrite(0, 42).unwrap();
        assert_eq!(c.pread(0).unwrap(), 42);
        assert_eq!(c.capsule_work(), 2);
        let snap = c.stats().snapshot();
        assert_eq!(snap.total_reads, 1);
        assert_eq!(snap.total_writes, 1);
    }

    #[test]
    fn block_ops_cost_one_per_block() {
        let cfg = PmConfig::small_single(); // B = 8
        let mut c = ctx(&cfg);
        c.begin_capsule("t");
        c.write_block(8, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut buf = [0u64; 8];
        c.read_block_into(8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.capsule_work(), 2);
    }

    #[test]
    #[should_panic(expected = "crosses a block boundary")]
    fn cross_block_transfer_rejected() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.begin_capsule("t");
        let mut buf = [0u64; 4];
        let _ = c.read_block_into(6, &mut buf); // words 6..10 cross block 0/1
    }

    #[test]
    #[should_panic(expected = "write-after-read conflict")]
    fn war_conflict_detected_through_ctx() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.begin_capsule("war-capsule");
        let _ = c.pread(3).unwrap();
        let _ = c.pwrite(3, 1);
    }

    #[test]
    fn capsule_boundary_clears_war_exposure() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.begin_capsule("c1");
        let _ = c.pread(3).unwrap();
        c.complete_capsule();
        c.begin_capsule("c2");
        c.pwrite(3, 1).unwrap(); // fine: different capsule
    }

    #[test]
    fn faults_interrupt_accesses_and_are_counted() {
        let cfg = PmConfig::small_single().with_fault(FaultConfig::soft(0.5, 11));
        let mut c = ctx(&cfg);
        c.begin_capsule("t");
        let mut faults = 0;
        let mut oks = 0;
        for _ in 0..200 {
            match c.pwrite(0, 1) {
                Ok(()) => oks += 1,
                Err(Fault::Soft) => {
                    faults += 1;
                    c.restart_capsule("t");
                }
                Err(Fault::Hard) => unreachable!("soft-only config"),
            }
        }
        assert!(faults > 0, "with f=0.5 faults must occur");
        assert!(oks > 0);
        let snap = c.stats().snapshot();
        assert_eq!(snap.soft_faults, faults);
        // Cost is charged only for performed accesses.
        assert_eq!(snap.total_writes, oks);
    }

    #[test]
    fn hard_fault_marks_liveness_dead() {
        let cfg = PmConfig::small_single()
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 3));
        let (m, s, l) = machine(&cfg);
        let mut c = ProcCtx::new(&cfg, 0, m, s, l.clone());
        c.begin_capsule("t");
        assert!(c.pwrite(0, 1).is_ok());
        assert!(c.pwrite(1, 1).is_ok());
        assert_eq!(c.pwrite(2, 1), Err(Fault::Hard));
        assert!(!l.is_live(0));
        assert!(c.is_dead());
    }

    #[test]
    fn allocation_is_restart_stable() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.set_alloc_pool(
            Region {
                start: 100,
                len: 64,
            },
            0,
        );

        c.begin_capsule("alloc");
        let a1 = c.palloc(4);
        let a2 = c.palloc(2);
        // Soft fault: rerun must yield identical addresses.
        c.restart_capsule("alloc");
        let b1 = c.palloc(4);
        let b2 = c.palloc(2);
        assert_eq!((a1, a2), (b1, b2));
        c.complete_capsule();

        // Next capsule continues from the committed cursor.
        c.begin_capsule("next");
        let a3 = c.palloc(1);
        assert_eq!(a3, 106);
    }

    #[test]
    fn cam_through_ctx_applies_conditionally() {
        let cfg = PmConfig::small_single();
        let mut c = ctx(&cfg);
        c.begin_capsule("t");
        c.pwrite(0, 5).unwrap();
        c.complete_capsule();
        c.begin_capsule("cam");
        c.pcam(0, 5, 9).unwrap();
        c.complete_capsule();
        assert_eq!(c.raw_mem().load(0), 9);
        c.begin_capsule("cam2");
        c.pcam(0, 5, 11).unwrap(); // stale: no effect
        assert_eq!(c.raw_mem().load(0), 9);
    }
}
