//! Dynamic validation of the paper's correctness conditions.
//!
//! §3 defines a capsule to have a **write-after-read conflict** "if the
//! first transfer from a block in persistent memory is a read (called an
//! 'exposed' read), and later there is a write to the same block". Avoiding
//! such conflicts (plus well-formedness) makes a capsule idempotent
//! (Theorem 3.1) and, combined with race freedom or the §5 capsule forms,
//! atomically idempotent (Theorem 5.1).
//!
//! [`WarTracker`] checks this property *per capsule run* at word
//! granularity: word-level operations (including CAM) record individual
//! words, and block transfers record every word of the block — so block
//! transfers are checked exactly at the paper's block granularity while
//! word-granularity CAS/CAM operations (which the model explicitly allows
//! "on a single word within a block") are not spuriously flagged against
//! neighbouring words.
//!
//! In `Strict` mode a violation panics with a diagnostic (the test suite's
//! way of proving our capsules satisfy Theorem 3.1's hypothesis); in
//! `Record` mode it increments a counter; in `Off` mode nothing is tracked.

use std::collections::HashMap;

use crate::config::ValidateMode;
use crate::stats::MemStats;
use crate::word::Addr;

/// Kind of the first access a capsule made to a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FirstAccess {
    Read,
    Write,
}

/// Per-capsule write-after-read conflict tracker. Owned by a `ProcCtx`;
/// reset at every capsule (re)start.
#[derive(Debug)]
pub struct WarTracker {
    mode: ValidateMode,
    first: HashMap<Addr, FirstAccess>,
    /// Name of the running capsule, for diagnostics.
    capsule_name: String,
}

impl WarTracker {
    /// Creates a tracker with the given mode.
    pub fn new(mode: ValidateMode) -> Self {
        WarTracker {
            mode,
            first: HashMap::new(),
            capsule_name: String::new(),
        }
    }

    /// The current validation mode.
    pub fn mode(&self) -> ValidateMode {
        self.mode
    }

    /// Clears state at a capsule boundary (or restart — each run is checked
    /// independently, which is sound because a conflict-free run re-executes
    /// identically).
    pub fn reset(&mut self, capsule_name: &str) {
        if self.mode == ValidateMode::Off {
            return;
        }
        self.first.clear();
        if self.capsule_name != capsule_name {
            self.capsule_name.clear();
            self.capsule_name.push_str(capsule_name);
        }
    }

    /// Records a word read.
    #[inline]
    pub fn on_read(&mut self, addr: Addr) {
        if self.mode == ValidateMode::Off {
            return;
        }
        self.first.entry(addr).or_insert(FirstAccess::Read);
    }

    /// Records a word write (stores and CAMs alike). Returns `true` if this
    /// write conflicts with an earlier exposed read in the same capsule.
    #[inline]
    pub fn on_write(&mut self, addr: Addr, stats: &MemStats) -> bool {
        if self.mode == ValidateMode::Off {
            return false;
        }
        match self.first.get(&addr) {
            Some(FirstAccess::Read) => {
                match self.mode {
                    ValidateMode::Strict => panic!(
                        "write-after-read conflict in capsule `{}` at word {}: \
                         the first access to this word was a read, and the capsule \
                         later wrote it — on restart the capsule would observe its \
                         own partial effects (violates Theorem 3.1's hypothesis)",
                        self.capsule_name, addr
                    ),
                    ValidateMode::Record => stats.record_war_conflict(),
                    ValidateMode::Off => unreachable!(),
                }
                true
            }
            Some(FirstAccess::Write) => false,
            None => {
                self.first.insert(addr, FirstAccess::Write);
                false
            }
        }
    }

    /// Records a block read: every word of the block becomes exposed unless
    /// already written.
    pub fn on_read_block(&mut self, start: Addr, len: usize) {
        if self.mode == ValidateMode::Off {
            return;
        }
        for a in start..start + len {
            self.on_read(a);
        }
    }

    /// Records a block write; checks each word.
    pub fn on_write_block(&mut self, start: Addr, len: usize, stats: &MemStats) {
        if self.mode == ValidateMode::Off {
            return;
        }
        for a in start..start + len {
            self.on_write(a, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict() -> (WarTracker, MemStats) {
        (WarTracker::new(ValidateMode::Strict), MemStats::new(1))
    }

    #[test]
    fn read_then_write_other_word_is_fine() {
        let (mut t, s) = strict();
        t.reset("c");
        t.on_read(0);
        assert!(!t.on_write(1, &s));
    }

    #[test]
    #[should_panic(expected = "write-after-read conflict")]
    fn read_then_write_same_word_panics_in_strict() {
        let (mut t, s) = strict();
        t.reset("offender");
        t.on_read(5);
        t.on_write(5, &s);
    }

    #[test]
    fn write_then_read_then_write_is_fine() {
        // First access is a write: the capsule owns the word; later reads
        // and writes of it are not exposed.
        let (mut t, s) = strict();
        t.reset("c");
        assert!(!t.on_write(7, &s));
        t.on_read(7);
        assert!(!t.on_write(7, &s));
    }

    #[test]
    fn reset_clears_exposure() {
        let (mut t, s) = strict();
        t.reset("c1");
        t.on_read(3);
        t.reset("c2"); // capsule boundary
        assert!(
            !t.on_write(3, &s),
            "new capsule may write what old one read"
        );
    }

    #[test]
    fn record_mode_counts_instead_of_panicking() {
        let mut t = WarTracker::new(ValidateMode::Record);
        let s = MemStats::new(1);
        t.reset("c");
        t.on_read(0);
        assert!(t.on_write(0, &s));
        assert!(t.on_write(0, &s)); // still conflicting; counted again
        assert_eq!(s.snapshot().war_conflicts, 2);
    }

    #[test]
    fn off_mode_tracks_nothing() {
        let mut t = WarTracker::new(ValidateMode::Off);
        let s = MemStats::new(1);
        t.reset("c");
        t.on_read(0);
        assert!(!t.on_write(0, &s));
        assert_eq!(s.snapshot().war_conflicts, 0);
    }

    #[test]
    fn block_ops_check_block_granularity() {
        let (mut t, s) = strict();
        t.reset("c");
        t.on_read_block(8, 4); // words 8..12 exposed
        assert!(!t.on_write(12, &s)); // outside the block: fine
    }

    #[test]
    #[should_panic(expected = "write-after-read conflict")]
    fn block_read_then_block_write_overlap_panics() {
        let (mut t, s) = strict();
        t.reset("c");
        t.on_read_block(0, 8);
        t.on_write_block(4, 8, &s); // words 4..8 overlap the exposed read
    }
}
