//! Persistent continuation frames: closures as words.
//!
//! The paper (§4.1) stores closures — "the start instruction, local state,
//! arguments and continuation" of a capsule — directly in persistent
//! memory and uses their addresses as restart pointers and deque entries.
//! This module defines the word-level *frame* format that makes a closure
//! denotable by a single persistent word (its frame address), so that a
//! process that died can be replaced by a fresh one that re-materializes
//! the closure from persistent words alone:
//!
//! ```text
//!   word 0   header   = (FRAME_MAGIC << 32) | arg_word_count
//!   word 1   capsule id (a stable u64 registered in ppm-core's
//!            CapsuleRegistry at computation-construction time)
//!   word 2   parent span id (causal-tracing provenance: the span of
//!            the capsule execution that wrote this frame, 0 when
//!            tracing is off or the frame is a setup-time root)
//!   word 3.. argument words (plain data: addresses, indices, and —
//!            crucially — the frame addresses of other continuations)
//! ```
//!
//! The parent-span word is what carries causality *across processes*: a
//! frame stolen or adopted by another shard — or replanted by recovery
//! in a later epoch — still names the span that forked it, so the
//! span-trace analyzer (`ppm-trace`) can stitch one capsule DAG out of
//! many per-process span files. It is provenance metadata, not program
//! state: capsule bodies never read it, and it costs one extra staged
//! word per frame (coalesced into the same block persist as its
//! neighbors).
//!
//! Arguments are plain 64-bit words; a continuation argument is *itself* a
//! frame address, which is what lets whole capsule DAGs round-trip through
//! a crash. Frames are immutable once published (their address escapes
//! into a deque entry or restart pointer only after every word is
//! written), and all frame traffic flows through the same
//! [`crate::mem::PersistentMemory`] words as everything else, so the
//! backend's [`crate::backend::MemBackend::flush`] boundary covers them.
//!
//! Encoding ([`write_frame`]) is costed (through the capsule-boundary
//! write-combining flush) and restart-stable: the frame address comes
//! from the processor's §4.1 pool allocator, so a capsule re-run rewrites
//! the identical words at the identical address. Decoding
//! ([`read_frame`]) is strict: a word that does not carry the magic, an
//! oversized argument count, or an out-of-bounds frame is a
//! [`FrameError`], never a panic — recovery code downgrades to
//! replay-from-root on any malformed frame.

use crate::error::PmResult;
use crate::mem::PersistentMemory;
use crate::proc::ProcCtx;
use crate::word::{Addr, Word};

/// Magic tag in the upper 32 bits of a frame header word. Chosen so that
/// the legacy closure-marker word (`1`) and small scheduler generation
/// counters can never be mistaken for a frame.
pub const FRAME_MAGIC: u64 = 0xF7A3_C0DE;

/// Maximum argument words per frame. Closures are constant-size in the
/// model; this bound keeps a corrupted header from driving a huge decode.
/// Sized for the typed `ppm-core` DSL states, whose frames carry a whole
/// instance geometry (a dozen regions) plus per-node words and the
/// continuation handle.
pub const MAX_FRAME_ARGS: usize = 64;

/// Frame size in words for `argc` argument words (header + id + parent
/// span + args).
#[inline]
pub const fn frame_words(argc: usize) -> usize {
    3 + argc
}

/// Offset of the first argument word within a frame (after the header,
/// capsule-id, and parent-span words).
pub const FRAME_ARGS_AT: usize = 3;

/// Builds a frame header word for `argc` argument words.
#[inline]
pub fn frame_header(argc: usize) -> Word {
    assert!(argc <= MAX_FRAME_ARGS, "frame has too many arguments");
    (FRAME_MAGIC << 32) | argc as u64
}

/// Parses a header word: `Some(argc)` iff it carries the frame magic and a
/// sane argument count.
#[inline]
pub fn parse_header(w: Word) -> Option<usize> {
    if w >> 32 != FRAME_MAGIC {
        return None;
    }
    let argc = (w & 0xFFFF_FFFF) as usize;
    (argc <= MAX_FRAME_ARGS).then_some(argc)
}

/// Why a word range failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The word at the address does not carry [`FRAME_MAGIC`] (or claims
    /// more than [`MAX_FRAME_ARGS`] arguments).
    NotAFrame {
        /// The address that was probed.
        addr: Addr,
        /// The raw word found there.
        word: Word,
    },
    /// The frame's claimed extent runs past the end of persistent memory.
    OutOfBounds {
        /// The frame address.
        addr: Addr,
        /// The claimed argument count.
        argc: usize,
    },
    /// The frame decoded, but its capsule id is not registered (reported
    /// by `ppm-core`'s registry, carried here so both layers share one
    /// error type).
    UnknownCapsule {
        /// The frame address.
        addr: Addr,
        /// The unregistered capsule id.
        capsule_id: Word,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotAFrame { addr, word } => {
                write!(f, "word {word:#x} at address {addr} is not a capsule frame")
            }
            FrameError::OutOfBounds { addr, argc } => {
                write!(f, "frame at {addr} claims {argc} args past end of memory")
            }
            FrameError::UnknownCapsule { addr, capsule_id } => {
                write!(
                    f,
                    "frame at {addr} names unregistered capsule id {capsule_id:#x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Address the frame was decoded from (its handle).
    pub addr: Addr,
    /// The stable capsule id.
    pub capsule_id: Word,
    /// The span id of the capsule execution that wrote this frame
    /// (0 = untraced or setup-time root). See the module docs.
    pub parent_span: Word,
    /// The argument words.
    pub args: Vec<Word>,
}

impl Frame {
    /// Argument word `i`, if present.
    #[inline]
    pub fn arg(&self, i: usize) -> Option<Word> {
        self.args.get(i).copied()
    }

    /// The last argument word — by the `ppm-core` DSL convention, a
    /// frame's continuation handle.
    #[inline]
    pub fn cont(&self) -> Option<Word> {
        self.args.last().copied()
    }

    /// The argument words before the last one — by the DSL convention,
    /// the capsule's typed state words.
    #[inline]
    pub fn state_words(&self) -> &[Word] {
        match self.args.len() {
            0 => &self.args,
            n => &self.args[..n - 1],
        }
    }
}

/// Out-of-line [`FrameError::NotAFrame`] constructor: decode failures are
/// the recovery-forensics path, and keeping their construction `#[cold]`
/// keeps the hot decode loop's happy path branch-predictable and small.
#[cold]
fn not_a_frame(addr: Addr, word: Word) -> FrameError {
    FrameError::NotAFrame { addr, word }
}

/// Out-of-line [`FrameError::OutOfBounds`] constructor (see [`not_a_frame`]).
#[cold]
fn out_of_bounds(addr: Addr, argc: usize) -> FrameError {
    FrameError::OutOfBounds { addr, argc }
}

/// Writes a frame for `(capsule_id, args)` from within a capsule:
/// allocates `2 + args.len()` words from the processor's restart-stable
/// pool and fills them through the write-combining staging buffer
/// ([`ProcCtx::stage_write`]). The words hit memory immediately — a
/// frame is readable by its writer the instant this returns — but their
/// transfer cost is charged at the capsule boundary, where the engine's
/// [`ProcCtx::flush_staged`] coalesces every frame the capsule wrote
/// into sequential whole-block persists (§4.1 bump allocation makes
/// consecutive frames contiguous). Returns the frame address — the
/// single persistent word that now denotes the continuation. Idempotent
/// under capsule restart (same address, same words).
///
/// Crash-safety is preserved by ordering: a frame handle only escapes
/// through a costed install or deque write, and the engine flushes the
/// staging buffer before performing any install.
#[inline]
pub fn write_frame(ctx: &mut ProcCtx, capsule_id: Word, args: &[Word]) -> PmResult<Addr> {
    let addr = ctx.palloc(frame_words(args.len()));
    ctx.stage_write(addr, frame_header(args.len()));
    ctx.stage_write(addr + 1, capsule_id);
    // Provenance: the writing execution's span id. Restart-stable (the
    // span is minted once per execution, before any soft-fault retry).
    ctx.stage_write(addr + 2, ctx.cur_span());
    for (i, a) in args.iter().enumerate() {
        ctx.stage_write(addr + FRAME_ARGS_AT + i, *a);
    }
    Ok(addr)
}

/// Stores a frame at a fixed address with uncosted setup writes (machine
/// construction only — e.g. a computation's root frame written before the
/// processors start). The region at `addr` must hold
/// [`frame_words`]`(args.len())` words.
pub fn store_frame(mem: &PersistentMemory, addr: Addr, capsule_id: Word, args: &[Word]) {
    mem.store(addr, frame_header(args.len()));
    mem.store(addr + 1, capsule_id);
    mem.store(addr + 2, 0); // setup-time frames are span roots
    for (i, a) in args.iter().enumerate() {
        mem.store(addr + FRAME_ARGS_AT + i, *a);
    }
}

/// Decodes the frame at `addr` with uncosted oracle reads (recovery-time
/// and engine-internal rehydration; the model charges closure loading as
/// part of the constant restart/install overhead, which the engine already
/// accounts for).
pub fn read_frame(mem: &PersistentMemory, addr: Addr) -> Result<Frame, FrameError> {
    if addr == 0 || addr >= mem.len() {
        return Err(not_a_frame(addr, 0));
    }
    let header = mem.load(addr);
    let argc = parse_header(header).ok_or_else(|| not_a_frame(addr, header))?;
    if addr + frame_words(argc) > mem.len() {
        return Err(out_of_bounds(addr, argc));
    }
    let capsule_id = mem.load(addr + 1);
    let parent_span = mem.load(addr + 2);
    let args = (0..argc)
        .map(|i| mem.load(addr + FRAME_ARGS_AT + i))
        .collect();
    Ok(Frame {
        addr,
        capsule_id,
        parent_span,
        args,
    })
}

/// Whether the word at `addr` looks like a frame header (cheap probe used
/// by recovery forensics; [`read_frame`] remains the authoritative check).
#[inline]
pub fn is_frame_at(mem: &PersistentMemory, addr: Addr) -> bool {
    addr != 0 && addr < mem.len() && parse_header(mem.load(addr)).is_some()
}

/// The parent-span word of the frame at `addr`, or `None` when `addr`
/// does not hold a frame. Uncosted oracle read (tracing provenance, not
/// program state).
#[inline]
pub fn frame_parent_span(mem: &PersistentMemory, addr: Addr) -> Option<Word> {
    is_frame_at(mem, addr).then(|| mem.load(addr + 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmConfig;
    use crate::fault::Liveness;
    use crate::layout::Region;
    use crate::stats::MemStats;
    use std::sync::Arc;

    fn ctx_with_pool(mem: &Arc<PersistentMemory>) -> ProcCtx {
        let cfg = PmConfig::small_single();
        let stats = Arc::new(MemStats::new(1));
        let live = Arc::new(Liveness::new(1));
        let mut ctx = ProcCtx::new(&cfg, 0, mem.clone(), stats, live);
        ctx.set_alloc_pool(
            Region {
                start: 64,
                len: 512,
            },
            0,
        );
        ctx
    }

    #[test]
    fn header_round_trips() {
        for argc in [0usize, 1, 7, MAX_FRAME_ARGS] {
            assert_eq!(parse_header(frame_header(argc)), Some(argc));
        }
        assert_eq!(parse_header(0), None);
        assert_eq!(
            parse_header(1),
            None,
            "legacy closure marker is not a frame"
        );
        assert_eq!(
            parse_header((FRAME_MAGIC << 32) | (MAX_FRAME_ARGS as u64 + 1)),
            None,
            "oversized argc rejected"
        );
    }

    #[test]
    fn write_then_read_round_trips() {
        let mem = Arc::new(PersistentMemory::new(1024, 8));
        let mut ctx = ctx_with_pool(&mem);
        ctx.begin_capsule("t");
        let addr = write_frame(&mut ctx, 0xABCD, &[1, 2, 3]).unwrap();
        let f = read_frame(&mem, addr).unwrap();
        assert_eq!(f.capsule_id, 0xABCD);
        assert_eq!(f.args, vec![1, 2, 3]);
        assert_eq!(f.addr, addr);
    }

    #[test]
    fn write_frame_is_restart_stable() {
        let mem = Arc::new(PersistentMemory::new(1024, 8));
        let mut ctx = ctx_with_pool(&mem);
        ctx.begin_capsule("fork-like");
        let a1 = write_frame(&mut ctx, 7, &[9, 9]).unwrap();
        ctx.restart_capsule("fork-like");
        let a2 = write_frame(&mut ctx, 7, &[9, 9]).unwrap();
        assert_eq!(a1, a2, "restart must rewrite the same frame address");
        assert_eq!(read_frame(&mem, a1).unwrap().args, vec![9, 9]);
    }

    #[test]
    fn store_frame_matches_costed_encoding() {
        let mem = Arc::new(PersistentMemory::new(1024, 8));
        store_frame(&mem, 40, 5, &[10, 20]);
        let mut ctx = ctx_with_pool(&mem);
        ctx.begin_capsule("t");
        let a = write_frame(&mut ctx, 5, &[10, 20]).unwrap();
        // Both paths have span 0 here (no sink attached), so the full
        // 5-word images — header, id, parent span, args — coincide.
        assert_eq!(mem.to_vec(40, 5), mem.to_vec(a, 5), "identical word images");
    }

    #[test]
    fn frames_carry_the_writers_span() {
        let mem = Arc::new(PersistentMemory::new(1024, 8));
        let mut ctx = ctx_with_pool(&mem);
        ctx.begin_capsule("t");
        ctx.set_span_for_test(0xBEEF);
        let a = write_frame(&mut ctx, 5, &[10]).unwrap();
        let f = read_frame(&mem, a).unwrap();
        assert_eq!(f.parent_span, 0xBEEF);
        assert_eq!(f.args, vec![10]);
        store_frame(&mem, 40, 5, &[10]);
        assert_eq!(read_frame(&mem, 40).unwrap().parent_span, 0, "setup roots");
    }

    #[test]
    fn typed_read_helpers_follow_the_dsl_convention() {
        let mem = Arc::new(PersistentMemory::new(1024, 8));
        store_frame(&mem, 40, 9, &[11, 22, 33]);
        let f = read_frame(&mem, 40).unwrap();
        assert_eq!(f.arg(0), Some(11));
        assert_eq!(f.arg(2), Some(33));
        assert_eq!(f.arg(3), None);
        assert_eq!(f.cont(), Some(33));
        assert_eq!(f.state_words(), &[11, 22]);
        store_frame(&mem, 80, 9, &[]);
        let empty = read_frame(&mem, 80).unwrap();
        assert_eq!(empty.cont(), None);
        assert!(empty.state_words().is_empty());
    }

    #[test]
    fn non_frames_are_rejected_cleanly() {
        let mem = Arc::new(PersistentMemory::new(256, 8));
        mem.store(10, 1); // legacy marker
        mem.store(11, 42); // random word
        for addr in [0usize, 10, 11, 500] {
            let err = read_frame(&mem, addr).unwrap_err();
            assert!(matches!(err, FrameError::NotAFrame { .. }), "{addr}: {err}");
        }
        assert!(!is_frame_at(&mem, 10));
    }

    #[test]
    fn truncated_frame_is_out_of_bounds() {
        let mem = Arc::new(PersistentMemory::new(64, 8));
        mem.store(62, frame_header(8)); // claims 10 words at addr 62 of 64
        let err = read_frame(&mem, 62).unwrap_err();
        assert!(matches!(err, FrameError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn errors_display_without_panicking() {
        let msgs = [
            FrameError::NotAFrame { addr: 3, word: 9 }.to_string(),
            FrameError::OutOfBounds { addr: 3, argc: 8 }.to_string(),
            FrameError::UnknownCapsule {
                addr: 3,
                capsule_id: 0x55,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
