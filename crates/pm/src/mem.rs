//! The shared persistent memory.
//!
//! A flat array of 64-bit words, grouped into blocks of `B` words. All
//! accesses are sequentially consistent, matching the model's assumption
//! that "all instructions involving the persistent memory are sequentially
//! consistent". The structure itself is *uncosted and fault-free*: cost
//! accounting and fault injection happen in [`crate::ProcCtx`], the only
//! path the runtime uses. Direct access here is for machine setup, test
//! oracles, and result extraction.
//!
//! Where the words physically live is a [`MemBackend`] decision:
//! [`PersistentMemory::new`] keeps the original in-process atomics
//! ([`crate::backend::VolatileBackend`]), while
//! [`PersistentMemory::with_backend`] accepts any backend — notably the
//! file-mapped [`crate::backend::MmapBackend`], whose words survive the
//! death of the process and make [`PersistentMemory::flush`] a real
//! durability boundary.
//!
//! Two conditional-update primitives are provided, mirroring §5:
//!
//! * [`PersistentMemory::cam`] — **compare-and-modify**: a CAS whose result
//!   is *not observable* by the caller (the method returns `()`), which is
//!   the primitive that remains safe under faults.
//! * [`PersistentMemory::cas_unsafe_under_faults`] — a full CAS returning
//!   success. The paper shows this is **not** safe to use in a faulting
//!   capsule (the local result is lost on restart and cannot be
//!   reconstructed); it exists only so the non-fault-tolerant ABP baseline
//!   scheduler can be implemented for comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::{MemBackend, VolatileBackend};
use crate::dirty::{DirtyTracker, PAGE_WORDS};
use crate::word::{Addr, Word};

/// An observer invoked on every *applied* mutation of a watched word:
/// `(addr, previous value, new value)`. Used by experiments (e.g. the
/// Figure 4 entry-state transition matrix) and debugging; it sits outside
/// the model and does not affect cost or semantics.
pub type WriteObserver = Arc<dyn Fn(Addr, Word, Word) + Send + Sync>;

/// Dirty runs separated by at most this many clean pages are flushed as
/// one range: an `msync` syscall's fixed cost exceeds the kernel's cost
/// of skipping the clean pages in between.
pub const COALESCE_GAP_PAGES: usize = 32;

/// Most runs an incremental flush will issue as separate syscalls before
/// degrading to one whole-mapping flush.
pub const MAX_DIRTY_RUNS: usize = 8;

/// Merges word runs whose gaps are at most `gap_words` (input runs are
/// sorted and disjoint, as produced by [`DirtyTracker::drain`]).
fn coalesce(runs: Vec<crate::dirty::PageRun>, gap_words: usize) -> Vec<crate::dirty::PageRun> {
    let mut out: Vec<crate::dirty::PageRun> = Vec::with_capacity(runs.len());
    for (start, len) in runs {
        match out.last_mut() {
            Some((s, l)) if start <= *s + *l + gap_words => *l = start + len - *s,
            _ => out.push((start, len)),
        }
    }
    out
}

/// What an incremental flush synced: how many pages, in how many
/// contiguous runs, and whether it degraded to a full flush (backend
/// without dirty tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyFlush {
    /// Pages synced.
    pub pages: usize,
    /// Contiguous page runs the pages coalesced into.
    pub runs: usize,
    /// Whether the whole mapping was synced instead of tracked pages.
    pub full: bool,
}

/// The shared persistent memory of one Parallel-PM machine.
pub struct PersistentMemory {
    /// Owner of the storage; `words` borrows from it.
    backend: Box<dyn MemBackend>,
    /// Cached pointer to the backend's word slice, so the per-access hot
    /// path pays no dynamic dispatch. [`MemBackend::words`] guarantees the
    /// slice is stable for the backend's lifetime, and the backend lives
    /// exactly as long as `self`.
    words: *const AtomicU64,
    len: usize,
    block_size: usize,
    observer: RwLock<Option<WriteObserver>>,
    /// Page-granular dirty bitmap feeding [`PersistentMemory::flush_dirty`].
    /// Present only when the backend asks for it (durable backends whose
    /// flush cost scales with the synced range); `None` keeps volatile
    /// word traffic free of the extra atomic.
    dirty: Option<DirtyTracker>,
    /// Observability hook: per-run flushed-page counts land here when the
    /// owning machine has wired a registry histogram (see
    /// [`PersistentMemory::set_dirty_histogram`]). Read-locked only on
    /// the flush path, never on word access.
    dirty_hist: RwLock<Option<ppm_obs::Histogram>>,
}

// SAFETY: `words` aliases storage owned by `backend` (kept alive by the
// struct itself), the backend is `Send + Sync`, and all word access goes
// through `&AtomicU64` — so the cached raw pointer adds no thread-safety
// hazard beyond what the backend already guarantees.
unsafe impl Send for PersistentMemory {}
// SAFETY: see the Send justification above.
unsafe impl Sync for PersistentMemory {}

impl std::fmt::Debug for PersistentMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PersistentMemory({} words, B={}, backend={})",
            self.len,
            self.block_size,
            self.backend.kind()
        )
    }
}

impl PersistentMemory {
    /// Allocates `words` zero-initialized in-process words with block size
    /// `block_size` (the [`VolatileBackend`]).
    pub fn new(words: usize, block_size: usize) -> Self {
        Self::with_backend(Box::new(VolatileBackend::new(words)), block_size)
    }

    /// Wraps an arbitrary storage backend.
    pub fn with_backend(backend: Box<dyn MemBackend>, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let slice = backend.words();
        let (words, len) = (slice.as_ptr(), slice.len());
        let dirty = backend
            .wants_dirty_tracking()
            .then(|| DirtyTracker::new(len));
        PersistentMemory {
            backend,
            words,
            len,
            block_size,
            observer: RwLock::new(None),
            dirty,
            dirty_hist: RwLock::new(None),
        }
    }

    /// Wires the histogram that [`PersistentMemory::flush_dirty`] feeds
    /// with the page length of every synced run (the "dirty-run length"
    /// distribution the checkpoint subsystem sizes itself against).
    pub fn set_dirty_histogram(&self, h: ppm_obs::Histogram) {
        *self.dirty_hist.write() = Some(h);
    }

    /// Records synced-run page lengths into the wired histogram, if any.
    fn observe_dirty_runs(&self, page_lens: impl Iterator<Item = usize>) {
        if let Some(h) = &*self.dirty_hist.read() {
            for len in page_lens {
                h.observe(len as u64);
            }
        }
    }

    #[inline]
    fn words(&self) -> &[AtomicU64] {
        // SAFETY: the pointer was taken from the backend's own word slice
        // at construction, is stable (the backend is boxed and never
        // replaced), holds exactly `len` words, and is outlived by the
        // owning backend stored in the same struct.
        unsafe { std::slice::from_raw_parts(self.words, self.len) }
    }

    /// The storage backend.
    pub fn backend(&self) -> &dyn MemBackend {
        &*self.backend
    }

    /// Forces all stored words to stable storage (the backend's durability
    /// boundary — `msync` for file-mapped memory, no-op for volatile).
    /// Also clears the dirty bitmap: a full flush covers every page.
    pub fn flush(&self) -> std::io::Result<()> {
        self.backend.flush()?;
        if let Some(d) = &self.dirty {
            let _ = d.drain();
        }
        Ok(())
    }

    /// Forces only the pages mutated since the last flush to stable
    /// storage, and reports how much work that was. Exact only while the
    /// machine is quiescent (see [`crate::dirty`]); falls back to a full
    /// [`PersistentMemory::flush`] when the backend tracks no dirty
    /// state. On an `msync` error the bitmap is re-marked in full so the
    /// next attempt cannot under-sync.
    ///
    /// Each synced run is one `msync` syscall, whose fixed cost dwarfs
    /// the per-clean-page cost of a larger range — so nearby runs are
    /// coalesced across small gaps, and a pathologically scattered
    /// footprint (more than [`MAX_DIRTY_RUNS`] runs even after
    /// coalescing) degrades to one whole-mapping flush, which is never
    /// slower than that many syscalls.
    pub fn flush_dirty(&self) -> std::io::Result<DirtyFlush> {
        let full_pages = self.len.div_ceil(PAGE_WORDS);
        let Some(d) = &self.dirty else {
            self.flush()?;
            self.observe_dirty_runs(std::iter::once(full_pages));
            return Ok(DirtyFlush {
                pages: full_pages,
                runs: 1,
                full: true,
            });
        };
        let runs = coalesce(d.drain(), COALESCE_GAP_PAGES * PAGE_WORDS);
        if runs.len() > MAX_DIRTY_RUNS {
            if let Err(e) = self.backend.flush() {
                d.mark_all();
                return Err(e);
            }
            self.observe_dirty_runs(std::iter::once(full_pages));
            return Ok(DirtyFlush {
                pages: full_pages,
                runs: 1,
                full: true,
            });
        }
        let pages = runs
            .iter()
            .map(|(_, len)| len.div_ceil(PAGE_WORDS))
            .sum::<usize>();
        if let Err(e) = self.backend.flush_dirty(&runs) {
            d.mark_all();
            return Err(e);
        }
        self.observe_dirty_runs(runs.iter().map(|(_, len)| len.div_ceil(PAGE_WORDS)));
        Ok(DirtyFlush {
            pages,
            runs: runs.len(),
            full: false,
        })
    }

    /// The dirty tracker, when the backend maintains one (diagnostics and
    /// tests; flushing goes through [`PersistentMemory::flush_dirty`]).
    pub fn dirty_tracker(&self) -> Option<&DirtyTracker> {
        self.dirty.as_ref()
    }

    #[inline]
    fn mark_dirty(&self, addr: Addr) {
        if let Some(d) = &self.dirty {
            d.mark(addr);
        }
    }

    /// Installs a write observer (see [`WriteObserver`]). Pass `None` to
    /// remove. Observation is best-effort ordering-wise across addresses,
    /// but per-address it sees every applied mutation exactly once with
    /// the true previous value.
    pub fn set_observer(&self, obs: Option<WriteObserver>) {
        *self.observer.write() = obs;
    }

    #[inline]
    fn observe(&self, addr: Addr, prev: Word, new: Word) {
        if let Some(obs) = self.observer.read().as_ref() {
            obs(addr, prev, new);
        }
    }

    /// Capacity in words (`M_p`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block size `B` in words.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of whole blocks.
    pub fn blocks(&self) -> usize {
        self.len / self.block_size
    }

    /// Sequentially-consistent load of one word.
    #[inline]
    pub fn load(&self, addr: Addr) -> Word {
        self.words()[addr].load(Ordering::SeqCst)
    }

    /// Sequentially-consistent store of one word.
    #[inline]
    pub fn store(&self, addr: Addr, value: Word) {
        let prev = self.words()[addr].swap(value, Ordering::SeqCst);
        self.mark_dirty(addr);
        self.observe(addr, prev, value);
    }

    /// Compare-and-modify (§5): atomically, if the word at `addr` equals
    /// `old`, replace it with `new`. The swap result is deliberately not
    /// returned — a capsule that faults right after a CAS cannot recover
    /// the local result, so any program logic depending on it would not be
    /// idempotent. Success must instead be observed by *reading the
    /// location in a later capsule* (the test-and-set idiom of §5).
    #[inline]
    pub fn cam(&self, addr: Addr, old: Word, new: Word) {
        if self.words()[addr]
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.mark_dirty(addr);
            self.observe(addr, old, new);
        }
    }

    /// Full compare-and-swap returning whether the swap happened.
    ///
    /// **Not safe under faults** (see §5 of the paper and the module docs);
    /// used only by the ABP baseline, which assumes a fault-free machine.
    #[inline]
    pub fn cas_unsafe_under_faults(&self, addr: Addr, old: Word, new: Word) -> bool {
        let ok = self.words()[addr]
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if ok {
            self.mark_dirty(addr);
            self.observe(addr, old, new);
        }
        ok
    }

    /// Atomic fetch-add, used by test oracles and setup code only (the
    /// model's instruction set has no fetch-add; runtime code never calls
    /// this).
    #[inline]
    pub fn fetch_add(&self, addr: Addr, delta: Word) -> Word {
        self.mark_dirty(addr);
        self.words()[addr].fetch_add(delta, Ordering::SeqCst)
    }

    /// Copies the block containing no part of cost accounting: reads
    /// `dst.len()` words starting at `addr` (setup/oracle use).
    pub fn read_range(&self, addr: Addr, dst: &mut [Word]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.load(addr + i);
        }
    }

    /// Writes `src` into consecutive words starting at `addr` (setup/oracle
    /// use; uncosted).
    pub fn write_range(&self, addr: Addr, src: &[Word]) {
        for (i, s) in src.iter().enumerate() {
            self.store(addr + i, *s);
        }
    }

    /// Extracts `len` words starting at `addr` into a `Vec` (oracle use).
    pub fn to_vec(&self, addr: Addr, len: usize) -> Vec<Word> {
        let mut v = vec![0; len];
        self.read_range(addr, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn memory_is_zero_initialized() {
        let m = PersistentMemory::new(64, 8);
        assert_eq!(m.len(), 64);
        assert_eq!(m.blocks(), 8);
        for a in 0..64 {
            assert_eq!(m.load(a), 0);
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let m = PersistentMemory::new(16, 4);
        m.store(3, 0xDEAD_BEEF);
        assert_eq!(m.load(3), 0xDEAD_BEEF);
        assert_eq!(m.load(2), 0);
    }

    #[test]
    fn cam_swaps_only_on_match() {
        let m = PersistentMemory::new(4, 1);
        m.store(0, 10);
        m.cam(0, 10, 20); // matches
        assert_eq!(m.load(0), 20);
        m.cam(0, 10, 30); // stale expectation: no effect
        assert_eq!(m.load(0), 20);
    }

    #[test]
    fn cam_is_idempotent_when_non_reverting() {
        // Re-running a CAM capsule: the second identical CAM fails silently,
        // leaving memory as if it ran once (Theorem 5.2's mechanism).
        let m = PersistentMemory::new(1, 1);
        m.store(0, 0);
        m.cam(0, 0, 7);
        m.cam(0, 0, 7); // restart replays the same CAM
        assert_eq!(m.load(0), 7);
    }

    #[test]
    fn cas_reports_success_and_failure() {
        let m = PersistentMemory::new(1, 1);
        assert!(m.cas_unsafe_under_faults(0, 0, 5));
        assert!(!m.cas_unsafe_under_faults(0, 0, 6));
        assert_eq!(m.load(0), 5);
    }

    #[test]
    fn ranges_round_trip() {
        let m = PersistentMemory::new(32, 8);
        m.write_range(8, &[1, 2, 3, 4]);
        assert_eq!(m.to_vec(8, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.to_vec(12, 2), vec![0, 0]);
    }

    #[test]
    fn concurrent_cams_from_unset_have_exactly_one_winner() {
        // The test-and-set idiom of §5: N threads CAM the same location
        // from UNSET (0) to their id; exactly one must win.
        let m = Arc::new(PersistentMemory::new(1, 1));
        let threads = 8;
        let mut handles = Vec::new();
        for t in 1..=threads {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                m.cam(0, 0, t as Word);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let winner = m.load(0);
        assert!((1..=threads as Word).contains(&winner));
    }

    #[test]
    fn observer_sees_applied_mutations_with_previous_values() {
        use parking_lot::Mutex;
        let m = PersistentMemory::new(4, 1);
        let log: Arc<Mutex<Vec<(Addr, Word, Word)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        m.set_observer(Some(Arc::new(move |a, p, n| log2.lock().push((a, p, n)))));
        m.store(0, 5);
        m.cam(0, 5, 6); // applies
        m.cam(0, 5, 7); // does not apply: unobserved
        assert!(m.cas_unsafe_under_faults(1, 0, 9));
        assert_eq!(
            *log.lock(),
            vec![(0, 0, 5), (0, 5, 6), (1, 0, 9)],
            "only applied mutations observed, with true previous values"
        );
        m.set_observer(None);
        m.store(2, 1);
        assert_eq!(log.lock().len(), 3);
    }

    /// A volatile backend that opts into dirty tracking, for exercising
    /// the marking paths without a file.
    #[derive(Debug)]
    struct TrackingBackend(crate::backend::VolatileBackend);

    impl crate::backend::MemBackend for TrackingBackend {
        fn words(&self) -> &[AtomicU64] {
            self.0.words()
        }
        fn wants_dirty_tracking(&self) -> bool {
            true
        }
        fn kind(&self) -> &'static str {
            "tracking-test"
        }
    }

    fn tracked(words: usize) -> PersistentMemory {
        PersistentMemory::with_backend(
            Box::new(TrackingBackend(crate::backend::VolatileBackend::new(words))),
            8,
        )
    }

    #[test]
    fn mutations_mark_their_pages_dirty() {
        use crate::dirty::PAGE_WORDS;
        let m = tracked(4 * PAGE_WORDS);
        let t = m.dirty_tracker().expect("tracking backend has a tracker");
        assert_eq!(t.dirty_pages(), 0);
        m.store(3, 1); // page 0
        m.cam(PAGE_WORDS + 1, 0, 5); // page 1: applies
        m.cam(PAGE_WORDS + 1, 0, 6); // does not apply: no mark
        m.fetch_add(3 * PAGE_WORDS, 1); // page 3
        assert!(m.cas_unsafe_under_faults(PAGE_WORDS + 2, 0, 9));
        assert_eq!(t.dirty_pages(), 3);
        let flush = m.flush_dirty().unwrap();
        assert_eq!(
            (flush.pages, flush.runs),
            (4, 1),
            "pages 0,1,3 coalesce across the 1-page gap into one 4-page run"
        );
        assert!(!flush.full);
        // Nothing stored since: the next incremental flush is free.
        assert_eq!(m.flush_dirty().unwrap().pages, 0);
    }

    #[test]
    fn write_range_spanning_pages_marks_both() {
        use crate::dirty::PAGE_WORDS;
        let m = tracked(2 * PAGE_WORDS);
        m.write_range(PAGE_WORDS - 1, &[1, 2]);
        assert_eq!(m.dirty_tracker().unwrap().dirty_pages(), 2);
    }

    #[test]
    fn widely_scattered_dirty_pages_degrade_to_one_full_flush() {
        use crate::dirty::PAGE_WORDS;
        // More than MAX_DIRTY_RUNS runs, each isolated by > the coalesce
        // gap: one whole-mapping flush beats that many msync calls.
        let pages = (super::MAX_DIRTY_RUNS + 2) * (super::COALESCE_GAP_PAGES + 2);
        let m = tracked(pages * PAGE_WORDS);
        for r in 0..super::MAX_DIRTY_RUNS + 2 {
            m.store(r * (super::COALESCE_GAP_PAGES + 2) * PAGE_WORDS, 1);
        }
        let flush = m.flush_dirty().unwrap();
        assert!(flush.full);
        assert_eq!(flush.runs, 1);
        assert_eq!(m.dirty_tracker().unwrap().dirty_pages(), 0);
    }

    #[test]
    fn full_flush_clears_the_dirty_bitmap() {
        let m = tracked(1024);
        m.store(0, 1);
        m.flush().unwrap();
        assert_eq!(m.flush_dirty().unwrap().pages, 0);
    }

    #[test]
    fn untracked_backends_fall_back_to_full_flush() {
        let m = PersistentMemory::new(1024, 8);
        assert!(m.dirty_tracker().is_none());
        m.store(0, 1);
        let flush = m.flush_dirty().unwrap();
        assert!(flush.full);
        assert_eq!(flush.pages, 2, "1024 words = 2 pages, all covered");
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let m = Arc::new(PersistentMemory::new(1, 1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.fetch_add(0, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.load(0), 4000);
    }
}
