//! Service-mode persistent state: the durable injector-queue header and
//! the cross-process checkpoint-quiesce words.
//!
//! A *service* run (`ppm-sched`'s `cluster::ClusterBuilder` with
//! `.service(true)`) keeps a cluster's worker shards alive indefinitely,
//! feeding them jobs through a durable MPMC **injector ring** in the
//! ordinary persistent word array. The once-written [`ServiceHeader`]
//! lives in the superblock page beside the lease table (same FNV-1a
//! checksum-last discipline as [`crate::lease`]) and records where the
//! ring and its per-slot frame workspaces sit, so any attaching process
//! finds the queue from the machine file alone.
//!
//! ## Superblock-page real estate
//!
//! The lease slots end at byte 768 and the checkpoint slots begin at
//! 1024; service state fills the gap:
//!
//! ```text
//!   768..832    ServiceHeader (8 checksummed words, coordinator-written)
//!   832..960    per-shard checkpoint-quiesce ACK words (MAX_SHARDS)
//!   960..968    quiesce REQ word (seq << 16 | performer shard)
//!   968..976    quiesce REL word (seq)
//! ```
//!
//! The quiesce words are raw single-writer words, not checksummed
//! records: REQ is written only by the coordinator, ACK\[s\] only by
//! shard `s`, REL only by the performer shard — a torn read of a
//! monotone counter is impossible on aligned atomic words.
//!
//! ## The slot state word
//!
//! Each ring slot's first control word encodes the slot's lifecycle
//! phase, a 16-bit *claim epoch*, and the claimant processor:
//!
//! ```text
//!   bits 61..64  phase (EMPTY → STAGING → PUBLISHED → CLAIMED →
//!                RUNNING → DONE → EMPTY)
//!   bits 32..48  claim epoch (bumped by every rescue/reclaim, so every
//!                transition CAM has a distinct expected value — the
//!                ABA guard of the claim protocol)
//!   bits  0..32  claimant processor (meaningful in CLAIMED/RUNNING)
//! ```
//!
//! A zero word is `⟨EMPTY, epoch 0⟩`, matching the zero-initialized
//! word array, so a fresh ring needs no formatting pass.

use crate::lease::{fnv1a, MAX_SHARDS};
use crate::word::Word;

/// Byte offset of the service header inside the superblock page (right
/// after the last lease slot).
pub const SERVICE_HEADER_OFFSET: usize = 768;

/// Byte offset of the first per-shard quiesce ACK word.
pub const QUIESCE_ACK_OFFSET: usize = 832;

/// Byte offset of the quiesce request word (`seq << 16 | performer`).
pub const QUIESCE_REQ_OFFSET: usize = 960;

/// Byte offset of the quiesce release word (`seq`).
pub const QUIESCE_REL_OFFSET: usize = 968;

/// `b"PPMSVC01"` as a little-endian word: the service-header magic.
pub const SERVICE_MAGIC: u64 = u64::from_le_bytes(*b"PPMSVC01");

const SERVICE_HEADER_WORDS: usize = 8;

/// Control words per injector-ring slot: `state, ticket, entry,
/// checksum` (checksum covers ticket and entry — the persist half of the
/// two-phase submit, verified by pullers before the claim CAM).
pub const SLOT_CTL_WORDS: usize = 4;

/// Words of the injector ring for `slots` slots: one ticket-counter word
/// plus the per-slot control words.
pub const fn ring_words(slots: usize) -> usize {
    1 + slots * SLOT_CTL_WORDS
}

/// Byte offset of shard `s`'s quiesce ACK word.
///
/// # Panics
/// Panics if `s >= MAX_SHARDS`.
pub fn quiesce_ack_offset(s: usize) -> usize {
    assert!(s < MAX_SHARDS, "shard {s} exceeds MAX_SHARDS {MAX_SHARDS}");
    QUIESCE_ACK_OFFSET + s * 8
}

/// Packs a quiesce request word from a sequence number and the shard
/// elected to perform the checkpoint.
pub fn pack_quiesce_req(seq: u64, performer: usize) -> u64 {
    (seq << 16) | performer as u64
}

/// Unpacks a quiesce request word into `(seq, performer)`.
pub fn unpack_quiesce_req(w: u64) -> (u64, usize) {
    (w >> 16, (w & 0xFFFF) as usize)
}

// ====================================================================
// Slot state word
// ====================================================================

/// Lifecycle phase of an injector-ring slot (bits 61..64 of its state
/// word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SlotPhase {
    /// Free for a submitter to stage into.
    Empty = 0,
    /// A submitter won the slot and is writing the job (invisible to
    /// pullers; reclaimed only by quiescent service recovery if the
    /// submitter crashes mid-write).
    Staging = 1,
    /// Fully persisted and visible: pullers may claim.
    Published = 2,
    /// A puller's claim CAM won; the claimant installs the entry frame
    /// next. Rescuable (republished at epoch + 1) if the claimant dies
    /// before reaching `Running`.
    Claimed = 3,
    /// The claimant's entry chain started the job. Completion flows
    /// through the job's done frame; a dead claimant's chain is adopted
    /// through the ordinary Figure 3 steal protocol.
    Running = 4,
    /// The job completed exactly-once (the done frame's CAM). Awaiting
    /// the submitter's reclaim back to `Empty`.
    Done = 5,
}

impl SlotPhase {
    /// Decodes a phase code; `None` for the two unused encodings.
    pub fn from_code(code: u64) -> Option<SlotPhase> {
        match code {
            0 => Some(SlotPhase::Empty),
            1 => Some(SlotPhase::Staging),
            2 => Some(SlotPhase::Published),
            3 => Some(SlotPhase::Claimed),
            4 => Some(SlotPhase::Running),
            5 => Some(SlotPhase::Done),
            _ => None,
        }
    }
}

/// Packs a slot state word from phase, claim epoch, and claimant.
pub fn slot_state(phase: SlotPhase, epoch: u64, claimant: usize) -> Word {
    ((phase as u64) << 61) | ((epoch & 0xFFFF) << 32) | (claimant as u64 & 0xFFFF_FFFF)
}

/// The phase of a slot state word (`None` for corrupt codes).
pub fn slot_phase(w: Word) -> Option<SlotPhase> {
    SlotPhase::from_code(w >> 61)
}

/// The claim epoch of a slot state word.
pub fn slot_epoch(w: Word) -> u64 {
    (w >> 32) & 0xFFFF
}

/// The claimant processor of a slot state word.
pub fn slot_claimant(w: Word) -> usize {
    (w & 0xFFFF_FFFF) as usize
}

/// The checksum word guarding a slot's `(ticket, entry)` pair — the
/// persist half of the two-phase submit.
pub fn slot_checksum(ticket: Word, entry: Word) -> Word {
    fnv1a(&[ticket, entry])
}

// ====================================================================
// Service header
// ====================================================================

/// Accept-state of the service (the header's state word; written only by
/// the coordinator/service handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum ServiceState {
    /// Accepting submissions.
    Accepting = 1,
    /// Draining: no new submissions; in-flight jobs run to completion.
    Draining = 2,
    /// Stopped: workers should exit once their deques empty.
    Stopped = 3,
}

impl ServiceState {
    fn from_word(w: u64) -> Option<ServiceState> {
        match w {
            1 => Some(ServiceState::Accepting),
            2 => Some(ServiceState::Draining),
            3 => Some(ServiceState::Stopped),
            _ => None,
        }
    }
}

/// The once-written description of a service run: where the injector
/// ring and the per-slot frame workspaces live in the word array, plus
/// the service's accept state. Presence of a valid header is what marks
/// a cluster file as a *service* — attaching workers switch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceHeader {
    /// Accept-state of the service.
    pub state: ServiceState,
    /// Ring slots (concurrent in-flight job bound).
    pub slots: u64,
    /// Words per per-slot frame workspace (submitters build job frames
    /// there with slot-exclusive ownership).
    pub job_words: u64,
    /// Word address of the ring (ticket counter + slot control words).
    pub ring_base: u64,
    /// Word address of the first slot workspace.
    pub workspace_base: u64,
}

impl ServiceHeader {
    /// Serializes into [`ServiceHeader::words`] checksummed words.
    pub fn encode(&self) -> [u64; SERVICE_HEADER_WORDS] {
        let mut w = [
            SERVICE_MAGIC,
            self.state as u64,
            self.slots,
            self.job_words,
            self.ring_base,
            self.workspace_base,
            0, // reserved
            0,
        ];
        w[SERVICE_HEADER_WORDS - 1] = fnv1a(&w[..SERVICE_HEADER_WORDS - 1]);
        w
    }

    /// Parses checksummed words; `None` for a blank or torn header.
    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() < SERVICE_HEADER_WORDS || words[0] != SERVICE_MAGIC {
            return None;
        }
        if words[SERVICE_HEADER_WORDS - 1] != fnv1a(&words[..SERVICE_HEADER_WORDS - 1]) {
            return None;
        }
        Some(ServiceHeader {
            state: ServiceState::from_word(words[1])?,
            slots: words[2],
            job_words: words[3],
            ring_base: words[4],
            workspace_base: words[5],
        })
    }

    /// Number of header words (for backends sizing their reads).
    pub const fn words() -> usize {
        SERVICE_HEADER_WORDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_and_rejects_tears() {
        let h = ServiceHeader {
            state: ServiceState::Accepting,
            slots: 32,
            job_words: 64,
            ring_base: 4096,
            workspace_base: 8192,
        };
        let mut w = h.encode();
        assert_eq!(ServiceHeader::decode(&w), Some(h));
        w[4] ^= 1; // tear the ring base
        assert_eq!(ServiceHeader::decode(&w), None);
        assert_eq!(ServiceHeader::decode(&[0u64; SERVICE_HEADER_WORDS]), None);
    }

    #[test]
    fn slot_state_round_trips() {
        for phase in [
            SlotPhase::Empty,
            SlotPhase::Staging,
            SlotPhase::Published,
            SlotPhase::Claimed,
            SlotPhase::Running,
            SlotPhase::Done,
        ] {
            let w = slot_state(phase, 0x1234, 7);
            assert_eq!(slot_phase(w), Some(phase));
            assert_eq!(slot_epoch(w), 0x1234);
            assert_eq!(slot_claimant(w), 7);
        }
        // The zero word is a pristine EMPTY slot.
        assert_eq!(slot_phase(0), Some(SlotPhase::Empty));
        assert_eq!(slot_epoch(0), 0);
    }

    #[test]
    fn distinct_claimants_give_distinct_claim_words() {
        // The claim protocol's no-identical-CAM property: two pullers
        // racing for the same PUBLISHED slot propose different words.
        let a = slot_state(SlotPhase::Claimed, 3, 1);
        let b = slot_state(SlotPhase::Claimed, 3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn service_state_fits_in_superblock_gap() {
        const {
            assert!(SERVICE_HEADER_OFFSET >= 768);
            assert!(SERVICE_HEADER_OFFSET + SERVICE_HEADER_WORDS * 8 <= QUIESCE_ACK_OFFSET);
            assert!(QUIESCE_ACK_OFFSET + MAX_SHARDS * 8 <= QUIESCE_REQ_OFFSET);
            assert!(QUIESCE_REL_OFFSET + 8 <= 1024);
        }
        assert_eq!(quiesce_ack_offset(MAX_SHARDS - 1), 952);
    }

    #[test]
    fn quiesce_req_round_trips() {
        let w = pack_quiesce_req(99, 5);
        assert_eq!(unpack_quiesce_req(w), (99, 5));
    }

    #[test]
    fn slot_checksum_detects_torn_pairs() {
        let c = slot_checksum(7, 4096);
        assert_ne!(c, slot_checksum(8, 4096));
        assert_ne!(c, slot_checksum(7, 4097));
    }
}
