//! RAII guard for temporary machine files.
//!
//! Crash-scenario tests and examples create durable machine files under
//! the system temp directory; before this guard they removed them with an
//! explicit `remove_file` at the end of the happy path, which leaked the
//! file whenever an assertion failed first — reruns and CI workspaces
//! accumulated stale `.ppm` files. [`TempMachineFile`] ties the removal to
//! `Drop`, which runs on panic unwinding too, so failure paths clean up
//! exactly like success paths.
//!
//! The path is unique per process *and* per guard (pid + a process-wide
//! counter), so parallel tests in one binary never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named file path under the temp directory, removed on drop.
///
/// The guard does not create the file — backends do — it only owns the
/// name and the cleanup. Anything already at the path is removed at
/// construction so a retried scenario starts fresh.
#[derive(Debug)]
pub struct TempMachineFile {
    path: PathBuf,
}

impl TempMachineFile {
    /// A fresh path `ppm-<tag>-<pid>-<n>.ppm` in the system temp
    /// directory (or `$PPM_TMPDIR` when set, so CI can keep scenario
    /// files inside the workspace).
    pub fn new(tag: &str) -> Self {
        let dir = std::env::var_os("PPM_TMPDIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("ppm-{tag}-{}-{n}.ppm", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TempMachineFile { path }
    }

    /// The guarded path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AsRef<Path> for TempMachineFile {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempMachineFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_unique_and_removed_on_drop() {
        let (p1, p2) = {
            let a = TempMachineFile::new("guard");
            let b = TempMachineFile::new("guard");
            assert_ne!(a.path(), b.path());
            std::fs::write(a.path(), b"x").unwrap();
            std::fs::write(b.path(), b"y").unwrap();
            (a.path().to_path_buf(), b.path().to_path_buf())
        };
        assert!(!p1.exists(), "dropped guard must remove its file");
        assert!(!p2.exists());
    }

    #[test]
    fn cleanup_runs_on_panic_paths_too() {
        let observed = std::sync::Mutex::new(PathBuf::new());
        let outcome = std::panic::catch_unwind(|| {
            let g = TempMachineFile::new("panicky");
            std::fs::write(g.path(), b"z").unwrap();
            *observed.lock().unwrap() = g.path().to_path_buf();
            panic!("scenario assertion failed");
        });
        assert!(outcome.is_err());
        let path = observed.lock().unwrap().clone();
        assert!(path.file_name().is_some());
        assert!(
            !path.exists(),
            "unwinding through the guard must remove {}",
            path.display()
        );
    }
}
