//! Machine configuration: the `(M, B)` parameters, fault model, and
//! validation mode.

/// How aggressively the substrate checks the paper's correctness conditions
/// at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidateMode {
    /// No dynamic checking; fastest. Used by benchmarks.
    Off,
    /// Record write-after-read conflicts and well-formedness violations in
    /// statistics, but do not panic. Useful for measuring how close a
    /// program is to conflict freedom.
    Record,
    /// Panic on the first write-after-read conflict or well-formedness
    /// violation. The entire test suite runs in this mode; a strict-mode
    /// pass is the dynamic analogue of the paper's Theorem 3.1 hypothesis.
    #[default]
    Strict,
}

/// The fault adversary's parameters.
///
/// The paper assumes the probability of faulting between two consecutive
/// persistent accesses is bounded by `f ≤ 1/2` and that faults are
/// independent. The injector reproduces exactly that: an independent
/// Bernoulli(`fault_prob`) trial at every costed access, per processor,
/// from a deterministic per-processor stream seeded by `seed`.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability `f` of a fault at each persistent-memory access.
    pub fault_prob: f64,
    /// Given that a fault occurs, the probability it is a *hard* fault
    /// (processor never restarts). `0.0` gives the soft-fault-only model.
    pub hard_fault_ratio: f64,
    /// Seed for the deterministic per-processor fault streams.
    pub seed: u64,
    /// Deterministically scheduled hard faults: processor `p` dies at its
    /// `n`-th persistent access. Used by the hard-fault experiments so that
    /// deaths are replayable and can be placed adversarially.
    pub scheduled_hard_faults: Vec<(usize, u64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults at all (the faultless machine used to measure `W` and `D`).
    pub fn none() -> Self {
        FaultConfig {
            fault_prob: 0.0,
            hard_fault_ratio: 0.0,
            seed: 0,
            scheduled_hard_faults: Vec::new(),
        }
    }

    /// Soft faults only, with probability `f` per persistent access.
    pub fn soft(f: f64, seed: u64) -> Self {
        assert!((0.0..=0.5).contains(&f), "the model requires f <= 1/2");
        FaultConfig {
            fault_prob: f,
            hard_fault_ratio: 0.0,
            seed,
            scheduled_hard_faults: Vec::new(),
        }
    }

    /// Soft faults with probability `f`, of which a fraction `hard_ratio`
    /// are hard faults.
    pub fn mixed(f: f64, hard_ratio: f64, seed: u64) -> Self {
        assert!((0.0..=0.5).contains(&f), "the model requires f <= 1/2");
        assert!((0.0..=1.0).contains(&hard_ratio));
        FaultConfig {
            fault_prob: f,
            hard_fault_ratio: hard_ratio,
            seed,
            scheduled_hard_faults: Vec::new(),
        }
    }

    /// Adds a deterministic hard fault: processor `proc` dies at its
    /// `at_access`-th persistent-memory access.
    pub fn with_scheduled_hard_fault(mut self, proc: usize, at_access: u64) -> Self {
        self.scheduled_hard_faults.push((proc, at_access));
        self
    }
}

/// Full machine configuration for a Parallel-PM instance.
#[derive(Debug, Clone)]
pub struct PmConfig {
    /// Number of processors `P`.
    pub procs: usize,
    /// Persistent memory capacity `M_p` in words.
    pub persistent_words: usize,
    /// Ephemeral memory capacity `M` in words (per processor).
    pub ephemeral_words: usize,
    /// Block size `B` in words; every external transfer moves one block.
    pub block_size: usize,
    /// The fault adversary.
    pub fault: FaultConfig,
    /// Dynamic validation mode.
    pub validate: ValidateMode,
}

impl PmConfig {
    /// A small single-processor machine, convenient for unit tests:
    /// `M = 256`, `B = 8`, no faults, strict validation.
    pub fn small_single() -> Self {
        PmConfig {
            procs: 1,
            persistent_words: 1 << 16,
            ephemeral_words: 256,
            block_size: 8,
            fault: FaultConfig::none(),
            validate: ValidateMode::Strict,
        }
    }

    /// A machine with `procs` processors and `words` words of persistent
    /// memory, `M = 4096`, `B = 8`, no faults, strict validation.
    pub fn parallel(procs: usize, words: usize) -> Self {
        PmConfig {
            procs,
            persistent_words: words,
            ephemeral_words: 4096,
            block_size: 8,
            fault: FaultConfig::none(),
            validate: ValidateMode::Strict,
        }
    }

    /// Replaces the fault configuration.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the validation mode.
    pub fn with_validate(mut self, mode: ValidateMode) -> Self {
        self.validate = mode;
        self
    }

    /// Replaces the block size.
    pub fn with_block_size(mut self, b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        self.block_size = b;
        self
    }

    /// Replaces the ephemeral memory size.
    pub fn with_ephemeral_words(mut self, m: usize) -> Self {
        self.ephemeral_words = m;
        self
    }

    /// The paper's constraint `f ≤ 1/(2C)` for maximum capsule work `C`:
    /// returns the largest fault probability this machine should be run at
    /// for a program with the given maximum capsule work.
    pub fn max_safe_fault_prob(max_capsule_work: u64) -> f64 {
        if max_capsule_work == 0 {
            0.5
        } else {
            0.5 / max_capsule_work as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validate_is_strict() {
        assert_eq!(ValidateMode::default(), ValidateMode::Strict);
    }

    #[test]
    fn fault_config_constructors() {
        let none = FaultConfig::none();
        assert_eq!(none.fault_prob, 0.0);
        let soft = FaultConfig::soft(0.1, 42);
        assert_eq!(soft.fault_prob, 0.1);
        assert_eq!(soft.hard_fault_ratio, 0.0);
        let mixed = FaultConfig::mixed(0.1, 0.5, 42);
        assert_eq!(mixed.hard_fault_ratio, 0.5);
    }

    #[test]
    #[should_panic(expected = "f <= 1/2")]
    fn fault_prob_above_half_rejected() {
        let _ = FaultConfig::soft(0.75, 0);
    }

    #[test]
    fn scheduled_hard_faults_accumulate() {
        let cfg = FaultConfig::none()
            .with_scheduled_hard_fault(0, 100)
            .with_scheduled_hard_fault(3, 7);
        assert_eq!(cfg.scheduled_hard_faults, vec![(0, 100), (3, 7)]);
    }

    #[test]
    fn max_safe_fault_prob_matches_paper_constraint() {
        // f <= 1/(2C)
        assert_eq!(PmConfig::max_safe_fault_prob(1), 0.5);
        assert_eq!(PmConfig::max_safe_fault_prob(10), 0.05);
        assert_eq!(PmConfig::max_safe_fault_prob(0), 0.5);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = PmConfig::small_single()
            .with_block_size(16)
            .with_ephemeral_words(512)
            .with_validate(ValidateMode::Off);
        assert_eq!(cfg.block_size, 16);
        assert_eq!(cfg.ephemeral_words, 512);
        assert_eq!(cfg.validate, ValidateMode::Off);
    }
}
