//! Cost accounting for the PM model.
//!
//! The model charges unit cost for each external (persistent-memory) read or
//! write and zero for everything else. Two totals matter:
//!
//! * **faultless work `W`** — transfers assuming no faults. Measured by
//!   running the same seeded computation with `FaultConfig::none()`.
//! * **total work `W_f`** — transfers in an actual run including all
//!   repeated work due to restarts. This is what [`MemStats`] counts.
//!
//! The stats also track capsule-level quantities (the maximum capsule work
//! `C` appears in the scheduler bound `f ≤ 1/(2C)`), fault counts, capsule
//! restarts, and validation violations when running in `Record` mode.
//!
//! All counters are relaxed atomics: they are monotone event counts whose
//! exact interleaving does not matter, and contention on them must not
//! perturb the concurrency being measured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppm_obs::{Histogram, MetricsRegistry};

/// One processor's counters, padded to a cache line: at `P = 8`+ (and in
/// sharded runs, where every worker process hammers its own slice of the
/// shared `Vec`), false sharing between adjacent processors' counters is
/// measurable on the read/write hot path.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct ProcStats {
    /// External reads performed by this processor (including re-runs).
    pub reads: AtomicU64,
    /// External writes performed by this processor (including re-runs).
    pub writes: AtomicU64,
    /// Soft faults suffered.
    pub soft_faults: AtomicU64,
    /// Hard faults suffered (0 or 1).
    pub hard_faults: AtomicU64,
    /// Capsule executions started (first runs + restarts).
    pub capsule_runs: AtomicU64,
    /// Capsule executions that completed (installed a successor).
    pub capsule_completions: AtomicU64,
    /// Highest pool-allocation cursor this processor ever reached — the
    /// peak pool-word footprint (checkpoint GC rolls the *cursor* back,
    /// so the peak is what pool-sizing formulas must cover).
    pub pool_peak: AtomicU64,
    /// Words stored through the write-combining staging path
    /// (`ProcCtx::stage_write`) — the raw side of the coalescing ratio.
    pub staged_words: AtomicU64,
    /// Coalesced whole-block persists charged for staged words at capsule
    /// boundaries (`ProcCtx::flush_staged`) — the batched side. With block
    /// size `B` and perfectly sequential frames this approaches
    /// `staged_words / B`.
    pub staged_persists: AtomicU64,
}

/// Shared, thread-safe statistics for one machine instance.
#[derive(Debug)]
pub struct MemStats {
    per_proc: Vec<ProcStats>,
    /// Maximum capsule work (external transfers in one successful capsule
    /// run) observed anywhere; this is the empirical `C`.
    max_capsule_work: AtomicU64,
    /// Write-after-read conflicts observed (only counted in `Record` mode;
    /// `Strict` panics instead).
    war_conflicts: AtomicU64,
    /// Ephemeral well-formedness violations observed (`Record` mode).
    wellformed_violations: AtomicU64,
    /// Distribution of per-capsule work (external transfers per completed
    /// capsule run) — the shape behind the empirical `C`.
    capsule_work: Histogram,
}

impl MemStats {
    /// Creates zeroed statistics for `procs` processors.
    pub fn new(procs: usize) -> Self {
        MemStats {
            per_proc: (0..procs).map(|_| ProcStats::default()).collect(),
            max_capsule_work: AtomicU64::new(0),
            war_conflicts: AtomicU64::new(0),
            wellformed_violations: AtomicU64::new(0),
            capsule_work: Histogram::new(),
        }
    }

    /// Number of processors being tracked.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Records one external read by `proc`.
    #[inline]
    pub fn record_read(&self, proc: usize) {
        self.per_proc[proc].reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one external write by `proc`.
    #[inline]
    pub fn record_write(&self, proc: usize) {
        self.per_proc[proc].writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a soft fault on `proc`.
    #[inline]
    pub fn record_soft_fault(&self, proc: usize) {
        self.per_proc[proc]
            .soft_faults
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a hard fault on `proc`.
    #[inline]
    pub fn record_hard_fault(&self, proc: usize) {
        self.per_proc[proc]
            .hard_faults
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the start of a capsule execution (first run or restart).
    #[inline]
    pub fn record_capsule_run(&self, proc: usize) {
        self.per_proc[proc]
            .capsule_runs
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed capsule and its work; updates the empirical
    /// maximum capsule work `C`.
    #[inline]
    pub fn record_capsule_completion(&self, proc: usize, capsule_work: u64) {
        self.per_proc[proc]
            .capsule_completions
            .fetch_add(1, Ordering::Relaxed);
        self.max_capsule_work
            .fetch_max(capsule_work, Ordering::Relaxed);
        self.capsule_work.observe(capsule_work);
    }

    /// Records processor `proc`'s pool cursor after an allocation,
    /// keeping the running per-processor peak.
    #[inline]
    pub fn record_pool_cursor(&self, proc: usize, cursor: u64) {
        self.per_proc[proc]
            .pool_peak
            .fetch_max(cursor, Ordering::Relaxed);
    }

    /// Records one word stored through the write-combining staging path.
    #[inline]
    pub fn record_staged_word(&self, proc: usize) {
        self.per_proc[proc]
            .staged_words
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced block persist charged for staged words.
    #[inline]
    pub fn record_staged_persist(&self, proc: usize) {
        self.per_proc[proc]
            .staged_persists
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write-after-read conflict (Record mode only).
    #[inline]
    pub fn record_war_conflict(&self) {
        self.war_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an ephemeral well-formedness violation (Record mode only).
    #[inline]
    pub fn record_wellformed_violation(&self) {
        self.wellformed_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters. (Counters are
    /// independently relaxed; snapshots taken while the machine is quiescent
    /// — the normal case, after a run completes — are exact.)
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot {
            per_proc: Vec::with_capacity(self.per_proc.len()),
            ..StatsSnapshot::default()
        };
        for p in &self.per_proc {
            let ps = ProcSnapshot {
                reads: p.reads.load(Ordering::Relaxed),
                writes: p.writes.load(Ordering::Relaxed),
                soft_faults: p.soft_faults.load(Ordering::Relaxed),
                hard_faults: p.hard_faults.load(Ordering::Relaxed),
                capsule_runs: p.capsule_runs.load(Ordering::Relaxed),
                capsule_completions: p.capsule_completions.load(Ordering::Relaxed),
                pool_peak: p.pool_peak.load(Ordering::Relaxed),
                staged_words: p.staged_words.load(Ordering::Relaxed),
                staged_persists: p.staged_persists.load(Ordering::Relaxed),
            };
            s.total_reads += ps.reads;
            s.total_writes += ps.writes;
            s.soft_faults += ps.soft_faults;
            s.hard_faults += ps.hard_faults;
            s.capsule_runs += ps.capsule_runs;
            s.capsule_completions += ps.capsule_completions;
            s.staged_words += ps.staged_words;
            s.staged_persists += ps.staged_persists;
            s.max_pool_peak = s.max_pool_peak.max(ps.pool_peak);
            s.per_proc.push(ps);
        }
        s.max_capsule_work = self.max_capsule_work.load(Ordering::Relaxed);
        s.war_conflicts = self.war_conflicts.load(Ordering::Relaxed);
        s.wellformed_violations = self.wellformed_violations.load(Ordering::Relaxed);
        s
    }

    /// Registers every counter into `reg` so the scrape surface exports
    /// the model's cost measures live: per-processor series under a
    /// `proc` label, the totals (`W_f` as `ppm_work_total`), the
    /// empirical `C` (`ppm_max_capsule_work`) and its distribution
    /// (`ppm_capsule_work` histogram). Collector closures read the same
    /// relaxed atomics [`MemStats::snapshot`] reads, so registration
    /// adds nothing to the record path.
    pub fn register_into(self: &Arc<Self>, reg: &MetricsRegistry) {
        type Row = (&'static str, fn(&ProcStats) -> &AtomicU64, &'static str);
        let per_proc: &[Row] = &[
            (
                "ppm_reads_total",
                |p| &p.reads,
                "external reads (includes re-runs)",
            ),
            (
                "ppm_writes_total",
                |p| &p.writes,
                "external writes (includes re-runs)",
            ),
            (
                "ppm_soft_faults_total",
                |p| &p.soft_faults,
                "soft faults suffered",
            ),
            (
                "ppm_hard_faults_total",
                |p| &p.hard_faults,
                "hard faults suffered",
            ),
            (
                "ppm_capsule_runs_total",
                |p| &p.capsule_runs,
                "capsule executions started (first runs + restarts)",
            ),
            (
                "ppm_capsule_completions_total",
                |p| &p.capsule_completions,
                "capsule executions that installed a successor",
            ),
            (
                "ppm_staged_words_total",
                |p| &p.staged_words,
                "words stored through the write-combining frame staging path",
            ),
            (
                "ppm_staged_persists_total",
                |p| &p.staged_persists,
                "coalesced block persists charged for staged frame words",
            ),
        ];
        for (name, field, help) in per_proc {
            for p in 0..self.per_proc.len() {
                let stats = self.clone();
                let field = *field;
                reg.counter_fn(name, help, &[("proc", &p.to_string())], move || {
                    field(&stats.per_proc[p]).load(Ordering::Relaxed)
                });
            }
        }
        for p in 0..self.per_proc.len() {
            let stats = self.clone();
            reg.gauge_fn(
                "ppm_pool_peak_words",
                "peak frame-pool allocation cursor (words)",
                &[("proc", &p.to_string())],
                move || stats.per_proc[p].pool_peak.load(Ordering::Relaxed) as f64,
            );
        }
        let stats = self.clone();
        reg.counter_fn(
            "ppm_work_total",
            "total external transfers: the model's total work W_f",
            &[],
            move || {
                stats
                    .per_proc
                    .iter()
                    .map(|p| p.reads.load(Ordering::Relaxed) + p.writes.load(Ordering::Relaxed))
                    .sum()
            },
        );
        let stats = self.clone();
        reg.gauge_fn(
            "ppm_frame_coalesce_ratio",
            "coalesced block persists over raw staged words (1.0 = no write combining, 1/B = perfect)",
            &[],
            move || {
                let (mut words, mut persists) = (0u64, 0u64);
                for p in &stats.per_proc {
                    words += p.staged_words.load(Ordering::Relaxed);
                    persists += p.staged_persists.load(Ordering::Relaxed);
                }
                if words == 0 {
                    0.0
                } else {
                    persists as f64 / words as f64
                }
            },
        );
        let stats = self.clone();
        reg.gauge_fn(
            "ppm_max_capsule_work",
            "empirical maximum capsule work C (transfers in one capsule run)",
            &[],
            move || stats.max_capsule_work.load(Ordering::Relaxed) as f64,
        );
        let stats = self.clone();
        reg.counter_fn(
            "ppm_war_conflicts_total",
            "write-after-read conflicts observed (Record mode)",
            &[],
            move || stats.war_conflicts.load(Ordering::Relaxed),
        );
        let stats = self.clone();
        reg.counter_fn(
            "ppm_wellformed_violations_total",
            "ephemeral well-formedness violations observed (Record mode)",
            &[],
            move || stats.wellformed_violations.load(Ordering::Relaxed),
        );
        reg.register_histogram(
            "ppm_capsule_work",
            "distribution of external transfers per completed capsule run",
            &[],
            self.capsule_work.clone(),
        );
    }
}

/// Point-in-time copy of one processor's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcSnapshot {
    /// External reads.
    pub reads: u64,
    /// External writes.
    pub writes: u64,
    /// Soft faults.
    pub soft_faults: u64,
    /// Hard faults.
    pub hard_faults: u64,
    /// Capsule runs started.
    pub capsule_runs: u64,
    /// Capsule runs completed.
    pub capsule_completions: u64,
    /// Peak pool-allocation cursor (words).
    pub pool_peak: u64,
    /// Words stored through the write-combining staging path.
    pub staged_words: u64,
    /// Coalesced block persists charged for staged words.
    pub staged_persists: u64,
}

/// Point-in-time copy of a machine's statistics.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Per-processor counters.
    pub per_proc: Vec<ProcSnapshot>,
    /// Sum of reads over processors.
    pub total_reads: u64,
    /// Sum of writes over processors.
    pub total_writes: u64,
    /// Total soft faults.
    pub soft_faults: u64,
    /// Total hard faults.
    pub hard_faults: u64,
    /// Total capsule runs started (first runs + restarts).
    pub capsule_runs: u64,
    /// Total capsule runs completed.
    pub capsule_completions: u64,
    /// Total words stored through the write-combining staging path.
    pub staged_words: u64,
    /// Total coalesced block persists charged for staged words.
    pub staged_persists: u64,
    /// Empirical maximum capsule work `C`.
    pub max_capsule_work: u64,
    /// Peak pool-allocation cursor over all processors (words) — the
    /// per-processor pool size a re-run of this workload needs.
    pub max_pool_peak: u64,
    /// Write-after-read conflicts observed (Record mode).
    pub war_conflicts: u64,
    /// Well-formedness violations observed (Record mode).
    pub wellformed_violations: u64,
}

impl StatsSnapshot {
    /// Total external transfers: the model's total work `W_f` for this run.
    pub fn total_work(&self) -> u64 {
        self.total_reads + self.total_writes
    }

    /// Total work under the **Asymmetric PM model** of the paper's
    /// footnote 2: external writes cost `omega ≥ 1` times an external
    /// read (the NVM asymmetry the authors' prior work studies). With
    /// `omega = 1` this is [`StatsSnapshot::total_work`].
    pub fn asymmetric_work(&self, omega: u64) -> u64 {
        self.total_reads + omega * self.total_writes
    }

    /// Asymmetric-model time: maximum weighted work over processors.
    pub fn asymmetric_time(&self, omega: u64) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.reads + omega * p.writes)
            .max()
            .unwrap_or(0)
    }

    /// Capsule restarts (runs that did not complete because of a fault).
    pub fn capsule_restarts(&self) -> u64 {
        self.capsule_runs.saturating_sub(self.capsule_completions)
    }

    /// Coalesced block persists over raw staged frame words: 1.0 means the
    /// write-combining buffer achieved nothing, `1/B` is perfect
    /// coalescing. `None` when nothing was staged.
    pub fn frame_coalesce_ratio(&self) -> Option<f64> {
        (self.staged_words > 0).then(|| self.staged_persists as f64 / self.staged_words as f64)
    }

    /// The maximum work done by any one processor — the model's notion of
    /// (total) *time* `T_f` under the unit-cost-transfer accounting.
    pub fn time(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.reads + p.writes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_proc() {
        let s = MemStats::new(2);
        s.record_read(0);
        s.record_read(0);
        s.record_write(1);
        s.record_soft_fault(1);
        let snap = s.snapshot();
        assert_eq!(snap.per_proc[0].reads, 2);
        assert_eq!(snap.per_proc[1].writes, 1);
        assert_eq!(snap.per_proc[1].soft_faults, 1);
        assert_eq!(snap.total_work(), 3);
    }

    #[test]
    fn max_capsule_work_is_a_max() {
        let s = MemStats::new(1);
        s.record_capsule_completion(0, 5);
        s.record_capsule_completion(0, 3);
        s.record_capsule_completion(0, 9);
        assert_eq!(s.snapshot().max_capsule_work, 9);
    }

    #[test]
    fn restarts_are_runs_minus_completions() {
        let s = MemStats::new(1);
        s.record_capsule_run(0);
        s.record_capsule_run(0);
        s.record_capsule_run(0);
        s.record_capsule_completion(0, 1);
        assert_eq!(s.snapshot().capsule_restarts(), 2);
    }

    #[test]
    fn asymmetric_work_weights_writes() {
        let s = MemStats::new(2);
        s.record_read(0);
        s.record_read(0);
        s.record_write(1);
        let snap = s.snapshot();
        assert_eq!(snap.asymmetric_work(1), snap.total_work());
        assert_eq!(snap.asymmetric_work(10), 2 + 10);
        assert_eq!(snap.asymmetric_time(10), 10); // proc 1: one write
    }

    #[test]
    fn time_is_max_over_processors() {
        let s = MemStats::new(3);
        s.record_read(0);
        s.record_read(1);
        s.record_read(1);
        s.record_write(1);
        s.record_write(2);
        let snap = s.snapshot();
        assert_eq!(snap.time(), 3); // proc 1 did 3 transfers
        assert_eq!(snap.total_work(), 5);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = std::sync::Arc::new(MemStats::new(4));
        let mut handles = Vec::new();
        for p in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_read(p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().total_reads, 40_000);
    }
}
