//! Dirty-page tracking for incremental flushes.
//!
//! A durable machine's [`crate::backend::MemBackend::flush`] syncs the
//! *whole* mapping — correct, but wasteful once files grow past a few
//! MiB: a checkpoint that committed a handful of capsules still pays an
//! `msync` over every page. The [`DirtyTracker`] records, at page
//! granularity, which parts of the word array have been mutated since the
//! last drain, so a checkpoint can sync only the touched page runs
//! ([`crate::backend::MemBackend::flush_dirty`]).
//!
//! The tracker is a bitmap of [`PAGE_WORDS`]-word pages (one 4 KiB OS
//! page each, matching the mapping's `msync` granularity) maintained by
//! [`crate::mem::PersistentMemory`]: every applied mutation — costed or
//! uncosted, word or block — marks its page(s) with one relaxed
//! `fetch_or`. Marking is monotone and race-free in the "never lose a
//! page" direction at any time; the *drain* ([`DirtyTracker::drain`])
//! clears bits as it collects them and is therefore exact only while the
//! machine is quiescent (no concurrent stores), which is precisely when
//! checkpoints run — the scheduler parks every processor at a capsule
//! boundary first.
//!
//! The tracker sits outside the model: marking is machine bookkeeping
//! (like statistics), costs no external transfers, and never faults.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::word::Addr;

/// Words per dirty-tracking page: 4096 bytes, the size of one OS page of
/// the mapped word array (and of the superblock page that precedes it).
pub const PAGE_WORDS: usize = 512;

/// A maximal run of consecutive dirty pages: `(first_word, word_len)`,
/// both multiples of [`PAGE_WORDS`] (the final run is clamped to the
/// tracked length).
pub type PageRun = (usize, usize);

/// A page-granular dirty bitmap over a word array.
#[derive(Debug)]
pub struct DirtyTracker {
    /// One bit per page, packed 64 pages per word.
    bits: Vec<AtomicU64>,
    /// Tracked length in words.
    len_words: usize,
    /// Number of whole-or-partial pages covering `len_words`.
    pages: usize,
}

impl DirtyTracker {
    /// A clean tracker over `len_words` words.
    pub fn new(len_words: usize) -> Self {
        let pages = len_words.div_ceil(PAGE_WORDS);
        DirtyTracker {
            bits: (0..pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            len_words,
            pages,
        }
    }

    /// Number of pages tracked.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Marks the page containing `addr` dirty. Out-of-range addresses are
    /// ignored (the store they describe would have panicked first).
    #[inline]
    pub fn mark(&self, addr: Addr) {
        if addr < self.len_words {
            let page = addr / PAGE_WORDS;
            self.bits[page / 64].fetch_or(1 << (page % 64), Ordering::Relaxed);
        }
    }

    /// Marks every page intersecting `[addr, addr + len)` dirty — a store
    /// spanning a page boundary dirties both pages.
    pub fn mark_range(&self, addr: Addr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_WORDS;
        let last = (addr + len - 1) / PAGE_WORDS;
        for page in first..=last.min(self.pages.saturating_sub(1)) {
            self.bits[page / 64].fetch_or(1 << (page % 64), Ordering::Relaxed);
        }
    }

    /// Whether the page containing `addr` is currently marked.
    pub fn is_dirty(&self, addr: Addr) -> bool {
        let page = addr / PAGE_WORDS;
        page < self.pages && self.bits[page / 64].load(Ordering::Relaxed) & (1 << (page % 64)) != 0
    }

    /// Number of pages currently marked.
    pub fn dirty_pages(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Collects all dirty pages as maximal word runs and clears the
    /// bitmap. Exact only under quiescence (see the module docs): a store
    /// racing the drain may land on a page whose bit was just cleared, in
    /// which case that page is simply dirty again for the *next* drain —
    /// but the store itself is not covered by *this* drain's runs, so
    /// callers that need "everything stored so far is in the returned
    /// runs" must quiesce first.
    pub fn drain(&self) -> Vec<PageRun> {
        let mut runs: Vec<PageRun> = Vec::new();
        let mut open: Option<(usize, usize)> = None; // (first_page, pages)
        for page in 0..self.pages {
            let word = &self.bits[page / 64];
            let bit = 1 << (page % 64);
            if word.load(Ordering::Relaxed) & bit != 0 {
                word.fetch_and(!bit, Ordering::Relaxed);
                open = match open {
                    Some((first, pages)) if first + pages == page => Some((first, pages + 1)),
                    other => {
                        if let Some((first, pages)) = other {
                            runs.push(page_run_to_words(first, pages, self.len_words));
                        }
                        Some((page, 1))
                    }
                };
            }
        }
        if let Some((first, pages)) = open {
            runs.push(page_run_to_words(first, pages, self.len_words));
        }
        runs
    }

    /// Marks every page dirty (used when a caller must force the next
    /// incremental flush to cover everything, e.g. after an `msync`
    /// error left coverage unknown).
    pub fn mark_all(&self) {
        for (i, w) in self.bits.iter().enumerate() {
            let pages_in_word = self.pages.saturating_sub(i * 64).min(64);
            if pages_in_word == 0 {
                break;
            }
            let mask = if pages_in_word == 64 {
                u64::MAX
            } else {
                (1u64 << pages_in_word) - 1
            };
            w.fetch_or(mask, Ordering::Relaxed);
        }
    }
}

fn page_run_to_words(first_page: usize, pages: usize, len_words: usize) -> PageRun {
    let start = first_page * PAGE_WORDS;
    let len = (pages * PAGE_WORDS).min(len_words - start);
    (start, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_is_clean() {
        let t = DirtyTracker::new(4 * PAGE_WORDS);
        assert_eq!(t.pages(), 4);
        assert_eq!(t.dirty_pages(), 0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn mark_and_drain_round_trip() {
        let t = DirtyTracker::new(8 * PAGE_WORDS);
        t.mark(0);
        t.mark(3 * PAGE_WORDS + 7);
        assert_eq!(t.dirty_pages(), 2);
        assert!(t.is_dirty(5));
        assert!(!t.is_dirty(PAGE_WORDS));
        let runs = t.drain();
        assert_eq!(
            runs,
            vec![(0, PAGE_WORDS), (3 * PAGE_WORDS, PAGE_WORDS)],
            "two isolated pages, two runs"
        );
        assert_eq!(t.dirty_pages(), 0, "drain clears");
        assert!(t.drain().is_empty());
    }

    #[test]
    fn adjacent_pages_coalesce_into_one_run() {
        let t = DirtyTracker::new(16 * PAGE_WORDS);
        for page in [2usize, 3, 4] {
            t.mark(page * PAGE_WORDS);
        }
        assert_eq!(t.drain(), vec![(2 * PAGE_WORDS, 3 * PAGE_WORDS)]);
    }

    #[test]
    fn range_spanning_a_page_boundary_dirties_both_pages() {
        let t = DirtyTracker::new(4 * PAGE_WORDS);
        // Words [510, 514): last two words of page 0, first two of page 1.
        t.mark_range(PAGE_WORDS - 2, 4);
        assert_eq!(t.dirty_pages(), 2);
        assert_eq!(t.drain(), vec![(0, 2 * PAGE_WORDS)]);
    }

    #[test]
    fn partial_final_page_is_clamped() {
        let t = DirtyTracker::new(PAGE_WORDS + 100);
        assert_eq!(t.pages(), 2);
        t.mark(PAGE_WORDS + 99);
        assert_eq!(t.drain(), vec![(PAGE_WORDS, 100)]);
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let t = DirtyTracker::new(PAGE_WORDS);
        t.mark(PAGE_WORDS + 5);
        t.mark_range(PAGE_WORDS * 3, 10);
        assert_eq!(t.dirty_pages(), 0);
    }

    #[test]
    fn mark_all_covers_exactly_the_tracked_pages() {
        let t = DirtyTracker::new(70 * PAGE_WORDS); // crosses one bitmap word
        t.mark_all();
        assert_eq!(t.dirty_pages(), 70);
        let runs = t.drain();
        assert_eq!(runs, vec![(0, 70 * PAGE_WORDS)]);
    }

    #[test]
    fn zero_length_range_marks_nothing() {
        let t = DirtyTracker::new(4 * PAGE_WORDS);
        t.mark_range(100, 0);
        assert_eq!(t.dirty_pages(), 0);
    }

    #[test]
    fn concurrent_marks_never_lose_pages() {
        use std::sync::Arc;
        let t = Arc::new(DirtyTracker::new(64 * PAGE_WORDS));
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for page in (k..64).step_by(4) {
                        t.mark(page * PAGE_WORDS + k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.dirty_pages(), 64);
        assert_eq!(t.drain(), vec![(0, 64 * PAGE_WORDS)]);
    }
}
