//! Fault signalling.
//!
//! A fault in the PM model is not an error in the program being run — it is
//! an event of the machine. The substrate models it as an `Err(Fault)`
//! propagated out of the running capsule body; the capsule engine in
//! `ppm-core` catches it and either re-runs the capsule from its beginning
//! (soft fault: all ephemeral state is discarded, exactly the model's
//! restart-from-restart-pointer semantics) or marks the processor dead
//! (hard fault).

use std::fmt;

/// A processor fault, injected between two persistent-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The processor loses all ephemeral memory and registers and restarts
    /// from the restart pointer (the beginning of the active capsule).
    Soft,
    /// The processor dies and never restarts. Other processors observe this
    /// through the liveness oracle and may steal its in-progress thread.
    Hard,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Soft => write!(f, "soft fault (processor restarts)"),
            Fault::Hard => write!(f, "hard fault (processor dead)"),
        }
    }
}

/// Result of any costed persistent-memory operation: the operation either
/// completed, or the processor faulted before performing it.
pub type PmResult<T> = Result<T, Fault>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Fault::Soft.to_string().contains("soft"));
        assert!(Fault::Hard.to_string().contains("hard"));
    }

    #[test]
    fn fault_is_small_and_copyable() {
        // Fault is threaded through every memory access; keep it tiny.
        assert_eq!(std::mem::size_of::<Fault>(), 1);
        let f = Fault::Soft;
        let g = f; // Copy
        assert_eq!(f, g);
    }
}
