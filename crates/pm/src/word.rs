//! Fundamental units of the persistent memory: words and addresses.
//!
//! The PM model assumes words of `Θ(log M_p)` bits; we use 64-bit words,
//! which comfortably index any memory we can simulate. Addresses are word
//! indices into the persistent memory; a *block* is `B` consecutive words
//! starting at a multiple of `B`, matching the `(M, B)` external-memory
//! conventions the model inherits.

/// A persistent-memory word. All data, tags, pointers (continuation handles)
/// and packed deque entries are stored as `Word`s.
pub type Word = u64;

/// A word address: an index into the persistent memory's word array.
pub type Addr = usize;

/// Returns the block index containing word address `addr` for block size `b`.
///
/// Cost accounting charges one external transfer per *block*, so two word
/// accesses within the same block during one transfer would cost one unit;
/// the substrate conservatively charges per access, which only over-counts
/// by a constant factor (the bounds in the paper are asymptotic).
#[inline]
pub fn block_of(addr: Addr, b: usize) -> usize {
    debug_assert!(b > 0, "block size must be positive");
    addr / b
}

/// Returns the first word address of block `block` for block size `b`.
#[inline]
pub fn block_start(block: usize, b: usize) -> Addr {
    block * b
}

/// Rounds `n` up to the next multiple of the block size `b`.
#[inline]
pub fn round_up_to_block(n: usize, b: usize) -> usize {
    debug_assert!(b > 0, "block size must be positive");
    n.div_ceil(b) * b
}

/// Interprets a word as a signed 64-bit integer (two's complement).
///
/// The RAM and EM virtual machines in `ppm-sim` use signed arithmetic; the
/// persistent memory itself is typeless.
#[inline]
pub fn as_i64(w: Word) -> i64 {
    w as i64
}

/// Interprets a signed 64-bit integer as a word (two's complement).
#[inline]
pub fn from_i64(v: i64) -> Word {
    v as Word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_maps_addresses_to_blocks() {
        assert_eq!(block_of(0, 8), 0);
        assert_eq!(block_of(7, 8), 0);
        assert_eq!(block_of(8, 8), 1);
        assert_eq!(block_of(63, 8), 7);
    }

    #[test]
    fn block_start_is_inverse_of_block_of_on_boundaries() {
        for b in [1usize, 2, 8, 64] {
            for blk in [0usize, 1, 5, 100] {
                assert_eq!(block_of(block_start(blk, b), b), blk);
            }
        }
    }

    #[test]
    fn round_up_covers_partial_blocks() {
        assert_eq!(round_up_to_block(0, 8), 0);
        assert_eq!(round_up_to_block(1, 8), 8);
        assert_eq!(round_up_to_block(8, 8), 8);
        assert_eq!(round_up_to_block(9, 8), 16);
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, -123456789] {
            assert_eq!(as_i64(from_i64(v)), v);
        }
    }
}
