//! # `ppm-pm` — the Persistent Memory substrate
//!
//! This crate implements the memory system of the *Parallel Persistent
//! Memory* (Parallel-PM) model of Blelloch, Gibbons, Gu, McGuffey and Shun
//! (SPAA 2018): a large, slow, **persistent** memory of 64-bit words grouped
//! into blocks of `B` words, shared by `P` processors that each own a small,
//! fast, **ephemeral** memory of `M` words. Processors may *fault* between
//! any two persistent-memory accesses; on a *soft* fault all processor state
//! and ephemeral memory is lost but persistent memory survives, and on a
//! *hard* fault the processor never restarts.
//!
//! The crate provides:
//!
//! * [`mem::PersistentMemory`] — the shared word/block store, backed by
//!   sequentially-consistent atomics, with `CAM` (compare-and-modify, the
//!   fault-safe primitive of §5 of the paper) and `CAS` (provided only for
//!   the non-fault-tolerant ABP baseline).
//! * [`backend`] — where the words physically live: the in-process
//!   [`backend::VolatileBackend`] (simulated persistence, the default) or
//!   the file-mapped [`backend::MmapBackend`], which puts the word array
//!   behind a `MAP_SHARED` mapping with a versioned superblock so that
//!   "persistent" survives real `kill -9` process deaths, with
//!   [`mem::PersistentMemory::flush`] (`msync`) as the machine-failure
//!   durability boundary.
//! * [`fault::FaultInjector`] — a deterministic, seedable adversary that
//!   faults each processor with probability ≤ `f` at every persistent access
//!   and can schedule hard faults, plus the liveness oracle
//!   `isLive(procId)` of §6.
//! * [`proc::ProcCtx`] — the per-processor access handle through which *all*
//!   costed external reads/writes flow; it charges unit cost per block
//!   transfer, consults the fault injector, and feeds the validators.
//! * [`stats::MemStats`] — cost accounting for the model's measures: total
//!   (fault-tolerant) work `W_f`, faultless work `W` (measured with `f = 0`),
//!   per-processor breakdowns, capsule-work tracking, fault counts.
//! * [`validate`] — dynamic checkers for the paper's correctness
//!   conditions: write-after-read conflict freedom within a capsule (§3) and
//!   well-formedness of ephemeral accesses after restarts.
//! * [`layout`] — a tiny region allocator for carving the persistent address
//!   space into scheduler state, per-processor pools, and user arrays.
//!
//! Everything is deterministic given a seed, so every experiment in the
//! reproduction is replayable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod clock;
pub mod config;
pub mod dirty;
pub mod error;
pub mod fault;
pub mod frame;
pub mod layout;
pub mod lease;
pub mod mem;
pub mod proc;
pub mod service;
pub mod stats;
pub mod tempfile;
pub mod validate;
pub mod word;

#[cfg(unix)]
pub use backend::MmapBackend;
pub use backend::{CheckpointRecord, MemBackend, Superblock, VolatileBackend, SUPERBLOCK_BYTES};
pub use clock::{system_clock, Clock, SharedClock, SystemClock, VirtualClock};
pub use config::{FaultConfig, PmConfig, ValidateMode};
pub use dirty::{DirtyTracker, PageRun, PAGE_WORDS};
pub use error::{Fault, PmResult};
pub use fault::{FaultInjector, HeartbeatLiveness, Liveness};
pub use frame::{
    frame_words, is_frame_at, read_frame, store_frame, write_frame, Frame, FrameError, FRAME_MAGIC,
    MAX_FRAME_ARGS,
};
pub use layout::{LayoutBuilder, Region};
pub use lease::{now_ms, ClusterHeader, Lease, LeaseState, ShardMap, MAX_SHARDS};
pub use mem::{DirtyFlush, PersistentMemory};
pub use proc::ProcCtx;
pub use service::{ServiceHeader, ServiceState, SlotPhase};
pub use stats::{MemStats, StatsSnapshot};
pub use tempfile::TempMachineFile;
pub use word::{Addr, Word};
