//! Cluster leases: the cross-process liveness oracle's persistent state.
//!
//! A sharded runtime (`ppm-sched`'s `cluster` module) attaches several
//! worker OS processes to one durable machine file, each driving a
//! disjoint group of model processors — an independent *fault domain*.
//! The paper's liveness oracle `isLive(procId)` (§2, §6.3) must then work
//! *across process boundaries*: a surviving worker has to detect that a
//! sibling process died (SIGKILL, OOM, machine partition) so it can adopt
//! the dead shard's deque frontier through the ordinary hard-fault steal
//! path.
//!
//! The oracle's persistent state lives in the superblock page of the
//! machine file, between the superblock proper and the checkpoint slots:
//!
//! * a [`ClusterHeader`] (written once by the coordinator) recording the
//!   shard geometry and the scheduler shape every attacher must replay
//!   (deque slots, victim seed, lease interval), and
//! * one [`Lease`] slot per shard — exactly the §6.3 heartbeat
//!   construction ("each process updates its counter after a constant
//!   number of steps; if the time since a counter has last updated passes
//!   some threshold, the process is considered dead"), made durable and
//!   cross-process: the owning worker rewrites its slot with a bumped
//!   sequence number and a fresh deadline every few hundred
//!   milliseconds; any reader whose clock passes the deadline (or who
//!   finds a [`LeaseState::Dead`] tombstone written by the coordinator's
//!   `waitpid` observer) declares the shard dead.
//!
//! Both records are word arrays guarded by an FNV-1a checksum, written
//! through aligned atomic stores — a reader that races a rewrite (or a
//! crash mid-write) sees a checksum mismatch and keeps its previous view,
//! the same torn-write discipline as [`super::backend::superblock::CheckpointRecord`].

use crate::word::Word;

/// Byte offset of the cluster header inside the superblock page. The
/// superblock proper uses the first 80 bytes; the checkpoint slots start
/// at 1024.
pub const CLUSTER_HEADER_OFFSET: usize = 128;

/// Byte offset of the first lease slot.
pub const LEASE_SLOT_OFFSET: usize = 256;

/// Words per lease slot (`state, seq, deadline_ms, checksum`).
pub const LEASE_SLOT_WORDS: usize = 4;

/// Maximum worker shards a machine file can carry leases for. Bounded by
/// the superblock page real estate between the header and the first
/// checkpoint slot: `256 + 16 * 32 = 768 <= 1024`.
pub const MAX_SHARDS: usize = 16;

/// `b"PPMCLST1"` as a little-endian word: the cluster-header magic.
pub const CLUSTER_MAGIC: u64 = u64::from_le_bytes(*b"PPMCLST1");

const HEADER_WORDS: usize = 6; // magic, shards, lease_ms, deque_slots, seed, checksum

pub(crate) fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Milliseconds since the unix epoch — the shared clock of the lease
/// protocol. All workers of a cluster run on one machine (they share a
/// `MAP_SHARED` mapping), so wall-clock comparisons across processes are
/// meaningful; skew between readers only widens or narrows the grace
/// period, never breaks safety (a false "dead" verdict makes survivors
/// adopt a live shard's entries through the same CAM-guarded steal path
/// the model already proves safe for hard-faulted processors).
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The once-written description of a sharded run: geometry plus the
/// scheduler shape every attaching process must rebuild identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterHeader {
    /// Number of worker shards (process groups).
    pub shards: u64,
    /// Lease validity window in milliseconds; the owning worker renews
    /// well inside it.
    pub lease_ms: u64,
    /// Deque slots per processor (determines the deque region layout, so
    /// it must be identical in every attacher).
    pub deque_slots: u64,
    /// Victim-selection seed of the schedulers.
    pub seed: u64,
}

impl ClusterHeader {
    /// Serializes into [`ClusterHeader::words`] checksummed words.
    pub fn encode(&self) -> [u64; HEADER_WORDS] {
        let mut w = [
            CLUSTER_MAGIC,
            self.shards,
            self.lease_ms,
            self.deque_slots,
            self.seed,
            0,
        ];
        w[HEADER_WORDS - 1] = fnv1a(&w[..HEADER_WORDS - 1]);
        w
    }

    /// Parses checksummed words; `None` for a blank or torn header.
    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() < HEADER_WORDS || words[0] != CLUSTER_MAGIC {
            return None;
        }
        if words[HEADER_WORDS - 1] != fnv1a(&words[..HEADER_WORDS - 1]) {
            return None;
        }
        Some(ClusterHeader {
            shards: words[1],
            lease_ms: words[2],
            deque_slots: words[3],
            seed: words[4],
        })
    }

    /// Number of header words (for backends sizing their reads).
    pub const fn words() -> usize {
        HEADER_WORDS
    }
}

/// A lease slot's state word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// The worker is (or claims to be) running; dead once `deadline_ms`
    /// passes without a renewal.
    Alive = 1,
    /// The worker exited deliberately after the computation completed.
    Done = 2,
    /// Tombstone: an observer (typically the coordinator reaping the
    /// worker's exit status) recorded the worker as dead. Overrides any
    /// deadline — survivors adopt immediately instead of waiting out the
    /// lease.
    Dead = 3,
}

impl LeaseState {
    fn from_word(w: u64) -> Option<LeaseState> {
        match w {
            1 => Some(LeaseState::Alive),
            2 => Some(LeaseState::Done),
            3 => Some(LeaseState::Dead),
            _ => None,
        }
    }
}

/// One shard's heartbeat record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Liveness state of the owning worker.
    pub state: LeaseState,
    /// Renewal counter (monotone per shard; diagnostic).
    pub seq: u64,
    /// Epoch-milliseconds after which an [`LeaseState::Alive`] lease is
    /// expired.
    pub deadline_ms: u64,
}

impl Lease {
    /// A fresh alive lease valid until `now_ms() + validity_ms` on the
    /// system clock. Clock-threaded callers use [`Lease::alive_at`].
    pub fn alive(seq: u64, validity_ms: u64) -> Self {
        Self::alive_at(seq, validity_ms, now_ms())
    }

    /// A fresh alive lease valid until `now_ms + validity_ms`, with the
    /// current time supplied by the caller's [`crate::Clock`] so lease
    /// renewal is testable on a virtual timeline.
    pub fn alive_at(seq: u64, validity_ms: u64, now_ms: u64) -> Self {
        Lease {
            state: LeaseState::Alive,
            seq,
            deadline_ms: now_ms.saturating_add(validity_ms),
        }
    }

    /// Whether this lease currently certifies the worker dead: a
    /// tombstone, or an alive lease whose deadline has passed.
    pub fn is_dead(&self, now_ms: u64) -> bool {
        match self.state {
            LeaseState::Dead => true,
            LeaseState::Alive => now_ms > self.deadline_ms,
            LeaseState::Done => false,
        }
    }

    /// Serializes into [`LEASE_SLOT_WORDS`] checksummed words.
    pub fn encode(&self) -> [u64; LEASE_SLOT_WORDS] {
        let mut w = [self.state as u64, self.seq, self.deadline_ms, 0];
        w[LEASE_SLOT_WORDS - 1] = fnv1a(&w[..LEASE_SLOT_WORDS - 1]);
        w
    }

    /// Parses checksummed words; `None` for a blank slot or a torn write
    /// (the reader keeps its previous view in that case).
    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() < LEASE_SLOT_WORDS {
            return None;
        }
        if words[LEASE_SLOT_WORDS - 1] != fnv1a(&words[..LEASE_SLOT_WORDS - 1]) {
            return None;
        }
        Some(Lease {
            state: LeaseState::from_word(words[0])?,
            seq: words[1],
            deadline_ms: words[2],
        })
    }
}

/// Byte offset of shard `s`'s lease slot inside the superblock page.
///
/// # Panics
/// Panics if `s >= MAX_SHARDS`.
pub fn lease_slot_offset(s: usize) -> usize {
    assert!(s < MAX_SHARDS, "shard {s} exceeds MAX_SHARDS {MAX_SHARDS}");
    LEASE_SLOT_OFFSET + s * LEASE_SLOT_WORDS * 8
}

/// The static partition of a machine's processors into per-process-group
/// arenas: shard `s` owns the contiguous processor range
/// `[s * procs_per_shard, (s + 1) * procs_per_shard)`, and with it every
/// per-processor region of the deterministic layout — metadata block,
/// frame pool, WS-deque. Carving by *processor* is what makes the address
/// space carve cleanly by *shard*: all shard-owned state is disjoint by
/// the layout's block alignment, so worker processes never contend on
/// machine-owned words outside the steal protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards.
    pub shards: usize,
    /// Processors per shard.
    pub procs_per_shard: usize,
}

impl ShardMap {
    /// Partitions `total_procs` processors into `shards` equal groups.
    ///
    /// # Panics
    /// Panics when the partition is degenerate: zero shards, more than
    /// [`MAX_SHARDS`], or a processor count not divisible by the shard
    /// count.
    pub fn new(total_procs: usize, shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        assert!(shards <= MAX_SHARDS, "at most {MAX_SHARDS} shards");
        assert!(
            total_procs.is_multiple_of(shards) && total_procs > 0,
            "{total_procs} processors do not split evenly into {shards} shards"
        );
        ShardMap {
            shards,
            procs_per_shard: total_procs / shards,
        }
    }

    /// Total processors across all shards.
    pub fn procs(&self) -> usize {
        self.shards * self.procs_per_shard
    }

    /// The shard owning processor `proc`.
    pub fn shard_of(&self, proc: usize) -> usize {
        assert!(proc < self.procs());
        proc / self.procs_per_shard
    }

    /// The processor range of shard `s`.
    pub fn procs_of(&self, s: usize) -> std::ops::Range<usize> {
        assert!(s < self.shards);
        s * self.procs_per_shard..(s + 1) * self.procs_per_shard
    }
}

/// A word as [`Word`] (re-export convenience so lease code reads
/// uniformly with the rest of the crate).
pub type LeaseWord = Word;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_and_rejects_tears() {
        let h = ClusterHeader {
            shards: 4,
            lease_ms: 800,
            deque_slots: 1 << 14,
            seed: 0x5EED,
        };
        let mut w = h.encode();
        assert_eq!(ClusterHeader::decode(&w), Some(h));
        w[2] ^= 1; // tear the lease interval
        assert_eq!(ClusterHeader::decode(&w), None);
        assert_eq!(ClusterHeader::decode(&[0u64; HEADER_WORDS]), None);
    }

    #[test]
    fn lease_round_trips_and_rejects_tears() {
        let l = Lease {
            state: LeaseState::Alive,
            seq: 41,
            deadline_ms: 123_456,
        };
        let mut w = l.encode();
        assert_eq!(Lease::decode(&w), Some(l));
        w[1] ^= 0x10;
        assert_eq!(Lease::decode(&w), None, "torn lease must not decode");
        assert_eq!(Lease::decode(&[0u64; LEASE_SLOT_WORDS]), None);
    }

    #[test]
    fn expiry_and_tombstone_semantics() {
        let now = now_ms();
        let live = Lease::alive(1, 10_000);
        assert!(!live.is_dead(now));
        assert!(live.is_dead(live.deadline_ms + 1));
        let tomb = Lease {
            state: LeaseState::Dead,
            seq: 2,
            deadline_ms: u64::MAX,
        };
        assert!(tomb.is_dead(now), "tombstones override any deadline");
        let done = Lease {
            state: LeaseState::Done,
            seq: 3,
            deadline_ms: 0,
        };
        assert!(!done.is_dead(now), "a completed worker is not adoptable");
    }

    #[test]
    fn slots_fit_between_header_and_checkpoint_slots() {
        const {
            assert!(CLUSTER_HEADER_OFFSET >= 80);
            assert!(CLUSTER_HEADER_OFFSET + HEADER_WORDS * 8 <= LEASE_SLOT_OFFSET);
        }
        let last_end = lease_slot_offset(MAX_SHARDS - 1) + LEASE_SLOT_WORDS * 8;
        assert!(
            last_end <= 1024,
            "lease slots must end before the first checkpoint slot (got {last_end})"
        );
    }

    #[test]
    fn shard_map_partitions_procs() {
        let m = ShardMap::new(8, 4);
        assert_eq!(m.procs_per_shard, 2);
        assert_eq!(m.procs(), 8);
        assert_eq!(m.procs_of(0), 0..2);
        assert_eq!(m.procs_of(3), 6..8);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(5), 2);
        assert_eq!(m.shard_of(7), 3);
    }

    #[test]
    #[should_panic(expected = "do not split evenly")]
    fn uneven_partition_rejected() {
        let _ = ShardMap::new(7, 4);
    }
}
