//! Carving the persistent address space.
//!
//! A Parallel-PM machine's persistent memory holds several logically
//! distinct structures: the scheduler's per-processor deques and restart
//! pointers, per-processor allocation pools (§4.1), and the user's data
//! arrays. [`LayoutBuilder`] hands out non-overlapping [`Region`]s from the
//! front of the address space, block-aligned so that block transfers of one
//! region can never touch another (which would create spurious
//! write-after-read conflicts at block granularity).

use crate::word::{round_up_to_block, Addr};

/// A contiguous, exclusively-owned range of persistent words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First word address of the region.
    pub start: Addr,
    /// Length in words.
    pub len: usize,
}

impl Region {
    /// Address of the `i`-th word of the region (bounds-checked in debug).
    #[inline]
    pub fn at(&self, i: usize) -> Addr {
        debug_assert!(i < self.len, "region index {i} out of bounds {}", self.len);
        self.start + i
    }

    /// Address of the `i`-th word as a *cursor* position: unlike
    /// [`Region::at`], `i == len` is allowed. A scatter destination for
    /// an empty run legitimately sits one past the end (every element
    /// landed in earlier buckets); nothing is ever read or written
    /// through the saturated cursor.
    #[inline]
    pub fn cursor(&self, i: usize) -> Addr {
        debug_assert!(
            i <= self.len,
            "region cursor {i} out of bounds {}",
            self.len
        );
        self.start + i
    }

    /// One-past-the-end address.
    #[inline]
    pub fn end(&self) -> Addr {
        self.start + self.len
    }

    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Splits the region into `n` equal consecutive sub-regions (the
    /// remainder, if any, is left unused at the tail).
    pub fn split(&self, n: usize) -> Vec<Region> {
        assert!(n > 0);
        let each = self.len / n;
        (0..n)
            .map(|i| Region {
                start: self.start + i * each,
                len: each,
            })
            .collect()
    }
}

/// Sequential allocator over a persistent memory's address space. Used at
/// machine-construction time only; runtime allocation goes through the
/// restart-stable per-processor pools in `ppm-core`.
#[derive(Debug)]
pub struct LayoutBuilder {
    next: Addr,
    capacity: usize,
    block_size: usize,
}

impl LayoutBuilder {
    /// Starts carving an address space of `capacity` words with block size
    /// `block_size`.
    pub fn new(capacity: usize, block_size: usize) -> Self {
        assert!(block_size > 0);
        LayoutBuilder {
            next: 0,
            capacity,
            block_size,
        }
    }

    /// Reserves `len` words, rounded up to whole blocks, block-aligned.
    ///
    /// # Panics
    /// Panics if the address space is exhausted — a configuration error
    /// (make the machine's `persistent_words` larger), not a runtime
    /// condition.
    pub fn region(&mut self, len: usize) -> Region {
        let start = round_up_to_block(self.next, self.block_size);
        let rounded = round_up_to_block(len.max(1), self.block_size);
        assert!(
            start + rounded <= self.capacity,
            "persistent memory exhausted: need {} words at {}, capacity {}",
            rounded,
            start,
            self.capacity
        );
        self.next = start + rounded;
        Region {
            start,
            len: rounded,
        }
    }

    /// Words not yet handed out.
    pub fn remaining(&self) -> usize {
        self.capacity
            .saturating_sub(round_up_to_block(self.next, self.block_size))
    }

    /// All remaining words as one region.
    pub fn rest(&mut self) -> Region {
        let len = self.remaining();
        self.region(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_block_aligned() {
        let mut lb = LayoutBuilder::new(1024, 8);
        let a = lb.region(10); // rounds to 16
        let b = lb.region(8);
        let c = lb.region(1); // rounds to 8
        assert_eq!(a, Region { start: 0, len: 16 });
        assert_eq!(b, Region { start: 16, len: 8 });
        assert_eq!(c, Region { start: 24, len: 8 });
        assert!(a.end() <= b.start && b.end() <= c.start);
        for r in [a, b, c] {
            assert_eq!(r.start % 8, 0);
            assert_eq!(r.len % 8, 0);
        }
    }

    #[test]
    #[should_panic(expected = "persistent memory exhausted")]
    fn exhaustion_panics() {
        let mut lb = LayoutBuilder::new(16, 8);
        let _ = lb.region(8);
        let _ = lb.region(16);
    }

    #[test]
    fn contains_and_at() {
        let r = Region { start: 8, len: 8 };
        assert!(r.contains(8));
        assert!(r.contains(15));
        assert!(!r.contains(16));
        assert!(!r.contains(7));
        assert_eq!(r.at(3), 11);
    }

    #[test]
    fn split_partitions_region() {
        let r = Region { start: 0, len: 64 };
        let parts = r.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], Region { start: 0, len: 16 });
        assert_eq!(parts[3], Region { start: 48, len: 16 });
    }

    #[test]
    fn rest_consumes_remaining() {
        let mut lb = LayoutBuilder::new(64, 8);
        let _ = lb.region(8);
        let rest = lb.rest();
        assert_eq!(rest, Region { start: 8, len: 56 });
        assert_eq!(lb.remaining(), 0);
    }
}
