//! Pluggable time source for the lease/heartbeat protocol.
//!
//! Every liveness decision in the crate — lease deadlines, heartbeat
//! staleness, adoption grace periods — funnels through a [`Clock`] so
//! that tests (and the deterministic fault-injection simulator in
//! `ppm-sched`) can drive the protocol on a virtual timeline instead of
//! sleeping real milliseconds. Production code uses [`SystemClock`],
//! which reads the unix epoch exactly like the free function
//! [`crate::now_ms`] always did; tests use [`VirtualClock`] and advance
//! it explicitly, making lease-expiry races reproducible byte-for-byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone-enough millisecond clock. Implementations must be safe to
/// share across the worker threads of a process; cross-*process* sharing
/// is not required (each worker process owns its clock, and the lease
/// protocol already tolerates skew between real clocks).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in milliseconds. For [`SystemClock`] this is epoch
    /// milliseconds; for [`VirtualClock`] it is whatever the test set.
    fn now_ms(&self) -> u64;
}

/// The production clock: epoch milliseconds from the system wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        crate::lease::now_ms()
    }
}

/// A manually-advanced clock for deterministic tests. Starts at the
/// construction value and only moves when told to.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ms: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock reading `start_ms`.
    pub fn starting_at(start_ms: u64) -> Self {
        VirtualClock {
            ms: AtomicU64::new(start_ms),
        }
    }

    /// Moves the clock forward by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute reading (test convenience; never
    /// moves backwards in sane tests, but nothing here enforces it).
    pub fn set(&self, now_ms: u64) {
        self.ms.store(now_ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// The shared-ownership form every consumer actually threads around.
pub type SharedClock = Arc<dyn Clock>;

/// The default production clock, ready to clone into workers.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_when_told() {
        let c = VirtualClock::starting_at(100);
        assert_eq!(c.now_ms(), 100);
        c.advance(50);
        assert_eq!(c.now_ms(), 150);
        c.set(1_000);
        assert_eq!(c.now_ms(), 1_000);
    }

    #[test]
    fn system_clock_tracks_now_ms() {
        let before = crate::lease::now_ms();
        let read = SystemClock.now_ms();
        let after = crate::lease::now_ms();
        assert!(read >= before && read <= after);
    }
}
