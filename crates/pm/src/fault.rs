//! The fault adversary and the liveness oracle.
//!
//! The model allows each processor to fault between any two instructions,
//! with the probability of a fault between two consecutive *persistent*
//! accesses bounded by `f`, faults independent. [`FaultInjector`] implements
//! exactly that adversary: one injector per processor, consulted at every
//! costed access, drawing from a deterministic per-processor stream so runs
//! are replayable.
//!
//! Hard faults (the processor never restarts) can arise in two ways:
//! probabilistically, as a configured fraction of faults, or **scheduled**
//! — "processor 3 dies at its 1000th persistent access" — which the
//! hard-fault experiments use to place deaths adversarially.
//!
//! [`Liveness`] is the paper's oracle `isLive(procId)` (§2, §6): other
//! processors can detect that a processor has hard-faulted. The paper notes
//! the oracle "might be constructed by implementing a counter and a flag for
//! each process"; [`HeartbeatLiveness`] provides that concrete construction
//! as well.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::{system_clock, SharedClock};
use crate::config::FaultConfig;
use crate::error::Fault;

/// Per-processor fault source. Owned by the processor's [`crate::ProcCtx`];
/// not shared between threads.
#[derive(Debug)]
pub struct FaultInjector {
    proc: usize,
    rng: StdRng,
    fault_prob: f64,
    hard_ratio: f64,
    /// Persistent accesses performed so far by this processor.
    accesses: u64,
    /// If set, die at exactly this access count.
    scheduled_death: Option<u64>,
    /// Once dead, the injector reports `Hard` forever.
    dead: bool,
}

impl FaultInjector {
    /// Creates the injector for processor `proc` from the machine's fault
    /// configuration. Each processor gets an independent stream derived
    /// from `(seed, proc)`.
    pub fn new(cfg: &FaultConfig, proc: usize) -> Self {
        // Mix the processor id into the seed with SplitMix64-style constants
        // so per-processor streams are decorrelated even for adjacent seeds.
        let seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((proc as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            ^ 0x94D0_49BB_1331_11EB;
        let scheduled_death = cfg
            .scheduled_hard_faults
            .iter()
            .filter(|(p, _)| *p == proc)
            .map(|(_, at)| *at)
            .min();
        FaultInjector {
            proc,
            rng: StdRng::seed_from_u64(seed),
            fault_prob: cfg.fault_prob,
            hard_ratio: cfg.hard_fault_ratio,
            accesses: 0,
            scheduled_death,
            dead: false,
        }
    }

    /// The processor id this injector belongs to.
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// Total persistent accesses attempted so far (including the one a
    /// fault pre-empted).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Whether this processor has hard-faulted.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Consults the adversary at one persistent-memory access. Returns
    /// `Some(fault)` if the processor faults *before* performing the access,
    /// `None` if the access proceeds.
    pub fn check(&mut self) -> Option<Fault> {
        if self.dead {
            return Some(Fault::Hard);
        }
        self.accesses += 1;
        if let Some(at) = self.scheduled_death {
            if self.accesses >= at {
                self.dead = true;
                return Some(Fault::Hard);
            }
        }
        if self.fault_prob > 0.0 && self.rng.gen_bool(self.fault_prob) {
            if self.hard_ratio > 0.0 && self.rng.gen_bool(self.hard_ratio) {
                self.dead = true;
                return Some(Fault::Hard);
            }
            return Some(Fault::Soft);
        }
        None
    }
}

/// The liveness oracle `isLive(procId)`.
///
/// One flag per processor, flipped exactly once when the processor hard
/// faults. Conceptually this is a word in persistent memory; the paper makes
/// oracle queries free, so it is kept outside the costed address space.
#[derive(Debug)]
pub struct Liveness {
    flags: Vec<AtomicBool>,
}

impl Liveness {
    /// All `procs` processors start live.
    pub fn new(procs: usize) -> Self {
        Liveness {
            flags: (0..procs).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// The oracle query: is processor `proc` still live?
    #[inline]
    pub fn is_live(&self, proc: usize) -> bool {
        self.flags[proc].load(Ordering::SeqCst)
    }

    /// Marks `proc` dead. Called by the machine when a hard fault fires.
    pub fn mark_dead(&self, proc: usize) {
        self.flags[proc].store(false, Ordering::SeqCst);
    }

    /// Number of processors still live.
    pub fn live_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|f| f.load(Ordering::SeqCst))
            .count()
    }

    /// Number of processors tracked.
    pub fn procs(&self) -> usize {
        self.flags.len()
    }
}

/// The §6.3 heartbeat construction of the liveness oracle: "each process
/// updates its counter after a constant number of steps...; if the time
/// since a counter has last updated passes some threshold, the process is
/// considered dead and its flag is set."
///
/// This implementation is provided to show the oracle needs no global clock
/// or tight synchronization; the deterministic tests use [`Liveness`]
/// directly so they do not depend on wall-clock timing.
#[derive(Debug)]
pub struct HeartbeatLiveness {
    counters: Vec<AtomicU64>,
    flags: Vec<AtomicBool>,
    observed: Vec<Mutex<(u64, u64)>>,
    threshold_ms: u64,
    clock: SharedClock,
}

impl HeartbeatLiveness {
    /// Creates the oracle for `procs` processors; a processor whose counter
    /// does not advance for `threshold` is declared dead. Staleness is
    /// measured on the system clock; tests that need a reproducible
    /// timeline use [`HeartbeatLiveness::with_clock`].
    pub fn new(procs: usize, threshold: Duration) -> Self {
        Self::with_clock(procs, threshold, system_clock())
    }

    /// Same oracle, with staleness measured on the supplied [`SharedClock`]
    /// (a [`crate::VirtualClock`] makes expiry deterministic).
    pub fn with_clock(procs: usize, threshold: Duration, clock: SharedClock) -> Self {
        let now = clock.now_ms();
        HeartbeatLiveness {
            counters: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            flags: (0..procs).map(|_| AtomicBool::new(true)).collect(),
            observed: (0..procs).map(|_| Mutex::new((0, now))).collect(),
            threshold_ms: threshold.as_millis() as u64,
            clock,
        }
    }

    /// Called by processor `proc` every constant number of steps.
    #[inline]
    pub fn beat(&self, proc: usize) {
        self.counters[proc].fetch_add(1, Ordering::Relaxed);
    }

    /// Oracle query. Marks the flag if the counter has been stale for longer
    /// than the threshold. Once the flag is set it stays set, even if the
    /// process later restarts — per §6.3 a restarted process "can notice
    /// that it was marked as dead ... and enter the system with a new empty
    /// WS-Deque", i.e. as a logically fresh process.
    pub fn is_live(&self, proc: usize) -> bool {
        if !self.flags[proc].load(Ordering::SeqCst) {
            return false;
        }
        let current = self.counters[proc].load(Ordering::Relaxed);
        let mut obs = self.observed[proc].lock();
        let (last_value, last_seen_ms) = *obs;
        if current != last_value {
            *obs = (current, self.clock.now_ms());
            return true;
        }
        if self.clock.now_ms().saturating_sub(last_seen_ms) > self.threshold_ms {
            self.flags[proc].store(false, Ordering::SeqCst);
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_when_prob_zero() {
        let mut inj = FaultInjector::new(&FaultConfig::none(), 0);
        for _ in 0..10_000 {
            assert_eq!(inj.check(), None);
        }
        assert_eq!(inj.accesses(), 10_000);
    }

    #[test]
    fn fault_rate_close_to_configured() {
        let mut inj = FaultInjector::new(&FaultConfig::soft(0.1, 7), 0);
        let n = 100_000;
        let mut faults = 0u64;
        for _ in 0..n {
            if inj.check().is_some() {
                faults += 1;
            }
        }
        let rate = faults as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.01,
            "empirical fault rate {rate} too far from 0.1"
        );
    }

    #[test]
    fn streams_are_deterministic_and_per_proc() {
        let cfg = FaultConfig::soft(0.2, 99);
        let run = |proc: usize| -> Vec<bool> {
            let mut inj = FaultInjector::new(&cfg, proc);
            (0..1000).map(|_| inj.check().is_some()).collect()
        };
        assert_eq!(run(0), run(0), "same proc+seed must replay identically");
        assert_ne!(run(0), run(1), "different procs must get different streams");
    }

    #[test]
    fn scheduled_hard_fault_fires_exactly_at_access() {
        let cfg = FaultConfig::none().with_scheduled_hard_fault(0, 5);
        let mut inj = FaultInjector::new(&cfg, 0);
        for _ in 0..4 {
            assert_eq!(inj.check(), None);
        }
        assert_eq!(inj.check(), Some(Fault::Hard));
        assert!(inj.is_dead());
        // Dead forever after.
        assert_eq!(inj.check(), Some(Fault::Hard));
    }

    #[test]
    fn scheduled_fault_for_other_proc_ignored() {
        let cfg = FaultConfig::none().with_scheduled_hard_fault(1, 5);
        let mut inj = FaultInjector::new(&cfg, 0);
        for _ in 0..100 {
            assert_eq!(inj.check(), None);
        }
    }

    #[test]
    fn hard_ratio_one_makes_all_faults_hard() {
        let cfg = FaultConfig::mixed(0.5, 1.0, 3);
        let mut inj = FaultInjector::new(&cfg, 0);
        let first_fault = std::iter::repeat_with(|| inj.check())
            .take(1000)
            .flatten()
            .next();
        assert_eq!(first_fault, Some(Fault::Hard));
    }

    #[test]
    fn liveness_starts_live_and_death_is_sticky() {
        let l = Liveness::new(3);
        assert!(l.is_live(0) && l.is_live(1) && l.is_live(2));
        assert_eq!(l.live_count(), 3);
        l.mark_dead(1);
        assert!(!l.is_live(1));
        assert!(l.is_live(0) && l.is_live(2));
        assert_eq!(l.live_count(), 2);
    }

    #[test]
    fn heartbeat_marks_stale_processor_dead() {
        let clock = std::sync::Arc::new(crate::VirtualClock::starting_at(1_000));
        let hb = HeartbeatLiveness::with_clock(2, Duration::from_millis(10), clock.clone());
        hb.beat(0);
        assert!(hb.is_live(0));
        assert!(hb.is_live(1)); // first observation records baseline
        clock.advance(25);
        // Proc 0 keeps beating, proc 1 is silent.
        hb.beat(0);
        assert!(hb.is_live(0));
        assert!(!hb.is_live(1));
        // Death is sticky even if beats resume.
        hb.beat(1);
        assert!(!hb.is_live(1));
    }
}
