//! Storage backends for the persistent word array.
//!
//! The Parallel-PM model's "persistent" memory must survive processor
//! faults. For the *simulated* faults of the original reproduction an
//! in-process array of atomics suffices ([`VolatileBackend`]), but the
//! model's recovery story is only demonstrable against real process
//! crashes if the words live somewhere a `kill -9` cannot reach. The
//! [`MemBackend`] trait abstracts that choice behind
//! [`crate::mem::PersistentMemory`]:
//!
//! * [`VolatileBackend`] — heap-allocated atomics; exactly the original
//!   behavior. "Persistence" spans simulated faults within one process.
//! * [`MmapBackend`] (unix) — the word array is a `MAP_SHARED` mapping of
//!   a file, preceded by a versioned [`Superblock`] recording the machine
//!   shape ([`crate::PmConfig`] dimensions, pool sizing) and a run epoch.
//!   Word stores reach the kernel page cache immediately — they survive
//!   the death of the writing process — and [`MemBackend::flush`]
//!   (`msync(MS_SYNC)`) is the explicit boundary at which they are also
//!   durable against machine/power failure.
//!
//! The backend is deliberately *below* the model: cost accounting, fault
//! injection and validation all happen in [`crate::ProcCtx`] regardless of
//! where the words live.

use std::fmt::Debug;
use std::io;
use std::path::Path;
use std::sync::atomic::AtomicU64;

use crate::dirty::PageRun;
use crate::lease::{ClusterHeader, Lease};
use crate::service::ServiceHeader;

pub mod superblock;
pub mod volatile;

#[cfg(unix)]
pub mod mmap;

pub use superblock::{CheckpointRecord, Superblock, SUPERBLOCK_BYTES};
pub use volatile::VolatileBackend;

#[cfg(unix)]
pub use mmap::MmapBackend;

/// Storage for a machine's persistent word array.
///
/// Implementations hand out the backing words as a stable slice of
/// sequentially-consistent atomics: the slice address must not change for
/// the lifetime of the backend (heap allocations and memory mappings both
/// satisfy this), which lets [`crate::mem::PersistentMemory`] cache the
/// pointer and keep word access free of dynamic dispatch.
pub trait MemBackend: Send + Sync + Debug {
    /// The backing word array. Must return the same slice (same address,
    /// same length) on every call.
    fn words(&self) -> &[AtomicU64];

    /// Forces previously-stored words to stable storage. The durability
    /// boundary of the backend: after `flush` returns, everything stored
    /// before the call survives even a machine failure. No-op for
    /// volatile backends.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    /// The backing file, if any.
    fn path(&self) -> Option<&Path> {
        None
    }

    /// The superblock describing the stored machine, if this backend is
    /// durable.
    fn superblock(&self) -> Option<Superblock> {
        None
    }

    /// Records a clean shutdown in the superblock (durable backends) and
    /// flushes. A subsequent reopen can distinguish a completed run from
    /// a crashed one.
    fn mark_clean(&self) -> io::Result<()> {
        self.flush()
    }

    /// Whether [`crate::mem::PersistentMemory`] should maintain a dirty
    /// bitmap for this backend. `true` for backends whose
    /// [`MemBackend::flush_dirty`] beats a full [`MemBackend::flush`]
    /// (file-mapped storage); `false` keeps volatile word traffic free of
    /// the tracking atomics.
    fn wants_dirty_tracking(&self) -> bool {
        false
    }

    /// Forces only the given word runs (page-aligned, from
    /// [`crate::DirtyTracker::drain`]) to stable storage — the
    /// incremental twin of [`MemBackend::flush`]. The default falls back
    /// to a full flush, which is always correct.
    fn flush_dirty(&self, _runs: &[PageRun]) -> io::Result<()> {
        self.flush()
    }

    /// Durably writes a checkpoint record (durable backends; no-op
    /// otherwise, returning `false`). Records alternate between two
    /// superblock-page slots so a torn write can never destroy the
    /// previous checkpoint.
    fn write_checkpoint(&self, _record: &CheckpointRecord) -> io::Result<bool> {
        Ok(false)
    }

    /// The newest valid checkpoint record on stable storage, if any.
    fn latest_checkpoint(&self) -> Option<CheckpointRecord> {
        None
    }

    /// Invalidates every stored checkpoint record (called when a recovery
    /// replays from the root: pool cursors reset, so old checkpoint
    /// frontiers no longer denote live frames).
    fn clear_checkpoints(&self) -> io::Result<()> {
        Ok(())
    }

    /// Writes the cluster header describing a sharded run (see
    /// [`crate::lease`]). Returns `false` when the backend cannot carry
    /// cluster state (no superblock page and no in-memory table).
    fn write_cluster_header(&self, _header: &ClusterHeader) -> io::Result<bool> {
        Ok(false)
    }

    /// The cluster header, if one was written and is not torn.
    fn read_cluster_header(&self) -> Option<ClusterHeader> {
        None
    }

    /// Writes shard `shard`'s lease slot. Lease writes are heartbeat
    /// traffic: they go to the shared page (visible to every attached
    /// process immediately) but are *not* synced — liveness signals do
    /// not need to survive machine failure.
    fn write_lease(&self, _shard: usize, _lease: &Lease) -> io::Result<()> {
        Ok(())
    }

    /// Reads shard `shard`'s lease slot. `None` for a blank slot or a
    /// torn (mid-rewrite) read — callers keep their previous view.
    fn read_lease(&self, _shard: usize) -> Option<Lease> {
        None
    }

    /// Durably writes the service header describing a job-service run
    /// (see [`crate::service`]). Returns `false` when the backend cannot
    /// carry service state.
    fn write_service_header(&self, _header: &ServiceHeader) -> io::Result<bool> {
        Ok(false)
    }

    /// The service header, if one was written and is not torn.
    fn read_service_header(&self) -> Option<ServiceHeader> {
        None
    }

    /// Writes one raw checkpoint-quiesce word (see
    /// [`crate::service::QUIESCE_REQ_OFFSET`] and friends). Quiesce
    /// words are coordination traffic like leases: shared-page visible
    /// immediately, never synced. No-op for backends without a
    /// superblock page.
    fn write_quiesce_word(&self, _byte_off: usize, _val: u64) {}

    /// Reads one raw checkpoint-quiesce word (0 for backends without a
    /// superblock page — quiesce never triggers there).
    fn read_quiesce_word(&self, _byte_off: usize) -> u64 {
        0
    }

    /// Short human-readable backend name for diagnostics.
    fn kind(&self) -> &'static str;
}
