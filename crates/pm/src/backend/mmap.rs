//! The durable backend: the word array mapped onto a file.
//!
//! A durable machine file is one [`Superblock`] page followed by the word
//! array, mapped `MAP_SHARED` with `PROT_READ|PROT_WRITE`. Because the
//! mapping is shared, every atomic store lands in the kernel page cache
//! the instant it retires — killing the writing process (the `kill -9`
//! hard-fault scenario) loses nothing that was already stored. The
//! explicit [`MemBackend::flush`] boundary (`msync(MS_SYNC)`) extends the
//! guarantee to machine/power failure.
//!
//! The environment vendors no FFI crates, so the three syscall wrappers
//! this module needs (`mmap`, `munmap`, `msync`) are declared directly
//! against the C library every Rust binary on unix already links.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;

use parking_lot::Mutex;

use super::superblock::{
    CheckpointRecord, Superblock, CKPT_SLOT_BYTES, CKPT_SLOT_OFFSETS, STATE_CLEAN, STATE_IN_RUN,
    SUPERBLOCK_BYTES,
};
use super::MemBackend;
use crate::dirty::PageRun;
use crate::lease::{lease_slot_offset, ClusterHeader, Lease, CLUSTER_HEADER_OFFSET};
use crate::service::ServiceHeader;

mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
        pub fn msync(addr: *mut c_void, length: usize, flags: i32) -> i32;
    }

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;
    pub const MS_SYNC: i32 = 0x4;
}

/// File-backed word storage with crash persistence.
pub struct MmapBackend {
    /// Base of the shared mapping (superblock page included).
    base: *mut u8,
    /// Total mapping length in bytes.
    map_len: usize,
    /// Number of words after the superblock.
    len_words: usize,
    /// Kept open for `msync`-independent metadata syncs and so the file
    /// cannot disappear under the mapping.
    _file: File,
    path: PathBuf,
    /// Serializes superblock rewrites (open-time epoch bumps and
    /// `mark_clean`; word traffic never takes this lock).
    sb_lock: Mutex<()>,
}

// SAFETY: the raw pointer is a shared file mapping that lives until Drop:
// word access goes through `&[AtomicU64]`, cross-process slots go through
// `sb_word` atomics, and superblock rewrites are serialized by `sb_lock`,
// so moving or sharing the handle across threads cannot introduce a data
// race that the mapping's own protocol does not already govern.
unsafe impl Send for MmapBackend {}
// SAFETY: see the Send justification above — all interior access paths
// are atomic or lock-serialized.
unsafe impl Sync for MmapBackend {}

impl std::fmt::Debug for MmapBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MmapBackend({} words on {})",
            self.len_words,
            self.path.display()
        )
    }
}

fn file_bytes(words: usize) -> u64 {
    (SUPERBLOCK_BYTES + words * 8) as u64
}

impl MmapBackend {
    /// Creates (or truncates) a durable file holding `superblock` and a
    /// zeroed word array of `superblock.persistent_words` words, and maps
    /// it. The superblock is written and synced before this returns.
    pub fn create(path: impl AsRef<Path>, superblock: Superblock) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let words = superblock.persistent_words as usize;
        file.set_len(file_bytes(words))?;
        let backend = Self::map(file, path, words)?;
        backend.write_superblock(&superblock)?;
        Ok(backend)
    }

    /// Opens an existing durable file, validates its superblock against
    /// the file's actual size, records a new run attaching to it (epoch
    /// increment, state ← in-run), and maps its words. Returns the
    /// superblock *as found* — `epoch` is the pre-increment value and
    /// `state` tells whether the previous run detached cleanly.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Self, Superblock)> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < SUPERBLOCK_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too short for a superblock",
            ));
        }
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        read_exact_at(&file, &mut page, 0)?;
        let found = Superblock::decode(&page)?;
        let words = found.persistent_words as usize;
        if actual_len != file_bytes(words) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "file is {actual_len} bytes but the superblock describes {} (truncated?)",
                    file_bytes(words)
                ),
            ));
        }
        let backend = Self::map(file, path, words)?;
        let mut attached = found;
        attached.epoch += 1;
        attached.state = STATE_IN_RUN;
        backend.write_superblock(&attached)?;
        Ok((backend, found))
    }

    /// Opens an existing durable file as a **secondary attacher**: the
    /// superblock is validated and returned exactly as found, but — unlike
    /// [`MmapBackend::open`] — neither the run epoch nor the state word is
    /// touched. A sharded runtime's worker processes attach this way: the
    /// coordinator's `create` established the run epoch, and every worker
    /// shares it, so recovery semantics ("did the previous *run* crash?")
    /// stay a property of the run, not of how many processes served it.
    pub fn attach(path: impl AsRef<Path>) -> io::Result<(Self, Superblock)> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < SUPERBLOCK_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too short for a superblock",
            ));
        }
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        read_exact_at(&file, &mut page, 0)?;
        let found = Superblock::decode(&page)?;
        let words = found.persistent_words as usize;
        if actual_len != file_bytes(words) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "file is {actual_len} bytes but the superblock describes {} (truncated?)",
                    file_bytes(words)
                ),
            ));
        }
        let backend = Self::map(file, path, words)?;
        Ok((backend, found))
    }

    fn map(file: File, path: PathBuf, words: usize) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        let map_len = SUPERBLOCK_BYTES + words * 8;
        // SAFETY: plain FFI mmap of `map_len` bytes of an open fd we own;
        // a MAP_FAILED return is checked immediately below, and the fd is
        // kept alive in `_file` for the lifetime of the mapping.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if base as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapBackend {
            base: base as *mut u8,
            map_len,
            len_words: words,
            _file: file,
            path,
            sb_lock: Mutex::new(()),
        })
    }

    /// Rewrites the superblock page and syncs it to the file.
    fn write_superblock(&self, sb: &Superblock) -> io::Result<()> {
        let _guard = self.sb_lock.lock();
        // SAFETY: the mapping is at least SUPERBLOCK_BYTES long for the
        // lifetime of `self`, and `sb_lock` (held above) serializes every
        // mutable view of the superblock page within this process.
        let page = unsafe { std::slice::from_raw_parts_mut(self.base, SUPERBLOCK_BYTES) };
        sb.encode_into(page);
        self.msync_range(0, SUPERBLOCK_BYTES)
    }

    fn read_superblock(&self) -> Superblock {
        let _guard = self.sb_lock.lock();
        // SAFETY: in-bounds shared view of the superblock page; `sb_lock`
        // excludes in-process writers while this borrow is live.
        let page = unsafe { std::slice::from_raw_parts(self.base, SUPERBLOCK_BYTES) };
        Superblock::decode(page).expect("mapped superblock was validated at open/create")
    }

    /// Reads one checkpoint slot from the mapped superblock page.
    fn read_ckpt_slot(&self, slot: usize) -> io::Result<Option<CheckpointRecord>> {
        let _guard = self.sb_lock.lock();
        // SAFETY: every checkpoint slot lies inside the superblock page
        // (asserted by the CKPT_SLOT_OFFSETS layout constants), and
        // `sb_lock` excludes in-process writers while this borrow is live.
        let bytes = unsafe {
            std::slice::from_raw_parts(self.base.add(CKPT_SLOT_OFFSETS[slot]), CKPT_SLOT_BYTES)
        };
        CheckpointRecord::decode(bytes)
    }

    /// Word `i` (by byte offset) of the mapped superblock page as an
    /// atomic. Cross-process lease traffic must go through atomics: the
    /// `sb_lock` only serializes writers *within* one process, while
    /// lease slots are written by their owning worker and read by every
    /// sibling concurrently. Offsets are 8-aligned by construction
    /// (`mmap` returns page-aligned memory).
    fn sb_word(&self, byte_off: usize) -> &AtomicU64 {
        debug_assert!(byte_off.is_multiple_of(8) && byte_off + 8 <= SUPERBLOCK_BYTES);
        // SAFETY: `base` is page-aligned (mmap) and `byte_off` is 8-aligned
        // and in-bounds (asserted above), so the cast produces a valid,
        // live AtomicU64 reference; atomics make the cross-process sharing
        // sound by construction.
        unsafe { &*(self.base.add(byte_off) as *const AtomicU64) }
    }

    fn write_sb_words(&self, byte_off: usize, words: &[u64]) {
        use std::sync::atomic::Ordering;
        // Checksum word last: a racing reader either sees the previous
        // record's checksum (stale but valid view) or a mismatch (torn
        // view, which it discards) — never a half-new record accepted.
        for (i, w) in words.iter().enumerate() {
            self.sb_word(byte_off + i * 8).store(*w, Ordering::SeqCst);
        }
    }

    fn read_sb_words<const N: usize>(&self, byte_off: usize) -> [u64; N] {
        use std::sync::atomic::Ordering;
        let mut out = [0u64; N];
        for (i, w) in out.iter_mut().enumerate() {
            *w = self.sb_word(byte_off + i * 8).load(Ordering::SeqCst);
        }
        out
    }

    fn msync_range(&self, offset: usize, len: usize) -> io::Result<()> {
        debug_assert_eq!(offset % SUPERBLOCK_BYTES, 0, "msync needs page alignment");
        // SAFETY: plain FFI msync over a sub-range of our own live mapping;
        // page alignment is asserted above and the return code is checked.
        let rc = unsafe {
            sys::msync(
                self.base.add(offset) as *mut std::ffi::c_void,
                len,
                sys::MS_SYNC,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

impl MemBackend for MmapBackend {
    fn words(&self) -> &[AtomicU64] {
        // SAFETY: the region after the superblock page is 8-byte aligned
        // (page alignment of `base` plus the 4096-byte offset), holds
        // exactly `len_words` words, and lives for `self` — the mapping is
        // only torn down in Drop. AtomicU64 access makes the MAP_SHARED
        // cross-process aliasing sound.
        unsafe {
            std::slice::from_raw_parts(
                self.base.add(SUPERBLOCK_BYTES) as *const AtomicU64,
                self.len_words,
            )
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.msync_range(0, self.map_len)
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }

    fn superblock(&self) -> Option<Superblock> {
        Some(self.read_superblock())
    }

    fn mark_clean(&self) -> io::Result<()> {
        self.flush()?;
        let mut sb = self.read_superblock();
        sb.state = STATE_CLEAN;
        self.write_superblock(&sb)
    }

    fn wants_dirty_tracking(&self) -> bool {
        true
    }

    fn flush_dirty(&self, runs: &[PageRun]) -> io::Result<()> {
        for (start, len) in runs {
            // Word run → byte range past the superblock page. Runs are
            // page-aligned by construction (DirtyTracker::drain), so the
            // msync alignment requirement holds.
            self.msync_range(SUPERBLOCK_BYTES + start * 8, len * 8)?;
        }
        Ok(())
    }

    fn write_checkpoint(&self, record: &CheckpointRecord) -> io::Result<bool> {
        if !record.fits() {
            return Ok(false);
        }
        let off = CKPT_SLOT_OFFSETS[record.slot()];
        {
            let _guard = self.sb_lock.lock();
            // SAFETY: the slot lies inside the superblock page and
            // `sb_lock` (held above) excludes every other in-process view
            // of that page while this mutable borrow is live.
            let bytes =
                unsafe { std::slice::from_raw_parts_mut(self.base.add(off), CKPT_SLOT_BYTES) };
            bytes.fill(0);
            record.encode_into(bytes);
        }
        // The slots live inside the (one-page) superblock page.
        self.msync_range(0, SUPERBLOCK_BYTES)?;
        Ok(true)
    }

    fn latest_checkpoint(&self) -> Option<CheckpointRecord> {
        let mut best: Option<CheckpointRecord> = None;
        for slot in 0..CKPT_SLOT_OFFSETS.len() {
            // A torn slot is skipped, not fatal: the other slot holds the
            // previous epoch's record.
            if let Ok(Some(rec)) = self.read_ckpt_slot(slot) {
                if best.as_ref().map(|b| rec.seq > b.seq).unwrap_or(true) {
                    best = Some(rec);
                }
            }
        }
        best
    }

    fn clear_checkpoints(&self) -> io::Result<()> {
        {
            let _guard = self.sb_lock.lock();
            for off in CKPT_SLOT_OFFSETS {
                // SAFETY: same argument as `write_checkpoint` — in-page
                // slot, `sb_lock` held by the enclosing block.
                let bytes =
                    unsafe { std::slice::from_raw_parts_mut(self.base.add(off), CKPT_SLOT_BYTES) };
                bytes.fill(0);
            }
        }
        self.msync_range(0, SUPERBLOCK_BYTES)
    }

    fn write_cluster_header(&self, header: &ClusterHeader) -> io::Result<bool> {
        self.write_sb_words(CLUSTER_HEADER_OFFSET, &header.encode());
        // The header is written once, by the coordinator, before workers
        // spawn — sync it so a machine failure cannot orphan a sharded
        // file without its geometry.
        self.msync_range(0, SUPERBLOCK_BYTES)?;
        Ok(true)
    }

    fn read_cluster_header(&self) -> Option<ClusterHeader> {
        let words: [u64; 6] = self.read_sb_words(CLUSTER_HEADER_OFFSET);
        ClusterHeader::decode(&words)
    }

    fn write_lease(&self, shard: usize, lease: &Lease) -> io::Result<()> {
        self.write_sb_words(lease_slot_offset(shard), &lease.encode());
        // Deliberately no msync: heartbeats only need page-cache
        // visibility across the sharing processes, and syncing every few
        // hundred milliseconds would tax the durability path for nothing.
        Ok(())
    }

    fn read_lease(&self, shard: usize) -> Option<Lease> {
        let words: [u64; 4] = self.read_sb_words(lease_slot_offset(shard));
        Lease::decode(&words)
    }

    fn write_service_header(&self, header: &ServiceHeader) -> io::Result<bool> {
        self.write_sb_words(crate::service::SERVICE_HEADER_OFFSET, &header.encode());
        // Written by the coordinator/service handle only (single writer);
        // synced like the cluster header so a machine failure cannot
        // orphan a service file without its ring geometry.
        self.msync_range(0, SUPERBLOCK_BYTES)?;
        Ok(true)
    }

    fn read_service_header(&self) -> Option<ServiceHeader> {
        let words: [u64; 8] = self.read_sb_words(crate::service::SERVICE_HEADER_OFFSET);
        ServiceHeader::decode(&words)
    }

    fn write_quiesce_word(&self, byte_off: usize, val: u64) {
        use std::sync::atomic::Ordering;
        // Coordination traffic like leases: no msync.
        self.sb_word(byte_off).store(val, Ordering::SeqCst);
    }

    fn read_quiesce_word(&self, byte_off: usize) -> u64 {
        use std::sync::atomic::Ordering;
        self.sb_word(byte_off).load(Ordering::SeqCst)
    }

    fn kind(&self) -> &'static str {
        "mmap"
    }
}

impl Drop for MmapBackend {
    fn drop(&mut self) {
        // SAFETY: unmaps exactly the region `map` established; `&mut self`
        // guarantees no outstanding borrows of the mapping remain.
        unsafe {
            sys::munmap(self.base as *mut std::ffi::c_void, self.map_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmConfig;
    use std::sync::atomic::Ordering;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppm-mmap-test-{}-{tag}.ppm", std::process::id()));
        p
    }

    fn sb(words: usize) -> Superblock {
        Superblock::describe(&PmConfig::parallel(2, words), 64)
    }

    #[test]
    fn create_store_reopen_round_trips() {
        let path = tmp_path("roundtrip");
        {
            let b = MmapBackend::create(&path, sb(1024)).unwrap();
            b.words()[17].store(0xDEAD_BEEF, Ordering::SeqCst);
            b.words()[1023].store(42, Ordering::SeqCst);
            b.flush().unwrap();
        }
        {
            let (b, found) = MmapBackend::open(&path).unwrap();
            assert_eq!(found.epoch, 1);
            assert!(!found.clean(), "crashy drop leaves in-run state");
            assert_eq!(b.words()[17].load(Ordering::SeqCst), 0xDEAD_BEEF);
            assert_eq!(b.words()[1023].load(Ordering::SeqCst), 42);
            assert_eq!(b.words()[0].load(Ordering::SeqCst), 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unflushed_stores_survive_backend_drop() {
        // MAP_SHARED: stores live in the page cache even without msync.
        let path = tmp_path("unflushed");
        {
            let b = MmapBackend::create(&path, sb(64)).unwrap();
            b.words()[5].store(99, Ordering::SeqCst);
            // no flush — simulates sudden process death
        }
        let (b, _) = MmapBackend::open(&path).unwrap();
        assert_eq!(b.words()[5].load(Ordering::SeqCst), 99);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn epoch_increments_per_attach_and_clean_is_recorded() {
        let path = tmp_path("epoch");
        {
            let b = MmapBackend::create(&path, sb(64)).unwrap();
            assert_eq!(b.superblock().unwrap().epoch, 1);
            b.mark_clean().unwrap();
        }
        {
            let (b, found) = MmapBackend::open(&path).unwrap();
            assert_eq!(found.epoch, 1);
            assert!(found.clean());
            assert_eq!(b.superblock().unwrap().epoch, 2);
            assert!(!b.superblock().unwrap().clean());
        }
        {
            let (_, found) = MmapBackend::open(&path).unwrap();
            assert_eq!(found.epoch, 2);
            assert!(!found.clean(), "second run never marked clean");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp_path("truncated");
        {
            let _ = MmapBackend::create(&path, sb(1024)).unwrap();
        }
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(file_bytes(1024) - 512).unwrap();
        drop(f);
        let err = MmapBackend::open(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_dirty_syncs_runs_and_checkpoints_round_trip() {
        let path = tmp_path("ckpt");
        let rec = |seq: u64| CheckpointRecord {
            seq,
            epoch: 1,
            capsules: 40 * seq,
            watermarks: vec![64 * seq],
            frontier: vec![0x100 + seq],
        };
        {
            let b = MmapBackend::create(&path, sb(4096)).unwrap();
            b.words()[100].store(7, Ordering::SeqCst);
            b.flush_dirty(&[(0, 512), (3584, 512)]).unwrap();
            assert!(b.latest_checkpoint().is_none());
            assert!(b.write_checkpoint(&rec(1)).unwrap());
            assert!(b.write_checkpoint(&rec(2)).unwrap());
            assert_eq!(b.latest_checkpoint().unwrap().seq, 2);
        }
        {
            // Both records survive reopen; the newest wins.
            let (b, _) = MmapBackend::open(&path).unwrap();
            let latest = b.latest_checkpoint().unwrap();
            assert_eq!(latest, rec(2));
            // Tear the newest slot on disk: reopen must fall back to the
            // previous record, not error out.
            let off = CKPT_SLOT_OFFSETS[rec(2).slot()];
            {
                let guard = b.sb_lock.lock();
                // SAFETY: in-page checkpoint slot, sb_lock held — same
                // argument as the non-test write_checkpoint path.
                let bytes =
                    unsafe { std::slice::from_raw_parts_mut(b.base.add(off), CKPT_SLOT_BYTES) };
                bytes[16] ^= 0xFF;
                drop(guard);
            }
            assert_eq!(b.latest_checkpoint().unwrap(), rec(1));
            b.clear_checkpoints().unwrap();
            assert!(b.latest_checkpoint().is_none());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attach_shares_words_without_bumping_the_epoch() {
        use crate::lease::{LeaseState, ShardMap};
        let path = tmp_path("attach");
        let creator = MmapBackend::create(&path, sb(1024)).unwrap();
        assert_eq!(creator.superblock().unwrap().epoch, 1);

        // A secondary attacher maps the same words, sees the same epoch,
        // and leaves the superblock untouched.
        let (worker, found) = MmapBackend::attach(&path).unwrap();
        assert_eq!(found.epoch, 1);
        assert_eq!(worker.superblock().unwrap().epoch, 1);
        creator.words()[9].store(1234, Ordering::SeqCst);
        assert_eq!(worker.words()[9].load(Ordering::SeqCst), 1234);
        worker.words()[10].store(4321, Ordering::SeqCst);
        assert_eq!(creator.words()[10].load(Ordering::SeqCst), 4321);

        // Cluster header and leases are visible across mappings (this is
        // the cross-process liveness oracle's transport).
        let header = ClusterHeader {
            shards: 2,
            lease_ms: 700,
            deque_slots: 4096,
            seed: 0xC0FFEE,
        };
        assert!(creator.write_cluster_header(&header).unwrap());
        assert_eq!(worker.read_cluster_header(), Some(header));
        let map = ShardMap::new(2, 2);
        assert_eq!(map.procs_per_shard, 1);
        let lease = Lease::alive(7, 10_000);
        worker.write_lease(1, &lease).unwrap();
        assert_eq!(creator.read_lease(1), Some(lease));
        assert!(creator.read_lease(0).is_none(), "blank slot stays blank");
        let tomb = Lease {
            state: LeaseState::Dead,
            seq: 8,
            deadline_ms: u64::MAX,
        };
        creator.write_lease(1, &tomb).unwrap();
        assert!(worker
            .read_lease(1)
            .unwrap()
            .is_dead(crate::lease::now_ms()));

        // A real `open` after both detach still bumps the epoch once.
        drop(worker);
        drop(creator);
        let (reopened, found) = MmapBackend::open(&path).unwrap();
        assert_eq!(found.epoch, 1, "attachers never advanced the epoch");
        assert_eq!(reopened.superblock().unwrap().epoch, 2);
        assert_eq!(
            reopened.read_cluster_header(),
            Some(header),
            "cluster header survives reopen"
        );
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_ppm_file_rejected() {
        let path = tmp_path("garbage");
        std::fs::write(&path, vec![0xAB; SUPERBLOCK_BYTES + 64]).unwrap();
        assert!(MmapBackend::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
