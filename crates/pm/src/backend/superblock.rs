//! The durable file's superblock.
//!
//! The first [`SUPERBLOCK_BYTES`] of a durable machine file describe the
//! machine stored after them: a magic/version header, the [`crate::PmConfig`]
//! dimensions and pool sizing needed to rebuild the deterministic address
//! -space layout, a *run epoch* counting the process lifetimes that have
//! attached to the file, and a state word distinguishing a clean shutdown
//! from a crash. All fields are little-endian `u64`s guarded by an FNV-1a
//! checksum, so a reopen can reject truncated, foreign, or torn files
//! before mapping any of their words into a machine.

use std::io;

use crate::config::PmConfig;

/// Bytes reserved for the superblock at the head of a durable file. One
/// 4 KiB page: the word array after it stays page-aligned, and a
/// superblock `msync` touches exactly one page.
pub const SUPERBLOCK_BYTES: usize = 4096;

/// `b"PPMDUR1\0"` as a little-endian word.
pub const MAGIC: u64 = u64::from_le_bytes(*b"PPMDUR1\0");

/// Current superblock format version.
pub const VERSION: u64 = 1;

/// Largest word count a superblock may describe: 2^46 words (the model's
/// 46-bit handle space, 512 TiB of words). Bounding this keeps the
/// `words * 8 + SUPERBLOCK_BYTES` file-size arithmetic far from overflow,
/// so a crafted superblock with an absurd word count is rejected here
/// instead of wrapping the size check and producing a bogus mapping.
pub const MAX_PERSISTENT_WORDS: u64 = 1 << 46;

/// State value: a run is (or was, if it crashed) attached to the file.
pub const STATE_IN_RUN: u64 = 1;

/// State value: the last attached run flushed and detached cleanly.
pub const STATE_CLEAN: u64 = 2;

/// Decoded superblock contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Format version of the file.
    pub version: u64,
    /// Number of process lifetimes that have attached to this file. The
    /// creating run is epoch 1; every reopen increments it.
    pub epoch: u64,
    /// [`STATE_IN_RUN`] or [`STATE_CLEAN`].
    pub state: u64,
    /// Processors `P` of the stored machine.
    pub procs: u64,
    /// Persistent capacity `M_p` in words.
    pub persistent_words: u64,
    /// Ephemeral capacity `M` in words (per processor).
    pub ephemeral_words: u64,
    /// Block size `B` in words.
    pub block_size: u64,
    /// Per-processor allocation-pool words, needed to replay the machine
    /// layout deterministically on reopen.
    pub pool_words: u64,
}

/// Field count serialized ahead of the checksum.
const FIELDS: usize = 10; // magic, version, epoch, state, procs, words, eph, block, pool, checksum

fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl Superblock {
    /// Describes a fresh machine: epoch 1, in-run state.
    ///
    /// # Panics
    /// Panics if the configuration exceeds [`MAX_PERSISTENT_WORDS`] — a
    /// configuration error, mirroring the reject in [`Superblock::decode`].
    pub fn describe(cfg: &PmConfig, pool_words: usize) -> Self {
        assert!(
            (cfg.persistent_words as u64) <= MAX_PERSISTENT_WORDS,
            "persistent_words {} exceeds the durable-file limit {MAX_PERSISTENT_WORDS}",
            cfg.persistent_words
        );
        Superblock {
            version: VERSION,
            epoch: 1,
            state: STATE_IN_RUN,
            procs: cfg.procs as u64,
            persistent_words: cfg.persistent_words as u64,
            ephemeral_words: cfg.ephemeral_words as u64,
            block_size: cfg.block_size as u64,
            pool_words: pool_words as u64,
        }
    }

    /// Reconstructs the machine configuration the file was created with.
    ///
    /// The fault adversary and validation mode are *run* properties, not
    /// *file* properties, so they come back at their defaults (no faults,
    /// strict validation); override with the [`PmConfig`] builders.
    pub fn to_config(&self) -> PmConfig {
        PmConfig {
            procs: self.procs as usize,
            persistent_words: self.persistent_words as usize,
            ephemeral_words: self.ephemeral_words as usize,
            block_size: self.block_size as usize,
            fault: crate::config::FaultConfig::none(),
            validate: crate::config::ValidateMode::default(),
        }
    }

    /// Whether the last attached run detached cleanly.
    pub fn clean(&self) -> bool {
        self.state == STATE_CLEAN
    }

    /// Serializes into the head of `page` (which must hold at least
    /// [`SUPERBLOCK_BYTES`]).
    pub fn encode_into(&self, page: &mut [u8]) {
        assert!(page.len() >= SUPERBLOCK_BYTES);
        let mut fields = [
            MAGIC,
            self.version,
            self.epoch,
            self.state,
            self.procs,
            self.persistent_words,
            self.ephemeral_words,
            self.block_size,
            self.pool_words,
            0,
        ];
        fields[FIELDS - 1] = fnv1a(&fields[..FIELDS - 1]);
        for (i, w) in fields.iter().enumerate() {
            page[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Parses and validates the head of `page`.
    pub fn decode(page: &[u8]) -> io::Result<Self> {
        if page.len() < FIELDS * 8 {
            return Err(bad("file too short for a superblock"));
        }
        let mut fields = [0u64; FIELDS];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = u64::from_le_bytes(page[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        if fields[0] != MAGIC {
            return Err(bad("not a ppm durable file (bad magic)"));
        }
        if fields[FIELDS - 1] != fnv1a(&fields[..FIELDS - 1]) {
            return Err(bad("superblock checksum mismatch (torn or corrupt)"));
        }
        let sb = Superblock {
            version: fields[1],
            epoch: fields[2],
            state: fields[3],
            procs: fields[4],
            persistent_words: fields[5],
            ephemeral_words: fields[6],
            block_size: fields[7],
            pool_words: fields[8],
        };
        if sb.version != VERSION {
            return Err(bad(&format!(
                "unsupported superblock version {} (this build reads {VERSION})",
                sb.version
            )));
        }
        if sb.block_size == 0 || sb.persistent_words == 0 || sb.procs == 0 {
            return Err(bad("superblock describes a degenerate machine"));
        }
        if sb.persistent_words > MAX_PERSISTENT_WORDS {
            return Err(bad(&format!(
                "superblock claims {} persistent words (limit {MAX_PERSISTENT_WORDS})",
                sb.persistent_words
            )));
        }
        Ok(sb)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        Superblock::describe(&PmConfig::parallel(4, 1 << 20), 1 << 16)
    }

    #[test]
    fn encode_decode_round_trips() {
        let sb = sample();
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        assert_eq!(Superblock::decode(&page).unwrap(), sb);
    }

    #[test]
    fn config_round_trips_through_superblock() {
        let cfg = PmConfig::parallel(3, 1 << 18)
            .with_block_size(16)
            .with_ephemeral_words(512);
        let sb = Superblock::describe(&cfg, 4096);
        let back = sb.to_config();
        assert_eq!(back.procs, 3);
        assert_eq!(back.persistent_words, 1 << 18);
        assert_eq!(back.ephemeral_words, 512);
        assert_eq!(back.block_size, 16);
        assert_eq!(back.fault.fault_prob, 0.0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sample().encode_into(&mut page);
        page[0] ^= 0xFF;
        assert!(Superblock::decode(&page).is_err());
    }

    #[test]
    fn torn_write_rejected_by_checksum() {
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sample().encode_into(&mut page);
        page[16] ^= 0x01; // flip one epoch bit
        let err = Superblock::decode(&page).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Superblock::decode(&[0u8; 16]).is_err());
    }

    #[test]
    fn absurd_word_count_rejected_despite_valid_checksum() {
        // A crafted file can carry any fields with a correct checksum; the
        // word-count bound must reject it before any size arithmetic.
        let mut sb = sample();
        sb.persistent_words = u64::MAX / 4;
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        let err = Superblock::decode(&page).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn clean_state_round_trips() {
        let mut sb = sample();
        assert!(!sb.clean());
        sb.state = STATE_CLEAN;
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        assert!(Superblock::decode(&page).unwrap().clean());
    }
}
