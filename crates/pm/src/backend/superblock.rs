//! The durable file's superblock.
//!
//! The first [`SUPERBLOCK_BYTES`] of a durable machine file describe the
//! machine stored after them: a magic/version header, the [`crate::PmConfig`]
//! dimensions and pool sizing needed to rebuild the deterministic address
//! -space layout, a *run epoch* counting the process lifetimes that have
//! attached to the file, and a state word distinguishing a clean shutdown
//! from a crash. All fields are little-endian `u64`s guarded by an FNV-1a
//! checksum, so a reopen can reject truncated, foreign, or torn files
//! before mapping any of their words into a machine.

use std::io;

use crate::config::PmConfig;

/// Bytes reserved for the superblock at the head of a durable file. One
/// 4 KiB page: the word array after it stays page-aligned, and a
/// superblock `msync` touches exactly one page.
pub const SUPERBLOCK_BYTES: usize = 4096;

/// `b"PPMDUR1\0"` as a little-endian word.
pub const MAGIC: u64 = u64::from_le_bytes(*b"PPMDUR1\0");

/// Current superblock format version.
pub const VERSION: u64 = 1;

/// Largest word count a superblock may describe: 2^46 words (the model's
/// 46-bit handle space, 512 TiB of words). Bounding this keeps the
/// `words * 8 + SUPERBLOCK_BYTES` file-size arithmetic far from overflow,
/// so a crafted superblock with an absurd word count is rejected here
/// instead of wrapping the size check and producing a bogus mapping.
pub const MAX_PERSISTENT_WORDS: u64 = 1 << 46;

/// State value: a run is (or was, if it crashed) attached to the file.
pub const STATE_IN_RUN: u64 = 1;

/// State value: the last attached run flushed and detached cleanly.
pub const STATE_CLEAN: u64 = 2;

/// Decoded superblock contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Format version of the file.
    pub version: u64,
    /// Number of process lifetimes that have attached to this file. The
    /// creating run is epoch 1; every reopen increments it.
    pub epoch: u64,
    /// [`STATE_IN_RUN`] or [`STATE_CLEAN`].
    pub state: u64,
    /// Processors `P` of the stored machine.
    pub procs: u64,
    /// Persistent capacity `M_p` in words.
    pub persistent_words: u64,
    /// Ephemeral capacity `M` in words (per processor).
    pub ephemeral_words: u64,
    /// Block size `B` in words.
    pub block_size: u64,
    /// Per-processor allocation-pool words, needed to replay the machine
    /// layout deterministically on reopen.
    pub pool_words: u64,
}

/// Field count serialized ahead of the checksum.
const FIELDS: usize = 10; // magic, version, epoch, state, procs, words, eph, block, pool, checksum

fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl Superblock {
    /// Describes a fresh machine: epoch 1, in-run state.
    ///
    /// # Panics
    /// Panics if the configuration exceeds [`MAX_PERSISTENT_WORDS`] — a
    /// configuration error, mirroring the reject in [`Superblock::decode`].
    pub fn describe(cfg: &PmConfig, pool_words: usize) -> Self {
        assert!(
            (cfg.persistent_words as u64) <= MAX_PERSISTENT_WORDS,
            "persistent_words {} exceeds the durable-file limit {MAX_PERSISTENT_WORDS}",
            cfg.persistent_words
        );
        Superblock {
            version: VERSION,
            epoch: 1,
            state: STATE_IN_RUN,
            procs: cfg.procs as u64,
            persistent_words: cfg.persistent_words as u64,
            ephemeral_words: cfg.ephemeral_words as u64,
            block_size: cfg.block_size as u64,
            pool_words: pool_words as u64,
        }
    }

    /// Reconstructs the machine configuration the file was created with.
    ///
    /// The fault adversary and validation mode are *run* properties, not
    /// *file* properties, so they come back at their defaults (no faults,
    /// strict validation); override with the [`PmConfig`] builders.
    pub fn to_config(&self) -> PmConfig {
        PmConfig {
            procs: self.procs as usize,
            persistent_words: self.persistent_words as usize,
            ephemeral_words: self.ephemeral_words as usize,
            block_size: self.block_size as usize,
            fault: crate::config::FaultConfig::none(),
            validate: crate::config::ValidateMode::default(),
        }
    }

    /// Whether the last attached run detached cleanly.
    pub fn clean(&self) -> bool {
        self.state == STATE_CLEAN
    }

    /// Serializes into the head of `page` (which must hold at least
    /// [`SUPERBLOCK_BYTES`]).
    pub fn encode_into(&self, page: &mut [u8]) {
        assert!(page.len() >= SUPERBLOCK_BYTES);
        let mut fields = [
            MAGIC,
            self.version,
            self.epoch,
            self.state,
            self.procs,
            self.persistent_words,
            self.ephemeral_words,
            self.block_size,
            self.pool_words,
            0,
        ];
        fields[FIELDS - 1] = fnv1a(&fields[..FIELDS - 1]);
        for (i, w) in fields.iter().enumerate() {
            page[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Parses and validates the head of `page`.
    pub fn decode(page: &[u8]) -> io::Result<Self> {
        if page.len() < FIELDS * 8 {
            return Err(bad("file too short for a superblock"));
        }
        let mut fields = [0u64; FIELDS];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = u64::from_le_bytes(page[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        if fields[0] != MAGIC {
            return Err(bad("not a ppm durable file (bad magic)"));
        }
        if fields[FIELDS - 1] != fnv1a(&fields[..FIELDS - 1]) {
            return Err(bad("superblock checksum mismatch (torn or corrupt)"));
        }
        let sb = Superblock {
            version: fields[1],
            epoch: fields[2],
            state: fields[3],
            procs: fields[4],
            persistent_words: fields[5],
            ephemeral_words: fields[6],
            block_size: fields[7],
            pool_words: fields[8],
        };
        if sb.version != VERSION {
            return Err(bad(&format!(
                "unsupported superblock version {} (this build reads {VERSION})",
                sb.version
            )));
        }
        if sb.block_size == 0 || sb.persistent_words == 0 || sb.procs == 0 {
            return Err(bad("superblock describes a degenerate machine"));
        }
        if sb.persistent_words > MAX_PERSISTENT_WORDS {
            return Err(bad(&format!(
                "superblock claims {} persistent words (limit {MAX_PERSISTENT_WORDS})",
                sb.persistent_words
            )));
        }
        Ok(sb)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

// ====================================================================
// Checkpoint records
// ====================================================================

/// `b"PPMCKPT1"` as a little-endian word: the checkpoint-record magic.
pub const CKPT_MAGIC: u64 = u64::from_le_bytes(*b"PPMCKPT1");

/// Byte offsets (within the superblock page) of the two alternating
/// checkpoint slots. The superblock proper occupies the first 80 bytes;
/// the slots use the rest of the page. Writes alternate by sequence
/// number, so a crash mid-write tears at most the slot being written and
/// the previous record survives in the other.
pub const CKPT_SLOT_OFFSETS: [usize; 2] = [1024, 2560];

/// Bytes per checkpoint slot.
pub const CKPT_SLOT_BYTES: usize = 1536;

/// Header words ahead of the variable-length arrays (magic, seq, epoch,
/// capsules, procs, frontier_len), plus one trailing checksum word.
const CKPT_HEADER_WORDS: usize = 6;

/// Largest `procs + frontier` a record can carry.
pub const CKPT_MAX_PAYLOAD_WORDS: usize = CKPT_SLOT_BYTES / 8 - CKPT_HEADER_WORDS - 1;

/// An epoch checkpoint: the durable resume point a quiesced run records
/// after reclaiming its frame pools.
///
/// The *meaning* of the fields is owed to the scheduler's checkpoint
/// protocol (`ppm-sched`'s `checkpoint` module): `watermarks[p]` is the
/// stable pool cursor of processor `p` — every live frame, join cell and
/// scratch word of the computation sits below it — and `frontier` is the
/// set of frame handles (deque jobs plus restart pointers) that, planted
/// on scrubbed deques with cursors at the watermarks, re-drive exactly
/// the computation's remaining work. A recovering session that cannot
/// rehydrate the crash frontier falls back to the newest valid record,
/// bounding replay distance to the work done since this checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Monotone checkpoint sequence number (1 for the first checkpoint of
    /// a file's lifetime).
    pub seq: u64,
    /// Run epoch that wrote the record.
    pub epoch: u64,
    /// Capsules the writing run had completed at the checkpoint (for
    /// replay-distance accounting).
    pub capsules: u64,
    /// Stable pool-cursor watermark per processor.
    pub watermarks: Vec<u64>,
    /// Frame handles of the checkpoint frontier.
    pub frontier: Vec<u64>,
}

impl CheckpointRecord {
    /// Whether the record fits a slot ([`CKPT_MAX_PAYLOAD_WORDS`]).
    pub fn fits(&self) -> bool {
        self.watermarks.len() + self.frontier.len() <= CKPT_MAX_PAYLOAD_WORDS
    }

    /// Which of the two slots this record (by sequence parity) writes to.
    pub fn slot(&self) -> usize {
        (self.seq % 2) as usize
    }

    /// Serializes into `slot` (at least [`CKPT_SLOT_BYTES`] long).
    ///
    /// # Panics
    /// Panics if the record does not [`CheckpointRecord::fits`] — callers
    /// skip writing oversized records instead.
    pub fn encode_into(&self, slot: &mut [u8]) {
        assert!(slot.len() >= CKPT_SLOT_BYTES);
        assert!(self.fits(), "checkpoint record exceeds slot capacity");
        let mut words: Vec<u64> =
            Vec::with_capacity(CKPT_HEADER_WORDS + 1 + self.watermarks.len() + self.frontier.len());
        words.extend([
            CKPT_MAGIC,
            self.seq,
            self.epoch,
            self.capsules,
            self.watermarks.len() as u64,
            self.frontier.len() as u64,
        ]);
        words.extend(&self.watermarks);
        words.extend(&self.frontier);
        words.push(fnv1a(&words));
        for (i, w) in words.iter().enumerate() {
            slot[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Parses and validates one slot. `Ok(None)` for a blank slot (no
    /// magic), `Err` for a torn or corrupt record.
    pub fn decode(slot: &[u8]) -> io::Result<Option<Self>> {
        if slot.len() < CKPT_HEADER_WORDS * 8 {
            return Err(bad("slot too short for a checkpoint header"));
        }
        let word_at = |i: usize| -> u64 {
            u64::from_le_bytes(slot[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
        };
        if word_at(0) != CKPT_MAGIC {
            return Ok(None);
        }
        if word_at(4).saturating_add(word_at(5)) > CKPT_MAX_PAYLOAD_WORDS as u64 {
            return Err(bad("checkpoint record claims an oversized payload"));
        }
        let procs = word_at(4) as usize;
        let frontier_len = word_at(5) as usize;
        let total = CKPT_HEADER_WORDS + procs + frontier_len + 1;
        if slot.len() < total * 8 {
            return Err(bad("slot too short for the claimed checkpoint payload"));
        }
        let body: Vec<u64> = (0..total - 1).map(word_at).collect();
        if word_at(total - 1) != fnv1a(&body) {
            return Err(bad("checkpoint record checksum mismatch (torn write)"));
        }
        Ok(Some(CheckpointRecord {
            seq: word_at(1),
            epoch: word_at(2),
            capsules: word_at(3),
            watermarks: (0..procs).map(|p| word_at(CKPT_HEADER_WORDS + p)).collect(),
            frontier: (0..frontier_len)
                .map(|f| word_at(CKPT_HEADER_WORDS + procs + f))
                .collect(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        Superblock::describe(&PmConfig::parallel(4, 1 << 20), 1 << 16)
    }

    #[test]
    fn encode_decode_round_trips() {
        let sb = sample();
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        assert_eq!(Superblock::decode(&page).unwrap(), sb);
    }

    #[test]
    fn config_round_trips_through_superblock() {
        let cfg = PmConfig::parallel(3, 1 << 18)
            .with_block_size(16)
            .with_ephemeral_words(512);
        let sb = Superblock::describe(&cfg, 4096);
        let back = sb.to_config();
        assert_eq!(back.procs, 3);
        assert_eq!(back.persistent_words, 1 << 18);
        assert_eq!(back.ephemeral_words, 512);
        assert_eq!(back.block_size, 16);
        assert_eq!(back.fault.fault_prob, 0.0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sample().encode_into(&mut page);
        page[0] ^= 0xFF;
        assert!(Superblock::decode(&page).is_err());
    }

    #[test]
    fn torn_write_rejected_by_checksum() {
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sample().encode_into(&mut page);
        page[16] ^= 0x01; // flip one epoch bit
        let err = Superblock::decode(&page).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Superblock::decode(&[0u8; 16]).is_err());
    }

    #[test]
    fn absurd_word_count_rejected_despite_valid_checksum() {
        // A crafted file can carry any fields with a correct checksum; the
        // word-count bound must reject it before any size arithmetic.
        let mut sb = sample();
        sb.persistent_words = u64::MAX / 4;
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        let err = Superblock::decode(&page).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    fn sample_record(seq: u64) -> CheckpointRecord {
        CheckpointRecord {
            seq,
            epoch: 3,
            capsules: 12_345,
            watermarks: vec![100, 200, 300],
            frontier: vec![0x4000, 0x4010, 0x8020],
        }
    }

    #[test]
    fn checkpoint_record_round_trips() {
        let rec = sample_record(7);
        let mut slot = vec![0u8; CKPT_SLOT_BYTES];
        rec.encode_into(&mut slot);
        assert_eq!(CheckpointRecord::decode(&slot).unwrap(), Some(rec));
    }

    #[test]
    fn blank_slot_decodes_to_none() {
        assert_eq!(
            CheckpointRecord::decode(&vec![0u8; CKPT_SLOT_BYTES]).unwrap(),
            None
        );
    }

    #[test]
    fn torn_checkpoint_record_is_an_error_not_a_record() {
        let mut slot = vec![0u8; CKPT_SLOT_BYTES];
        sample_record(9).encode_into(&mut slot);
        slot[8 * 8] ^= 0x40; // flip a frontier-handle bit
        let err = CheckpointRecord::decode(&slot).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn checkpoint_slots_alternate_by_sequence() {
        assert_eq!(sample_record(6).slot(), 0);
        assert_eq!(sample_record(7).slot(), 1);
    }

    #[test]
    fn oversized_checkpoint_payload_rejected() {
        let mut rec = sample_record(1);
        rec.frontier = vec![1; CKPT_MAX_PAYLOAD_WORDS];
        assert!(!rec.fits());
        // A crafted slot claiming an absurd payload is rejected before any
        // out-of-bounds word reads.
        let mut slot = vec![0u8; CKPT_SLOT_BYTES];
        sample_record(1).encode_into(&mut slot);
        slot[5 * 8..6 * 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(CheckpointRecord::decode(&slot).is_err());
    }

    #[test]
    fn checkpoint_slots_fit_the_superblock_page() {
        for off in CKPT_SLOT_OFFSETS {
            assert!(off >= FIELDS * 8, "slot {off} overlaps the superblock");
            assert!(off + CKPT_SLOT_BYTES <= SUPERBLOCK_BYTES);
        }
        assert!(CKPT_SLOT_OFFSETS[0] + CKPT_SLOT_BYTES <= CKPT_SLOT_OFFSETS[1]);
    }

    #[test]
    fn clean_state_round_trips() {
        let mut sb = sample();
        assert!(!sb.clean());
        sb.state = STATE_CLEAN;
        let mut page = vec![0u8; SUPERBLOCK_BYTES];
        sb.encode_into(&mut page);
        assert!(Superblock::decode(&page).unwrap().clean());
    }
}
