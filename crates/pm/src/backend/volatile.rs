//! The in-process backend: heap-allocated atomics.

use std::sync::atomic::AtomicU64;

use super::MemBackend;

/// Word storage on the process heap. Survives simulated (model-level)
/// faults, which never actually kill the process; lost on process exit.
/// This is the backend of every machine built without a path.
pub struct VolatileBackend {
    words: Box<[AtomicU64]>,
}

impl VolatileBackend {
    /// Allocates `len` zero-initialized words.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU64::new(0));
        VolatileBackend {
            words: v.into_boxed_slice(),
        }
    }
}

impl std::fmt::Debug for VolatileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VolatileBackend({} words)", self.words.len())
    }
}

impl MemBackend for VolatileBackend {
    fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    fn kind(&self) -> &'static str {
        "volatile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn zero_initialized_and_flushable() {
        let b = VolatileBackend::new(16);
        assert_eq!(b.words().len(), 16);
        assert!(b.words().iter().all(|w| w.load(Ordering::SeqCst) == 0));
        b.words()[3].store(7, Ordering::SeqCst);
        b.flush().unwrap();
        b.mark_clean().unwrap();
        assert_eq!(b.words()[3].load(Ordering::SeqCst), 7);
        assert!(b.path().is_none());
        assert!(b.superblock().is_none());
        assert_eq!(b.kind(), "volatile");
    }

    #[test]
    fn words_slice_is_stable() {
        let b = VolatileBackend::new(4);
        assert_eq!(b.words().as_ptr(), b.words().as_ptr());
    }
}
