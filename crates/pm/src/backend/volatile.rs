//! The in-process backend: heap-allocated atomics.

use std::sync::atomic::AtomicU64;

use parking_lot::Mutex;

use super::MemBackend;
use crate::lease::{ClusterHeader, Lease, MAX_SHARDS};
use crate::service::{ServiceHeader, QUIESCE_ACK_OFFSET};

/// Word storage on the process heap. Survives simulated (model-level)
/// faults, which never actually kill the process; lost on process exit.
/// This is the backend of every machine built without a path.
///
/// Carries an in-memory cluster-lease table mirroring the superblock-page
/// layout of the durable backend, so the sharded runtime's liveness logic
/// is exercisable by single-process tests (simulated fault domains)
/// without a machine file.
pub struct VolatileBackend {
    words: Box<[AtomicU64]>,
    cluster: Mutex<Option<ClusterHeader>>,
    leases: Mutex<[Option<Lease>; MAX_SHARDS]>,
    service: Mutex<Option<ServiceHeader>>,
    /// In-memory mirror of the superblock-page quiesce words (bytes
    /// 832..1024), indexed by `(byte_off - QUIESCE_ACK_OFFSET) / 8`.
    quiesce: [AtomicU64; 24],
}

impl VolatileBackend {
    /// Allocates `len` zero-initialized words.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU64::new(0));
        VolatileBackend {
            words: v.into_boxed_slice(),
            cluster: Mutex::new(None),
            leases: Mutex::new([None; MAX_SHARDS]),
            service: Mutex::new(None),
            quiesce: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn quiesce_slot(&self, byte_off: usize) -> &AtomicU64 {
        let idx = byte_off
            .checked_sub(QUIESCE_ACK_OFFSET)
            .expect("quiesce offset below the quiesce region")
            / 8;
        &self.quiesce[idx]
    }
}

impl std::fmt::Debug for VolatileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VolatileBackend({} words)", self.words.len())
    }
}

impl MemBackend for VolatileBackend {
    fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    fn write_cluster_header(&self, header: &ClusterHeader) -> std::io::Result<bool> {
        *self.cluster.lock() = Some(*header);
        Ok(true)
    }

    fn read_cluster_header(&self) -> Option<ClusterHeader> {
        *self.cluster.lock()
    }

    fn write_lease(&self, shard: usize, lease: &Lease) -> std::io::Result<()> {
        self.leases.lock()[shard] = Some(*lease);
        Ok(())
    }

    fn read_lease(&self, shard: usize) -> Option<Lease> {
        self.leases.lock()[shard]
    }

    fn write_service_header(&self, header: &ServiceHeader) -> std::io::Result<bool> {
        *self.service.lock() = Some(*header);
        Ok(true)
    }

    fn read_service_header(&self) -> Option<ServiceHeader> {
        *self.service.lock()
    }

    fn write_quiesce_word(&self, byte_off: usize, val: u64) {
        self.quiesce_slot(byte_off)
            .store(val, std::sync::atomic::Ordering::SeqCst);
    }

    fn read_quiesce_word(&self, byte_off: usize) -> u64 {
        self.quiesce_slot(byte_off)
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    fn kind(&self) -> &'static str {
        "volatile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::LeaseState;
    use std::sync::atomic::Ordering;

    #[test]
    fn zero_initialized_and_flushable() {
        let b = VolatileBackend::new(16);
        assert_eq!(b.words().len(), 16);
        assert!(b.words().iter().all(|w| w.load(Ordering::SeqCst) == 0));
        b.words()[3].store(7, Ordering::SeqCst);
        b.flush().unwrap();
        b.mark_clean().unwrap();
        assert_eq!(b.words()[3].load(Ordering::SeqCst), 7);
        assert!(b.path().is_none());
        assert!(b.superblock().is_none());
        assert_eq!(b.kind(), "volatile");
    }

    #[test]
    fn words_slice_is_stable() {
        let b = VolatileBackend::new(4);
        assert_eq!(b.words().as_ptr(), b.words().as_ptr());
    }

    #[test]
    fn cluster_state_round_trips_in_memory() {
        let b = VolatileBackend::new(4);
        assert!(b.read_cluster_header().is_none());
        assert!(b.read_lease(0).is_none());
        let h = ClusterHeader {
            shards: 2,
            lease_ms: 500,
            deque_slots: 64,
            seed: 9,
        };
        assert!(b.write_cluster_header(&h).unwrap());
        assert_eq!(b.read_cluster_header(), Some(h));
        let l = Lease {
            state: LeaseState::Alive,
            seq: 1,
            deadline_ms: 42,
        };
        b.write_lease(1, &l).unwrap();
        assert_eq!(b.read_lease(1), Some(l));
        assert!(b.read_lease(0).is_none());
    }
}
