//! Criterion benches: native vs PM-simulated execution rates for the
//! Theorem 3.2–3.4 machines.

use criterion::{criterion_group, criterion_main, Criterion};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig, ValidateMode};
use ppm_sim::em::programs::block_sum_built;
use ppm_sim::ram::programs::sum_array;
use ppm_sim::{
    run_both, run_native_cache, run_native_em, simulate_cache_on_pm, simulate_em_on_pm,
    AccessPattern, CachePmLayout, EmPmLayout,
};

fn quiet(p: PmConfig) -> PmConfig {
    p.with_validate(ValidateMode::Off)
}

fn bench_ram(c: &mut Criterion) {
    let n = 200;
    let prog = sum_array(n);
    let mut init: Vec<i64> = (0..n as i64).collect();
    init.push(0);
    let mut g = c.benchmark_group("simulations/ram");
    g.sample_size(10);
    g.bench_function("native", |b| {
        b.iter(|| {
            let mut mem = init.clone();
            std::hint::black_box(ppm_sim::run_native(&prog, &mut mem, 1 << 22))
        })
    });
    g.bench_function("pm_faultless", |b| {
        b.iter(|| {
            let m = Machine::new(quiet(PmConfig::parallel(1, 1 << 21)));
            std::hint::black_box(run_both(&m, &prog, &init, 1 << 22))
        })
    });
    g.bench_function("pm_f_0.01", |b| {
        b.iter(|| {
            let m = Machine::new(quiet(
                PmConfig::parallel(1, 1 << 21).with_fault(FaultConfig::soft(0.01, 3)),
            ));
            std::hint::black_box(run_both(&m, &prog, &init, 1 << 22))
        })
    });
    g.finish();
}

fn bench_em(c: &mut Criterion) {
    let (nb, m_sim, b) = (64usize, 64usize, 8usize);
    let prog = block_sum_built(nb, m_sim, b);
    let ext: Vec<i64> = vec![1; (nb + 1) * b];
    let mut g = c.benchmark_group("simulations/em");
    g.sample_size(10);
    g.bench_function("native", |bch| {
        bch.iter(|| {
            let mut e = ext.clone();
            std::hint::black_box(run_native_em(&prog, &mut e, 1 << 24))
        })
    });
    g.bench_function("pm_faultless", |bch| {
        bch.iter(|| {
            let m = Machine::new(quiet(PmConfig::parallel(1, 1 << 21).with_block_size(b)));
            let layout = EmPmLayout::new(&m, &prog, ext.len());
            layout.load_ext(&m, &ext);
            std::hint::black_box(simulate_em_on_pm(&m, &prog, layout, 1 << 24).unwrap())
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let pattern = AccessPattern::Random {
        n: 4096,
        range: 512,
        seed: 2,
    };
    let (m_sim, b) = (64usize, 8usize);
    let mut g = c.benchmark_group("simulations/cache");
    g.sample_size(10);
    g.bench_function("native_lru", |bch| {
        bch.iter(|| {
            let mut mem = vec![0u64; 512];
            std::hint::black_box(run_native_cache(&pattern, m_sim, b, &mut mem))
        })
    });
    g.bench_function("pm_faultless", |bch| {
        bch.iter(|| {
            let m = Machine::new(quiet(
                PmConfig::parallel(1, 1 << 21)
                    .with_block_size(b)
                    .with_ephemeral_words(m_sim),
            ));
            let layout = CachePmLayout::new(&m, 512, m_sim);
            simulate_cache_on_pm(&m, &pattern, layout).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ram, bench_em, bench_cache);
criterion_main!(benches);
