//! Criterion benches: wall-clock time of the four §7 algorithms on the
//! simulated machine, against their plain sequential oracles (which pay
//! no model costs — the gap is the simulator's price, not the
//! algorithms').

use criterion::{criterion_group, criterion_main, Criterion};
use ppm_algs::matmul::matmul_pool_words;
use ppm_algs::sort::samplesort_pool_words;
use ppm_algs::{
    matmul_seq, merge_seq, prefix_sum_seq, MatMul, Merge, MergeSort, PrefixSum, SampleSort,
};
use ppm_core::Machine;
use ppm_pm::{PmConfig, ValidateMode};
use ppm_sched::{Runtime, SchedConfig};

fn cfg(procs: usize, words: usize, m_eph: usize) -> PmConfig {
    PmConfig::parallel(procs, words)
        .with_ephemeral_words(m_eph)
        .with_validate(ValidateMode::Off)
}

fn bench_prefix(c: &mut Criterion) {
    let n = 1 << 14;
    let data: Vec<u64> = (0..n as u64).collect();
    let mut g = c.benchmark_group("algorithms/prefix_sum");
    g.sample_size(10);
    g.bench_function("pm_model_p4", |b| {
        b.iter(|| {
            let m = Machine::new(cfg(4, 1 << 24, 4096));
            let ps = PrefixSum::new(&m, n);
            ps.load_input(&m, &data);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 14));
            let rep = rt.run_or_replay(&ps.comp());
            assert!(rep.completed());
        })
    });
    g.bench_function("sequential_oracle", |b| {
        b.iter(|| std::hint::black_box(prefix_sum_seq(&data)))
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let n = 1 << 13;
    let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 17) % 100_000).collect();
    let mut b2: Vec<u64> = (0..n as u64).map(|i| (i * 31) % 100_000).collect();
    a.sort_unstable();
    b2.sort_unstable();
    let mut g = c.benchmark_group("algorithms/merge");
    g.sample_size(10);
    g.bench_function("pm_model_p4", |bch| {
        bch.iter(|| {
            let m = Machine::new(cfg(4, 1 << 24, 4096));
            let mg = Merge::new(&m, n, n);
            mg.load_inputs(&m, &a, &b2);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 14));
            let rep = rt.run_or_replay(&mg.comp());
            assert!(rep.completed());
        })
    });
    g.bench_function("sequential_oracle", |bch| {
        bch.iter(|| std::hint::black_box(merge_seq(&a, &b2)))
    });
    g.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let n = 1 << 12;
    let data: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % 1_000_000)
        .collect();
    let mut g = c.benchmark_group("algorithms/sort");
    g.sample_size(10);
    g.bench_function("mergesort_pm_p4", |b| {
        b.iter(|| {
            let m = Machine::new(cfg(4, 1 << 24, 512));
            let ms = MergeSort::new(&m, n);
            ms.load_input(&m, &data);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 14));
            let rep = rt.run_or_replay(&ms.comp());
            assert!(rep.completed());
        })
    });
    g.bench_function("samplesort_pm_p4", |b| {
        b.iter(|| {
            let m = Machine::with_pool_words(cfg(4, 1 << 25, 512), samplesort_pool_words(n));
            let ss = SampleSort::new(&m, n);
            ss.load_input(&m, &data);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 15));
            let rep = rt.run_or_replay(&ss.comp());
            assert!(rep.completed());
        })
    });
    g.bench_function("std_sort_oracle", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            std::hint::black_box(v)
        })
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let n = 48;
    let a: Vec<u64> = (0..(n * n) as u64).map(|i| i % 19).collect();
    let b2: Vec<u64> = (0..(n * n) as u64).map(|i| (i * 5) % 23).collect();
    let mut g = c.benchmark_group("algorithms/matmul");
    g.sample_size(10);
    g.bench_function("pm_model_p4", |bch| {
        bch.iter(|| {
            let m = Machine::with_pool_words(cfg(4, 1 << 25, 256), matmul_pool_words(n, 256));
            let mm = MatMul::new(&m, n);
            mm.load_inputs(&m, &a, &b2);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 14));
            let rep = rt.run_or_replay(&mm.comp());
            assert!(rep.completed());
        })
    });
    g.bench_function("sequential_oracle", |bch| {
        bch.iter(|| std::hint::black_box(matmul_seq(&a, &b2, n)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prefix,
    bench_merge,
    bench_sorts,
    bench_matmul
);
criterion_main!(benches);
