//! Criterion benches: the fault-tolerant scheduler against the ABP
//! baseline, and its scaling in P and f.
//!
//! The paper's claim is about *model cost* (covered by the `exp_*`
//! harnesses); these benches measure the wall-clock price of the capsule
//! machinery on a real machine, which the paper conjectures is "a modest
//! increase in the total cost".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region, ValidateMode};
use ppm_sched::abp::run_computation_abp;
use ppm_sched::{Runtime, SchedConfig};

fn fanout(r: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| comp_step("leaf", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
            .collect(),
    )
}

fn machine(procs: usize, f: f64) -> Machine {
    let fault = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 7)
    };
    Machine::new(
        PmConfig::parallel(procs, 1 << 22)
            .with_fault(fault)
            .with_validate(ValidateMode::Off),
    )
}

fn bench_ft_vs_abp(c: &mut Criterion) {
    let n = 256;
    let mut g = c.benchmark_group("scheduler/ft_vs_abp");
    g.sample_size(10);
    for procs in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("fault_tolerant", procs),
            &procs,
            |b, &p| {
                b.iter(|| {
                    let m = machine(p, 0.0);
                    let r = m.alloc_region(n);
                    let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
                    let rep = rt.run_or_replay(&fanout(r, n));
                    assert!(rep.completed());
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("abp_baseline", procs), &procs, |b, &p| {
            b.iter(|| {
                let m = machine(p, 0.0);
                let r = m.alloc_region(n);
                let rep = run_computation_abp(&m, &fanout(r, n), 1 << 12, 7);
                assert!(rep.completed);
            })
        });
    }
    g.finish();
}

fn bench_fault_rates(c: &mut Criterion) {
    let n = 256;
    let mut g = c.benchmark_group("scheduler/fault_rate");
    g.sample_size(10);
    for f in [0.0f64, 0.01, 0.03] {
        g.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            b.iter(|| {
                let m = machine(2, f);
                let r = m.alloc_region(n);
                let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
                let rep = rt.run_or_replay(&fanout(r, n));
                assert!(rep.completed());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ft_vs_abp, bench_fault_rates);
criterion_main!(benches);
