//! # `ppm-bench` — experiment harness for the Parallel-PM reproduction
//!
//! One binary per experiment in DESIGN.md's per-experiment index
//! (`cargo run --release -p ppm-bench --bin exp_<id>`), plus criterion
//! benches under `benches/`. This library holds the shared table-printing
//! and measurement helpers.

#![warn(missing_docs)]

pub mod cli;
pub mod report;

pub use report::BenchReport;

use std::fmt::Display;

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("| {} |", line.join(" | "));
}

/// Prints a table header with a rule.
pub fn header(names: &[&str], widths: &[usize]) {
    row(
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", rule.join("-|-"));
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats any displayable value.
pub fn s<T: Display>(v: T) -> String {
    v.to_string()
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper claim: {claim}\n");
}

/// Geometric mean of a slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(s(42), "42");
    }
}
