//! E7 — Theorem 7.2: merging in O(n/B) work, O(log n) depth, O(log n)
//! maximum capsule work.
//!
//! Sweeps `n`, reporting work per n/B (constant up to the lower-order
//! binary-search term) and C against log₂ n (the dual-binary-search
//! capsule), plus verified faulty runs.

use ppm_algs::{merge_seq, Merge};
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sched::{Runtime, SchedConfig};

const W: [usize; 8] = [8, 4, 7, 10, 9, 5, 8, 8];

fn sorted(seed: u64, n: usize) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9).wrapping_add(seed)) % 1_000_000)
        .collect();
    v.sort_unstable();
    v
}

fn run_case(n: usize, b: usize, f: f64, scrape: &mut String) -> (f64, u64) {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 17)
    };
    let m = Machine::new(
        PmConfig::parallel(1, 1 << 24)
            .with_block_size(b)
            .with_fault(cfg),
    );
    let mg = Merge::new(&m, n, n);
    let (a, bb) = (sorted(1, n), sorted(2, n));
    mg.load_inputs(&m, &a, &bb);
    let rt = Runtime::new(m, SchedConfig::with_slots(1 << 15));
    let rep = rt.run_or_replay(&mg.comp());
    assert!(rep.completed());
    assert_eq!(mg.read_output(rt.machine()), merge_seq(&a, &bb), "n={n}");
    let st = rep.stats();
    let total = 2 * n;
    row(
        &[
            s(total),
            s(b),
            s(f),
            s(st.total_work()),
            f2(st.total_work() as f64 / (total as f64 / b as f64)),
            s(st.max_capsule_work),
            f2((total as f64).log2()),
            s(st.soft_faults),
        ],
        &W,
    );
    *scrape = rt.machine().obs().registry().render();
    (
        st.total_work() as f64 / (total as f64 / b as f64),
        st.max_capsule_work,
    )
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E7 (Theorem 7.2)",
        "parallel merging by dual binary search",
        "O(n/B) work, O(log n) depth, O(log n) maximum capsule work",
    );
    header(
        &["n", "B", "f", "W_f", "W/(n/B)", "C", "log2 n", "faults"],
        &W,
    );

    let mut report = BenchReport::new("exp_t72_merge");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[1 << 9, 1 << 11, 1 << 13, 1 << 15]) {
        let (per_nb, c) = run_case(n, 8, 0.0, &mut last_scrape);
        report
            .note("n", 2 * n)
            .metric("work_per_nb_x", per_nb)
            .metric("max_capsule_work_words", c as f64);
    }
    println!();
    for b in [4usize, 16] {
        run_case(1 << 13, b, 0.0, &mut last_scrape);
    }
    println!();
    run_case(1 << 12, 8, 0.002, &mut last_scrape);
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W/(n/B) is a near-constant (slowly decaying lower-order");
    println!("search term), and C tracks ~2·log2 n + O(1) — the binary-search capsule");
    println!("— exactly Theorem 7.2's profile.");
}
