//! Bench-regression gate: compares the `BENCH_*.json` reports of the
//! current run against the checked-in baseline.
//!
//! ```text
//! cargo run -p ppm-bench --bin bench_check -- \
//!     --dir=bench_out --baseline=bench/baseline.json [--threshold=1.5] [--update]
//! ```
//!
//! The baseline is itself a [`ppm_bench::BenchReport`]-formatted file
//! whose metric keys are `"<experiment>.<metric>"`. Every baselined
//! metric is lower-is-better (times, overhead factors); the gate fails
//! when `current > threshold * baseline`. The threshold is generous
//! (default 1.5x) and the checked-in baselines themselves carry slack
//! over measured values, so the gate catches real regressions (3x+)
//! rather than CI-runner noise. A baselined metric missing from the
//! current run also fails — it means an experiment stopped emitting.
//!
//! `--update` rewrites the baseline from the current reports (times the
//! slack factor), for refreshing after an intentional change. The
//! scrape-embedded `obs.*` series are excluded — they are run-to-run
//! nondeterministic observability snapshots, not benchmark results.
//!
//! `--trend` prints a GitHub-flavored markdown table of current-vs-
//! baseline deltas instead of gating — CI appends it to the job summary
//! (`>> "$GITHUB_STEP_SUMMARY"`) so every run shows where each metric
//! sits inside its regression allowance. Trend mode always exits 0.

use std::path::PathBuf;
use std::process::exit;

use ppm_bench::BenchReport;

/// Slack multiplied into measured values when `--update` writes a new
/// baseline, so freshly recorded baselines do not sit at the noise edge.
const UPDATE_SLACK: f64 = 2.0;

/// Slack for wall-clock metrics (`*_ms` / `*_us`): millisecond-scale
/// timings on shared CI runners routinely vary several-fold with host
/// load, where the model-cost metrics (transfer counts and their ratios)
/// are deterministic and can be held to [`UPDATE_SLACK`].
const WALL_SLACK: f64 = 10.0;

/// Picks the `--update` slack for a metric by its unit suffix. One
/// exception: the steal-backoff p99 is produced by a deterministic
/// policy probe and quantized to power-of-two histogram buckets — it is
/// exactly reproducible despite its wall-clock unit, so it stays tight.
fn update_slack(key: &str) -> f64 {
    if key.ends_with("steal_backoff_p99_us") {
        UPDATE_SLACK
    } else if key.ends_with("_ms") || key.ends_with("_us") {
        WALL_SLACK
    } else {
        UPDATE_SLACK
    }
}

struct Args {
    dir: PathBuf,
    baseline: PathBuf,
    threshold: f64,
    update: bool,
    trend: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: PathBuf::from("."),
        baseline: PathBuf::from("bench/baseline.json"),
        threshold: 1.5,
        update: false,
        trend: false,
    };
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--dir=") {
            args.dir = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--baseline=") {
            args.baseline = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            args.threshold = v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --threshold value `{v}`");
                exit(2);
            });
        } else if arg == "--update" {
            args.update = true;
        } else if arg == "--trend" {
            args.trend = true;
        } else {
            eprintln!(
                "unknown argument `{arg}`; accepted: --dir= --baseline= --threshold= --update --trend"
            );
            exit(2);
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let reports = BenchReport::load_dir(&args.dir).unwrap_or_else(|e| {
        eprintln!("cannot read bench dir {}: {e}", args.dir.display());
        exit(2);
    });
    if reports.is_empty() {
        eprintln!(
            "no BENCH_*.json reports under {} — did the experiments run with \
             PPM_BENCH_DIR set?",
            args.dir.display()
        );
        exit(2);
    }
    println!(
        "bench_check: {} report(s) under {}",
        reports.len(),
        args.dir.display()
    );

    if args.update {
        let mut baseline = BenchReport::new("baseline");
        baseline.note("threshold_hint", args.threshold);
        for rep in &reports {
            for (k, v) in &rep.metrics {
                // Scrape-embedded series (`obs.*`) are observability
                // snapshots riding along in the artifact, not benchmark
                // results: steal counts, per-proc work splits and
                // histogram buckets vary run to run under parallel
                // scheduling, so baselining them would make the gate
                // flaky. They stay in BENCH_*.json, just ungated.
                if k.starts_with("obs.") {
                    continue;
                }
                baseline.metric(format!("{}.{k}", rep.name), v * update_slack(k));
            }
        }
        if let Some(parent) = args.baseline.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&args.baseline, baseline.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", args.baseline.display());
            exit(2);
        });
        println!(
            "baseline rewritten from current reports (x{UPDATE_SLACK} slack, \
             x{WALL_SLACK} for wall-clock metrics): {}",
            args.baseline.display()
        );
        return;
    }

    let text = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {}: {e}", args.baseline.display());
        exit(2);
    });
    let baseline = BenchReport::parse(&text).unwrap_or_else(|| {
        eprintln!("baseline {} is not a bench report", args.baseline.display());
        exit(2);
    });

    let current = |key: &str| -> Option<f64> {
        let (exp, metric) = key.split_once('.')?;
        reports
            .iter()
            .find(|r| r.name == exp)
            .and_then(|r| r.metrics.get(metric).copied())
    };

    if args.trend {
        // Markdown for the CI job summary: where each baselined metric
        // sits relative to its allowance. Lower is better everywhere, so
        // negative deltas are headroom and >0% is drift toward the gate
        // (which fires at +{(threshold-1)*100}% past the slack-padded
        // baseline). Never fails — the gating run below is separate.
        println!("### Bench trend (gate: {}x baseline)\n", args.threshold);
        println!("| metric | current | baseline | delta |");
        println!("|:---|---:|---:|---:|");
        for (key, base) in &baseline.metrics {
            match current(key) {
                None => println!("| `{key}` | — | {base:.3} | missing |"),
                Some(cur) => {
                    let delta = if *base > 0.0 {
                        100.0 * (cur - base) / base
                    } else {
                        0.0
                    };
                    println!("| `{key}` | {cur:.3} | {base:.3} | {delta:+.1}% |");
                }
            }
        }
        let extra: usize = reports
            .iter()
            .map(|r| {
                r.metrics
                    .keys()
                    .filter(|k| !baseline.metrics.contains_key(&format!("{}.{k}", r.name)))
                    .count()
            })
            .sum();
        println!("\n{extra} unbaselined metric(s) also emitted (see BENCH_*.json artifacts).");
        return;
    }

    let mut failures = 0usize;
    println!(
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "metric", "current", "baseline", "ratio"
    );
    for (key, base) in &baseline.metrics {
        match current(key) {
            None => {
                failures += 1;
                println!("{key:<44} {:>12} {base:>12.3} {:>8}  MISSING", "-", "-");
            }
            Some(cur) => {
                let ratio = if *base > 0.0 { cur / base } else { 0.0 };
                let ok = cur <= base * args.threshold;
                if !ok {
                    failures += 1;
                }
                println!(
                    "{key:<44} {cur:>12.3} {base:>12.3} {ratio:>7.2}x  {}",
                    if ok { "ok" } else { "REGRESSION" }
                );
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "\nbench_check FAILED: {failures} metric(s) regressed past {}x (or went missing)",
            args.threshold
        );
        exit(1);
    }
    println!(
        "\nbench_check passed: all {} baselined metric(s) within {}x",
        baseline.metrics.len(),
        args.threshold
    );
}
