//! E9 — Theorem 7.4: matrix multiply in O(n³/(B√M)) work with O(M^{3/2})
//! maximum capsule work.
//!
//! Sweeps n at fixed M (work should scale as n³) and M at fixed n (work
//! should scale as 1/√M), reporting the normalized constant and C.

use ppm_algs::matmul::matmul_pool_words;
use ppm_algs::{matmul_seq, MatMul};
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sched::{Runtime, SchedConfig};

const W: [usize; 7] = [5, 6, 7, 11, 13, 7, 8];

fn run_case(n: usize, m_eph: usize, f: f64, verify: bool, scrape: &mut String) -> f64 {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 13)
    };
    let b = 8;
    let machine = Machine::with_pool_words(
        PmConfig::parallel(1, 1 << 25)
            .with_block_size(b)
            .with_ephemeral_words(m_eph)
            .with_fault(cfg),
        matmul_pool_words(n, m_eph),
    );
    let mm = MatMul::new(&machine, n);
    let a: Vec<u64> = (0..(n * n) as u64).map(|i| i % 17).collect();
    let bb: Vec<u64> = (0..(n * n) as u64).map(|i| (3 * i) % 13).collect();
    mm.load_inputs(&machine, &a, &bb);
    let rt = Runtime::new(machine, SchedConfig::with_slots(1 << 14));
    let rep = rt.run_or_replay(&mm.comp());
    assert!(rep.completed());
    if verify {
        assert_eq!(
            mm.read_output(rt.machine()),
            matmul_seq(&a, &bb, n),
            "n={n}"
        );
    }
    let st = rep.stats();
    let model = (n as f64).powi(3) / (b as f64 * (m_eph as f64).sqrt());
    row(
        &[
            s(n),
            s(m_eph),
            s(f),
            s(st.total_work()),
            f2(st.total_work() as f64 / model),
            s(st.max_capsule_work),
            s(st.soft_faults),
        ],
        &W,
    );
    *scrape = rt.machine().obs().registry().render();
    st.total_work() as f64 / model
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E9 (Theorem 7.4)",
        "8-way recursive matrix multiplication",
        "O(n^3/(B sqrt(M))) work, O(M^{3/2}) maximum capsule work",
    );
    header(&["n", "M", "f", "W_f", "W/model", "C", "faults"], &W);

    // n sweep at fixed M.
    let mut report = BenchReport::new("exp_t74_matmul");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[16usize, 32, 64, 128]) {
        let per_model = run_case(n, 64, 0.0, n <= 64, &mut last_scrape);
        report.note("n", n).metric("work_per_model_x", per_model);
    }
    println!();
    // M sweep at fixed n: work should drop like 1/sqrt(M).
    for m_eph in [64usize, 256, 1024] {
        run_case(64, m_eph, 0.0, false, &mut last_scrape);
    }
    println!();
    run_case(32, 64, 0.002, true, &mut last_scrape);
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W/model (model = n^3/(B*sqrt(M))) is a stable constant");
    println!("across 8x of n — 512x of n^3 — confirming the cubic work term. The");
    println!("M sweep shows work falling *at least* as fast as 1/sqrt(M); below the");
    println!("tall-cache regime (M < B^2-ish, here M=64 with B=8) per-row partial-");
    println!("block transfers add a finite-size surcharge that vanishes as M grows,");
    println!("matching the paper's note that the algorithm assumes M > B^2.");
}
