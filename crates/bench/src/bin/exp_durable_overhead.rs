//! Durable-vs-volatile overhead: what does file-backed persistence cost?
//!
//! Runs the same fork-join computation on (a) a volatile machine (words in
//! process heap) and (b) a durable machine (words `MAP_SHARED`-mapped onto
//! a file), and reports wall-clock means plus the cost of the explicit
//! `flush()` (`msync`) durability boundary. Expectation: the mapped page
//! cache makes per-access overhead small — the durability tax is
//! concentrated in `flush`.
//!
//! `cargo run --release -p ppm-bench --bin exp_durable_overhead`

use std::time::{Duration, Instant};

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig};

const PROCS: usize = 4;
const WORDS: usize = 1 << 21;
const TRIALS: usize = 5;

fn build_comp(out: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("work", move |ctx: &mut ProcCtx| {
                    // A read-modify-chain per task: real external traffic. The
                    // read stride 17 is odd and n is a power of two, so a
                    // task never reads the cell it writes (conflict free).
                    let mut acc = 0u64;
                    for k in 1..=32 {
                        acc = acc.wrapping_add(ctx.pread(out.at((i + k * 17) % n))?);
                    }
                    ctx.pwrite(out.at(i), acc.wrapping_add(i as u64 + 1))
                })
            })
            .collect(),
    )
}

struct Measured {
    run_mean: Duration,
    flush_mean: Duration,
}

fn run_trials(cli: &ppm_bench::cli::Cli, n: usize, durable: bool) -> Measured {
    let mut run_total = Duration::ZERO;
    let mut flush_total = Duration::ZERO;
    let trials = cli.trials(TRIALS);
    let procs = cli.procs(PROCS);
    for trial in 0..trials {
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "ppm-durable-overhead-{}-{trial}.ppm",
                std::process::id()
            ));
            p
        };
        let m = if durable {
            Machine::create_durable(PmConfig::parallel(procs, WORDS), &path)
                .expect("create durable machine")
        } else {
            Machine::new(PmConfig::parallel(procs, WORDS))
        };
        let out = m.alloc_region(n);
        let comp = build_comp(out, n);
        let start = Instant::now();
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&comp);
        run_total += start.elapsed();
        assert!(rep.completed());
        let start = Instant::now();
        rt.flush().expect("flush");
        flush_total += start.elapsed();
        drop(rt);
        if durable {
            let _ = std::fs::remove_file(&path);
        }
    }
    Measured {
        run_mean: run_total / trials as u32,
        flush_mean: flush_total / trials as u32,
    }
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E-DUR",
        "durable (mmap) vs volatile backend overhead",
        "persistence via a shared file mapping costs little during the run; \
         the durability tax is the explicit msync boundary",
    );
    if !cfg!(unix) {
        println!("durable backend needs unix mmap; skipping");
        return;
    }
    let widths = [8, 12, 14, 14, 14, 10];
    header(
        &[
            "tasks",
            "backend",
            "run mean",
            "flush mean",
            "run+flush",
            "overhead",
        ],
        &widths,
    );
    let mut report = BenchReport::new("exp_durable_overhead");
    for n in cli.cap_sizes(&[256usize, 1024, 4096]) {
        let vol = run_trials(&cli, n, false);
        let dur = run_trials(&cli, n, true);
        let overhead = (dur.run_mean + dur.flush_mean).as_secs_f64()
            / (vol.run_mean + vol.flush_mean).as_secs_f64();
        report
            .note("n", n)
            .metric("durable_overhead_x", overhead)
            .metric_ms("durable_flush_ms", dur.flush_mean)
            .metric_ms("durable_run_ms", dur.run_mean);
        row(
            &[
                s(n),
                s("volatile"),
                s(format!("{:?}", vol.run_mean)),
                s(format!("{:?}", vol.flush_mean)),
                s(format!("{:?}", vol.run_mean + vol.flush_mean)),
                s("1.00x"),
            ],
            &widths,
        );
        row(
            &[
                s(n),
                s("mmap"),
                s(format!("{:?}", dur.run_mean)),
                s(format!("{:?}", dur.flush_mean)),
                s(format!("{:?}", dur.run_mean + dur.flush_mean)),
                s(format!("{}x", f2(overhead))),
            ],
            &widths,
        );
    }
    report.emit();
}
