//! Durable-vs-volatile overhead: what does file-backed persistence cost?
//!
//! Runs the same fork-join computation on (a) a volatile machine (words in
//! process heap) and (b) a durable machine (words `MAP_SHARED`-mapped onto
//! a file), and reports wall-clock means plus the cost of the explicit
//! `flush()` (`msync`) durability boundary. Expectation: the mapped page
//! cache makes per-access overhead small — the durability tax is
//! concentrated in `flush`.
//!
//! `cargo run --release -p ppm-bench --bin exp_durable_overhead`

use std::time::{Duration, Instant};

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig};

const PROCS: usize = 4;
const WORDS: usize = 1 << 21;
const TRIALS: usize = 5;

fn build_comp(out: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("work", move |ctx: &mut ProcCtx| {
                    // A read-modify-chain per task: real external traffic. The
                    // read stride 17 is odd and n is a power of two, so a
                    // task never reads the cell it writes (conflict free).
                    let mut acc = 0u64;
                    for k in 1..=32 {
                        acc = acc.wrapping_add(ctx.pread(out.at((i + k * 17) % n))?);
                    }
                    ctx.pwrite(out.at(i), acc.wrapping_add(i as u64 + 1))
                })
            })
            .collect(),
    )
}

struct Measured {
    run_mean: Duration,
    run_min: Duration,
    flush_mean: Duration,
    /// Fastest `/metrics` scrape over the trials (observed runs only).
    scrape_min: Option<Duration>,
    /// Final metrics snapshot (Prometheus text) from the last trial.
    scrape: String,
}

/// Runs the workload `trials` times. With `observed` set, each trial also
/// enables per-event tracing (sample = 1) and serves `/metrics` from a
/// live exporter on an ephemeral port, scraping it once after the run —
/// the fully instrumented configuration whose run-time delta against a
/// plain run the baseline gates.
fn run_trials(cli: &ppm_bench::cli::Cli, n: usize, durable: bool, observed: bool) -> Measured {
    let mut run_total = Duration::ZERO;
    let mut run_min = Duration::MAX;
    let mut flush_total = Duration::ZERO;
    let mut scrape_min: Option<Duration> = None;
    let mut scrape = String::new();
    let trials = cli.trials(TRIALS);
    let procs = cli.procs(PROCS);
    for trial in 0..trials {
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "ppm-durable-overhead-{}-{trial}.ppm",
                std::process::id()
            ));
            p
        };
        let m = if durable {
            Machine::create_durable(PmConfig::parallel(procs, WORDS), &path)
                .expect("create durable machine")
        } else {
            Machine::new(PmConfig::parallel(procs, WORDS))
        };
        let out = m.alloc_region(n);
        let comp = build_comp(out, n);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let server = if observed {
            let obs = rt.machine().obs();
            obs.tracer().enable();
            obs.tracer().set_sample(1);
            obs.serve(0).ok() // port 0: the OS picks an ephemeral port
        } else {
            None
        };
        let start = Instant::now();
        let rep = rt.run_or_replay(&comp);
        let elapsed = start.elapsed();
        run_total += elapsed;
        run_min = run_min.min(elapsed);
        assert!(rep.completed());
        if let Some(srv) = &server {
            let t0 = Instant::now();
            if let Ok(text) = ppm_obs::http_get(srv.addr(), "/metrics", Duration::from_millis(500))
            {
                let took = t0.elapsed();
                scrape_min = Some(scrape_min.map_or(took, |m| m.min(took)));
                scrape = text;
            }
        } else {
            scrape = rt.machine().obs().registry().render();
        }
        let start = Instant::now();
        rt.flush().expect("flush");
        flush_total += start.elapsed();
        drop(server);
        drop(rt);
        if durable {
            let _ = std::fs::remove_file(&path);
        }
    }
    Measured {
        run_mean: run_total / trials as u32,
        run_min,
        flush_mean: flush_total / trials as u32,
        scrape_min,
        scrape,
    }
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E-DUR",
        "durable (mmap) vs volatile backend overhead",
        "persistence via a shared file mapping costs little during the run; \
         the durability tax is the explicit msync boundary",
    );
    if !cfg!(unix) {
        println!("durable backend needs unix mmap; skipping");
        return;
    }
    let widths = [8, 12, 14, 14, 14, 10];
    header(
        &[
            "tasks",
            "backend",
            "run mean",
            "flush mean",
            "run+flush",
            "overhead",
        ],
        &widths,
    );
    let mut report = BenchReport::new("exp_durable_overhead");
    let mut last = None;
    for n in cli.cap_sizes(&[256usize, 1024, 4096]) {
        let vol = run_trials(&cli, n, false, false);
        let dur = run_trials(&cli, n, true, false);
        let overhead = (dur.run_mean + dur.flush_mean).as_secs_f64()
            / (vol.run_mean + vol.flush_mean).as_secs_f64();
        report
            .note("n", n)
            .metric("durable_overhead_x", overhead)
            .metric_ms("durable_flush_ms", dur.flush_mean)
            .metric_ms("durable_run_ms", dur.run_mean);
        row(
            &[
                s(n),
                s("volatile"),
                s(format!("{:?}", vol.run_mean)),
                s(format!("{:?}", vol.flush_mean)),
                s(format!("{:?}", vol.run_mean + vol.flush_mean)),
                s("1.00x"),
            ],
            &widths,
        );
        row(
            &[
                s(n),
                s("mmap"),
                s(format!("{:?}", dur.run_mean)),
                s(format!("{:?}", dur.flush_mean)),
                s(format!("{:?}", dur.run_mean + dur.flush_mean)),
                s(format!("{}x", f2(overhead))),
            ],
            &widths,
        );
        last = Some((n, dur));
    }

    // Observability tax: the same durable workload with per-event tracing
    // on and a live `/metrics` exporter attached, against a plain run.
    // The plain side is re-measured here, back-to-back with the
    // instrumented one — the n-sweep measurement above ran minutes of
    // work earlier, so comparing against it folds page-cache and CPU
    // warm-up into the ratio (historically it made instrumentation look
    // ~1.5x *faster*). Min-over-trials on both sides keeps scheduler
    // noise out; `bench_check` gates `obs_instrumented_over_plain_x`.
    if let Some((n, _)) = last {
        let plain = run_trials(&cli, n, true, false);
        let observed = run_trials(&cli, n, true, true);
        let delta = observed.run_min.as_secs_f64() / plain.run_min.as_secs_f64().max(1e-9);
        report.metric("obs_instrumented_over_plain_x", delta);
        println!(
            "\nobservability: instrumented run (tracing + live exporter) {}x the plain run",
            f2(delta)
        );
        if let Some(scrape) = observed.scrape_min {
            report.metric_ms("obs_scrape_ms", scrape);
            println!("observability: /metrics scrape min {:?}", scrape);
        }
        report.embed_scrape(&observed.scrape);
    }
    report.emit();
}
