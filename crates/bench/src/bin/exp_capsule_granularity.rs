//! E13 — the §2 capsule-granularity tension (ablation).
//!
//! "There is a tension between the desire for high work capsules that
//! amortize the capsule start/restart overheads and the desire for low
//! work capsules that lessen the repeated work on restart."
//!
//! A fixed scan workload (read+write `n` blocks) is chunked into capsules
//! of `k` blocks each, swept over `k` and the fault rate. Small `k` pays
//! per-capsule installation overhead; large `k` pays O(k) repeated work
//! per fault and violates `f ≤ 1/(2C)` sooner. The table exposes the
//! U-shape and its movement with `f`.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, seq_all, Comp, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig};

/// The workload: copy `nblocks` blocks from `src` to `dst`, `k` blocks per
/// capsule.
fn chunked_copy(src: Region, dst: Region, nblocks: usize, b: usize, k: usize) -> Comp {
    seq_all(
        (0..nblocks.div_ceil(k))
            .map(|c| {
                comp_step("chunk", move |ctx: &mut ProcCtx| {
                    let lo = c * k;
                    let hi = ((c + 1) * k).min(nblocks);
                    for blk in lo..hi {
                        let mut buf = vec![0u64; b];
                        ctx.read_block_into(src.at(blk * b), &mut buf)?;
                        for w in buf.iter_mut() {
                            *w = w.wrapping_mul(3).wrapping_add(1);
                        }
                        ctx.write_block(dst.at(blk * b), &buf)?;
                    }
                    Ok(())
                })
            })
            .collect(),
    )
}

const W: [usize; 7] = [6, 7, 8, 10, 10, 9, 9];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E13 (§2 ablation)",
        "capsule granularity vs fault rate",
        "restart overhead favours big capsules; repeated work on faults favours small ones",
    );

    let nblocks = cli.n(512);
    let b = 8;

    header(&["k", "f", "C", "W_f", "restarts", "wasted", "vs best"], &W);
    let mut report = BenchReport::new("exp_capsule_granularity");
    report.note("nblocks", nblocks);
    let mut last_scrape = String::new();
    for f in [0.0, 0.002, 0.01, 0.05] {
        let mut results = Vec::new();
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            let cfg = if f == 0.0 {
                FaultConfig::none()
            } else {
                FaultConfig::soft(f, cli.seed(99))
            };
            let m = Machine::new(PmConfig::parallel(1, 1 << 22).with_fault(cfg));
            let src = m.alloc_region(nblocks * b);
            let dst = m.alloc_region(nblocks * b);
            for i in 0..nblocks * b {
                m.mem().store(src.at(i), i as u64);
            }
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 11));
            let rep = rt.run_or_replay(&chunked_copy(src, dst, nblocks, b, k));
            assert!(rep.completed(), "k={k} f={f}");
            // Verify the copy.
            for i in 0..nblocks * b {
                assert_eq!(
                    rt.machine().mem().load(dst.at(i)),
                    (i as u64).wrapping_mul(3).wrapping_add(1)
                );
            }
            results.push((k, rep.stats().clone()));
            last_scrape = rt.machine().obs().registry().render();
        }
        let best = results.iter().map(|(_, st)| st.total_work()).min().unwrap();
        if f == 0.0 {
            let k1 = results
                .iter()
                .find(|(k, _)| *k == 1)
                .unwrap()
                .1
                .total_work();
            report
                .metric("install_overhead_k1_x", k1 as f64 / best as f64)
                .metric("work_best_f0_words", best as f64);
        }
        for (k, st) in &results {
            row(
                &[
                    s(*k),
                    s(f),
                    s(st.max_capsule_work),
                    s(st.total_work()),
                    s(st.capsule_restarts()),
                    s(st.total_work().saturating_sub(2 * nblocks as u64)),
                    f2(st.total_work() as f64 / best as f64),
                ],
                &W,
            );
        }
        println!();
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("shape check: at f = 0 bigger capsules strictly win (fewer installs);");
    println!("as f grows the optimum k shrinks — the paper's checkpointing tension,");
    println!("with the f <= 1/(2C) constraint visible as blow-up at large k.");
}
