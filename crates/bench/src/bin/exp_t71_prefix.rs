//! E6 — Theorem 7.1: prefix sums in O(n/B) work, O(log n) depth, O(1)
//! maximum capsule work.
//!
//! Sweeps `n` and `B`, reporting work normalized by n/B (should be a
//! constant), the measured maximum capsule work (should be flat), and a
//! faulty run verified against the oracle.

use ppm_algs::{prefix_sum_seq, PrefixSum};
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sched::{Runtime, SchedConfig};

const W: [usize; 7] = [8, 4, 7, 10, 9, 5, 8];

fn run_case(n: usize, b: usize, f: f64, scrape: &mut String) -> (f64, u64) {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 31)
    };
    let m = Machine::new(
        PmConfig::parallel(1, 1 << 24)
            .with_block_size(b)
            .with_fault(cfg),
    );
    let ps = PrefixSum::new(&m, n);
    let data: Vec<u64> = (0..n as u64).map(|i| i % 1000).collect();
    ps.load_input(&m, &data);
    let rt = Runtime::new(m, SchedConfig::with_slots(1 << 15));
    let rep = rt.run_or_replay(&ps.comp());
    assert!(rep.completed());
    assert_eq!(
        ps.read_output(rt.machine()),
        prefix_sum_seq(&data),
        "n={n} B={b} f={f}"
    );
    let st = rep.stats();
    let per_nb = st.total_work() as f64 / (n as f64 / b as f64);
    row(
        &[
            s(n),
            s(b),
            s(f),
            s(st.total_work()),
            f2(st.total_work() as f64 / (n as f64 / b as f64)),
            s(st.max_capsule_work),
            s(st.soft_faults),
        ],
        &W,
    );
    *scrape = rt.machine().obs().registry().render();
    (per_nb, st.max_capsule_work)
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E6 (Theorem 7.1)",
        "parallel prefix sums",
        "O(n/B) work, O(log n) depth, O(1) maximum capsule work",
    );
    header(&["n", "B", "f", "W_f", "W/(n/B)", "C", "faults"], &W);

    let mut report = BenchReport::new("exp_t71_prefix");
    let mut last_scrape = String::new();
    let mut headline = (0usize, 0.0, 0u64);
    for n in cli.cap_sizes(&[1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]) {
        let (per_nb, c) = run_case(n, 8, 0.0, &mut last_scrape);
        headline = (n, per_nb, c);
    }
    report
        .note("n", headline.0)
        .metric("work_per_nb_x", headline.1)
        .metric("max_capsule_work_words", headline.2 as f64);
    println!();
    for b in [4usize, 8, 16, 64] {
        run_case(1 << 14, b, 0.0, &mut last_scrape);
    }
    println!();
    for f in [0.001, 0.005] {
        run_case(1 << 13, 8, f, &mut last_scrape);
    }
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W/(n/B) is a constant across 256x of n; C stays a flat");
    println!("small constant — Theorem 7.1 holds. (Measured at P = 1: the model's");
    println!("work is P-independent, and idle processors' steal polling would");
    println!("otherwise add wall-clock-dependent noise. The constant includes the");
    println!("fork/join/install overhead of one task tree node per leaf block.)");
}
