//! E11 — Figure 4: the entry state transition table, observed empirically.
//!
//! Installs a persistent-memory write observer over the scheduler's deque
//! regions, runs a faulty parallel computation (soft faults plus one hard
//! fault), and prints the observed transition matrix in the paper's
//! row/column layout. Every observed transition must be a ✓ cell of
//! Figure 4; `Taken` must be terminal.

use std::sync::{Arc, Mutex};

use ppm_bench::{banner, BenchReport};
use ppm_core::{comp_step, par_all, DoneFlag, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx};
use ppm_sched::{kind_of, run_root_on, EntryKind, Sched, SchedConfig};

fn kind_index(k: EntryKind) -> usize {
    match k {
        EntryKind::Empty => 0,
        EntryKind::Local => 1,
        EntryKind::Job => 2,
        EntryKind::Taken => 3,
    }
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E11 (Figure 4)",
        "WS-deque entry state transitions",
        "entries move only along: Empty->Local; Local->Empty/Job/Taken; Job->Local/Taken",
    );

    let machine = Machine::new(
        PmConfig::parallel(cli.procs(4), 1 << 22)
            .with_fault(FaultConfig::soft(0.01, 4).with_scheduled_hard_fault(2, 900)),
    );
    let n = cli.n(160);
    let r = machine.alloc_region(n);
    let comp = par_all(
        (0..n)
            .map(|i| comp_step("leaf", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
            .collect(),
    );
    let done = DoneFlag::new(&machine);
    let root = comp(done.finale());

    // Build the scheduler first so the deque regions are known, then
    // attach the counting observer, then run on that same scheduler.
    let sched = Sched::new(&machine, done, &SchedConfig::with_slots(1 << 12));
    let ranges: Vec<(usize, usize)> = sched
        .deques()
        .iter()
        .map(|d| (d.stack.start, d.stack.end()))
        .collect();
    let matrix: Arc<Mutex<[[u64; 4]; 4]>> = Arc::new(Mutex::new([[0; 4]; 4]));
    {
        let matrix = matrix.clone();
        machine
            .mem()
            .set_observer(Some(Arc::new(move |addr, prev, new| {
                if ranges.iter().any(|(s, e)| addr >= *s && addr < *e) {
                    matrix.lock().unwrap()[kind_index(kind_of(prev))][kind_index(kind_of(new))] +=
                        1;
                }
            })));
    }

    let report = run_root_on(&machine, &sched, root, done);
    assert!(report.completed);
    for i in 0..n {
        assert_eq!(machine.mem().load(r.at(i)), 1, "task {i}");
    }

    let m = matrix.lock().unwrap();
    let names = ["Empty", "Local", "Job", "Taken"];
    println!(
        "run: P=4, f=0.01 soft + proc 2 hard-faulted; {} soft faults, {} steals-ish\n",
        report.stats.soft_faults, m[2][3]
    );
    println!("observed transitions (rows: old state, columns: new state):\n");
    print!("{:>18}", "");
    for t in names {
        print!("{t:>9}");
    }
    println!();
    for (i, from) in names.iter().enumerate() {
        print!("{:>10} {from:>7}", if i == 1 { "Old State" } else { "" });
        for j in 0..4 {
            if i == j {
                // Same-kind rewrites are tag refreshes (e.g. line 56
                // clearing an already-empty slot), not state transitions.
                print!("{:>9}", format!("({})", m[i][j]));
            } else {
                print!("{:>9}", m[i][j]);
            }
        }
        println!();
    }

    let mut illegal = 0u64;
    for i in 0..4 {
        for j in 0..4 {
            let from = EntryKind::from_bits(i as u64);
            let to = EntryKind::from_bits(j as u64);
            if i != j && m[i][j] > 0 && !from.can_transition_to(to) {
                illegal += m[i][j];
                println!("ILLEGAL: {from:?} -> {to:?} x{}", m[i][j]);
            }
        }
    }
    println!("\nillegal off-diagonal transitions observed: {illegal}");
    assert_eq!(illegal, 0, "Figure 4 must hold");
    let mut report = BenchReport::new("exp_fig4_transitions");
    report
        .metric("illegal_transitions", illegal as f64)
        .metric("observed_steals", m[2][3] as f64);
    report.embed_obs(machine.obs().registry());
    report.emit();
    println!("matches Figure 4: Empty->Local, Local->{{Empty,Job,Taken}}, Job->{{Local,Taken}},");
    println!("and Taken is terminal. Parenthesized diagonals are tag-only refreshes.");
}
