//! E5 — Theorem 6.2 under hard faults: processors dying mid-run reduce
//! `P_A` but never lose work.
//!
//! Kills k of P processors at staggered points during a fork-join
//! computation. Reports completion, work overhead, and the load absorbed
//! by the survivors. The paper: "a hard fault in our scheduler is
//! effectively the same as forking a thread onto the bottom of a
//! work-queue and then finishing" — i.e. cheap.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig};

fn tasks(r: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("leaf", move |ctx: &mut ProcCtx| {
                    for k in 0..8 {
                        ctx.pwrite(r.at(i * 8 + k), 1)?;
                    }
                    Ok(())
                })
            })
            .collect(),
    )
}

const W: [usize; 6] = [4, 6, 10, 10, 10, 10];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E5 (Theorem 6.2, hard faults)",
        "processors dying mid-computation",
        "completion with P_A < P; hard faults cost like an extra fork each",
    );

    let n = cli.n(192);
    let p = cli.procs(4);

    header(&["P", "dead", "complete", "W_f", "T", "verified"], &W);

    // Baseline.
    let w_baseline = {
        let m = Machine::new(PmConfig::parallel(p, 1 << 23));
        let r = m.alloc_region(n * 8);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&tasks(r, n));
        assert!(rep.completed());
        row(
            &[
                s(p),
                s(0),
                s(rep.completed()),
                s(rep.stats().total_work()),
                s(rep.stats().time()),
                s(true),
            ],
            &W,
        );
        rep.stats().total_work()
    };

    // Kill 1..P-1 processors at staggered access counts.
    for dead in 1..p {
        let mut cfg = FaultConfig::none();
        for k in 0..dead {
            cfg = cfg.with_scheduled_hard_fault(k + 1, 200 + 350 * k as u64);
        }
        let m = Machine::new(PmConfig::parallel(p, 1 << 23).with_fault(cfg));
        let r = m.alloc_region(n * 8);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&tasks(r, n));
        let verified = (0..n * 8).all(|i| rt.machine().mem().load(r.at(i)) == 1);
        row(
            &[
                s(p),
                s(dead),
                s(rep.completed()),
                s(rep.stats().total_work()),
                s(rep.stats().time()),
                s(verified),
            ],
            &W,
        );
        assert!(rep.completed() && verified, "dead={dead}");
        // A scheduled death may not fire if the run finishes first; at
        // most `dead` processors die, and correctness holds regardless.
        assert!(rep.dead_procs() <= dead);
    }

    // Random death points, many seeds: overhead distribution. Needs a
    // survivor, so it only makes sense with at least two processors.
    if p < 2 {
        println!("\n(single-death sweep skipped: needs --procs >= 2)");
        return;
    }
    println!(
        "\n-- randomized single-death sweep (P={p}, {} seeds): work overhead --",
        cli.seeds(12)
    );
    let mut ratios = Vec::new();
    let mut last_scrape = String::new();
    for seed in 0..cli.seeds(12) {
        let at = 100 + (seed * 997) % 2000;
        let victim = 1 + (seed as usize % (p - 1));
        let m = Machine::new(
            PmConfig::parallel(p, 1 << 23)
                .with_fault(FaultConfig::none().with_scheduled_hard_fault(victim, at)),
        );
        let r = m.alloc_region(n * 8);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&tasks(r, n));
        assert!(rep.completed(), "seed {seed}");
        ratios.push(rep.stats().total_work() as f64 / w_baseline as f64);
        last_scrape = rt.machine().obs().registry().render();
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!("mean W_f/W_baseline = {}, max = {}", f2(mean), f2(max));
    let mut report = BenchReport::new("exp_hard_faults");
    report
        .note("procs", p)
        .note("n", n)
        .metric("death_overhead_mean_x", mean)
        .metric("death_overhead_max_x", max);
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: every configuration with at least one survivor");
    println!("completes with all tasks exactly once; work overhead of a death is");
    println!("a small constant factor (the steal + resume of the orphaned thread).");
}
