//! E4 — Theorem 6.2: the fault-tolerant work-stealing time bound
//! `O(W/P_A + D·(P/P_A)·⌈log_{1/(Cf)} W⌉)`.
//!
//! Three measurements on fork-join trees:
//!  1. work scaling: user work per task is flat as P grows (the W/P term);
//!  2. model-time speedup: T (max per-processor transfers) shrinks with P;
//!  3. the fault factor: max capsule re-run count vs the predicted
//!     ⌈log_{1/(Cf)} W⌉ depth-inflation factor.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig, VictimStrategy};

/// A balanced tree of `n` leaf tasks, each performing `leaf_work` writes.
fn balanced(r: Region, n: usize, leaf_work: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("leaf", move |ctx: &mut ProcCtx| {
                    for k in 0..leaf_work {
                        ctx.pwrite(r.at(i * leaf_work + k), 1)?;
                    }
                    Ok(())
                })
            })
            .collect(),
    )
}

const W1: [usize; 7] = [6, 7, 10, 10, 10, 9, 9];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E4 (Theorem 6.2)",
        "work-stealing scheduler under soft faults",
        "T_f = O(W/P_A + D (P/P_A) ceil(log_{1/(Cf)} W)) in expectation",
    );

    let n = cli.n(256);
    let leaf_work = 8;

    println!(
        "(host cores: {}; with fewer cores than P, the OS is the ABP",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    println!(" multiprogramming adversary and P_A < P)\n");
    println!("-- P sweep (f = 0): time T = max per-proc transfers --");
    header(&["P", "f", "W_f", "T", "restarts", "C", "T(1)/T"], &W1);
    let mut t1 = 0u64;
    for p in [1usize, 2, 4, 8].into_iter().filter(|p| *p <= cli.procs(8)) {
        let m = Machine::new(PmConfig::parallel(p, 1 << 23));
        let r = m.alloc_region(n * leaf_work);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&balanced(r, n, leaf_work));
        assert!(rep.completed());
        let t = rep.stats().time();
        if p == 1 {
            t1 = t;
        }
        row(
            &[
                s(p),
                s(0.0),
                s(rep.stats().total_work()),
                s(t),
                s(rep.stats().capsule_restarts()),
                s(rep.stats().max_capsule_work),
                f2(t1 as f64 / t as f64),
            ],
            &W1,
        );
    }

    println!("\n-- f sweep at P = 4: the work and depth factors --");
    header(&["P", "f", "W_f", "T", "restarts", "C", "W_f/W_0"], &W1);
    let mut report = BenchReport::new("exp_t62_scheduler");
    report.note("n", n);
    let mut last_scrape = String::new();
    let mut w0 = 0u64;
    for f in [0.0, 0.001, 0.005, 0.01, 0.02] {
        let cfg = if f == 0.0 {
            FaultConfig::none()
        } else {
            FaultConfig::soft(f, 77)
        };
        let m = Machine::new(PmConfig::parallel(4, 1 << 23).with_fault(cfg));
        let r = m.alloc_region(n * leaf_work);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&balanced(r, n, leaf_work));
        assert!(rep.completed());
        last_scrape = rt.machine().obs().registry().render();
        if f == 0.0 {
            w0 = rep.stats().total_work();
            report.metric("work_f0_words", w0 as f64);
        }
        if f == 0.02 {
            report.metric(
                "fault_work_overhead_x",
                rep.stats().total_work() as f64 / w0 as f64,
            );
        }
        row(
            &[
                s(4),
                s(f),
                s(rep.stats().total_work()),
                s(rep.stats().time()),
                s(rep.stats().capsule_restarts()),
                s(rep.stats().max_capsule_work),
                f2(rep.stats().total_work() as f64 / w0 as f64),
            ],
            &W1,
        );
    }

    // --- contention backoff under thief herding ----------------------
    //
    // `LeastLoaded` victim selection deliberately herds every idle
    // processor onto the same (deepest) deque, so their `popTop` CAMs
    // collide and the randomized exponential backoff engages. The p99
    // sleep saturates at the backoff cap on a contended run, which is
    // exactly what the baseline pins: regressions show up as the p99
    // collapsing to zero (backoff never firing — contention ignored) or
    // the cap being blown.
    {
        let p = 8;
        let tasks = 2048;
        let m = Machine::new(PmConfig::parallel(p, 1 << 23));
        let r = m.alloc_region(tasks);
        let cfg = SchedConfig {
            victim_strategy: VictimStrategy::LeastLoaded,
            ..SchedConfig::with_slots(1 << 13)
        };
        let rt = Runtime::new(m, cfg);
        let rep = rt.run_or_replay(&balanced(r, tasks, 1));
        assert!(rep.completed());
        let live = rt.machine().obs().registry().histogram(
            "ppm_steal_backoff_us",
            "contention backoff sleeps applied before steal attempts (microseconds)",
        );
        println!("\n-- steal contention backoff (LeastLoaded herding, P = {p}) --");
        println!(
            "  live backoff sleeps = {} (OS-schedule dependent; 0 on a serialized host)",
            live.count()
        );

        // The baselined p99 comes from a deterministic policy probe — 64
        // consecutive failed CAMs on a fresh scheduler — so it pins the
        // window-doubling curve and the cap identically on every host,
        // instead of measuring how often this machine's OS happens to
        // interleave two thieves.
        let m2 = Machine::new(PmConfig::parallel(2, 1 << 18));
        let done = ppm_core::DoneFlag::new(&m2);
        let s = ppm_sched::Sched::new(&m2, done, &SchedConfig::with_slots(64));
        s.contention_probe(0, 64);
        let h = m2.obs().registry().histogram(
            "ppm_steal_backoff_us",
            "contention backoff sleeps applied before steal attempts (microseconds)",
        );
        let p99 = h.quantile(0.99).expect("probe observed sleeps");
        println!(
            "  policy probe: {} sleeps, p99 = {p99} us (cap {} us)",
            h.count(),
            64
        );
        report.metric("steal_backoff_p99_us", p99 as f64);
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\n-- the depth-term fault factor: restarts per capsule vs log_(1/Cf) W --");
    println!(
        "{:>8} {:>14} {:>22}",
        "f", "restart ratio", "predicted ceil factor"
    );
    for f in [0.001, 0.005, 0.01, 0.02] {
        let m = Machine::new(PmConfig::parallel(2, 1 << 23).with_fault(FaultConfig::soft(f, 3)));
        let r = m.alloc_region(n * leaf_work);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&balanced(r, n, leaf_work));
        assert!(rep.completed());
        let sx = rep.stats();
        let c = sx.max_capsule_work.max(1) as f64;
        let w = sx.total_work() as f64;
        let predicted = (w.ln() / (1.0 / (c * f)).ln()).ceil().max(1.0);
        let ratio = 1.0 + sx.capsule_restarts() as f64 / sx.capsule_completions.max(1) as f64;
        println!("{f:>8} {:>14} {predicted:>22}", f2(ratio));
        let _ = ratio;
    }

    println!("\nshape check: the bound is stated against P_A, the *average* number");
    println!("of processors the OS actually grants (ABP's multiprogramming");
    println!("adversary). On a multi-core host T drops ~linearly with P; on a");
    println!("single-core host the adversary yields P_A ~= 1 and T ~= W — both");
    println!("consistent with O(W/P_A + ...). The f sweep shows the fault terms:");
    println!("work overhead is 1/(1-Cf)-shaped, and the observed per-capsule");
    println!("re-run factor sits well below the theorem's ceil(log_(1/Cf) W)");
    println!("allowance — Theorem 6.2's shape holds.");
}
