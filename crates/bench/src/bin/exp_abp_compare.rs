//! E14 — the price of fault tolerance: model cost of the Figure 3
//! scheduler versus the CAS-based ABP baseline it derives from.
//!
//! The paper's conclusion claims "fault tolerance ... with only a modest
//! increase in the total cost of the computation". Both schedulers run
//! identical fork-join workloads on identical (fault-free) machines with
//! identical cost accounting; the ratio of counted transfers is that
//! increase. (The fault-tolerant scheduler pays per-capsule installation
//! writes and split CAM/check capsules; ABP pays neither but dies on the
//! first fault — see `exp_cam_vs_cas`.)

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{comp_step, par_all, Comp, Machine};
use ppm_pm::{PmConfig, ProcCtx, Region, ValidateMode};
use ppm_sched::abp::run_computation_abp;
use ppm_sched::{Runtime, SchedConfig};

fn tasks(r: Region, n: usize, leaf_work: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("leaf", move |ctx: &mut ProcCtx| {
                    for k in 0..leaf_work {
                        ctx.pwrite(r.at(i * leaf_work + k), 1)?;
                    }
                    Ok(())
                })
            })
            .collect(),
    )
}

const W: [usize; 6] = [6, 6, 10, 10, 8, 10];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E14 (conclusion / ablation)",
        "fault-tolerant scheduler vs ABP baseline, model cost",
        "fault tolerance costs a modest constant factor over the non-tolerant ABP",
    );
    header(
        &["tasks", "leaf", "W (FT)", "W (ABP)", "ratio", "user work"],
        &W,
    );

    let mut report = BenchReport::new("exp_abp_compare");
    let mut last_scrape = String::new();
    let cases = [(64usize, 1usize), (64, 8), (64, 64), (256, 8), (1024, 8)];
    for (n, leaf_work) in cases.into_iter().filter(|(n, _)| *n <= cli.n(1024)) {
        let cfg = || PmConfig::parallel(1, 1 << 24).with_validate(ValidateMode::Off);
        let ft = {
            let m = Machine::new(cfg());
            let r = m.alloc_region(n * leaf_work);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 13));
            let rep = rt.run_or_replay(&tasks(r, n, leaf_work));
            assert!(rep.completed());
            last_scrape = rt.machine().obs().registry().render();
            rep.stats().total_work()
        };
        let abp = {
            let m = Machine::new(cfg());
            let r = m.alloc_region(n * leaf_work);
            let rep = run_computation_abp(&m, &tasks(r, n, leaf_work), 1 << 13, 9);
            assert!(rep.completed);
            rep.stats.total_work()
        };
        row(
            &[
                s(n),
                s(leaf_work),
                s(ft),
                s(abp),
                f2(ft as f64 / abp as f64),
                s(n * leaf_work),
            ],
            &W,
        );
        report
            .note("last_case", format!("{n}x{leaf_work}"))
            .metric("ft_over_abp_x", ft as f64 / abp as f64)
            .metric("ft_work_words", ft as f64);
    }
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: the overhead is a flat small constant per capsule");
    println!("(installation writes + split synchronization capsules), so the ratio");
    println!("shrinks toward 1 as leaf work grows and stays bounded as task count");
    println!("scales — 'a modest increase in the total cost', as claimed. The");
    println!("baseline buys that margin by being unable to survive any fault.");
}
