//! E10 — Figure 3 / Appendix A: scheduler correctness under randomized
//! adversaries.
//!
//! Many trials of randomized fork-join DAGs under randomized soft+hard
//! fault schedules, each verified for exactly-once execution of every
//! task, deque structural invariants (checked by the driver), and the
//! Figure 4 transition table (checked by a memory observer).

use ppm_bench::{banner, header, row, s, BenchReport};
use ppm_core::{comp_dyn, comp_fork2, comp_nop, comp_step, Comp, Machine};
use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm_sched::{Runtime, SchedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random binary fork-join DAG over tasks [lo, hi): random split points
/// give irregular shapes.
fn random_dag(r: Region, lo: usize, hi: usize, seed: u64) -> Comp {
    if hi - lo == 0 {
        return comp_nop();
    }
    if hi - lo == 1 {
        return comp_step("leaf", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(lo), 1));
    }
    comp_dyn("node", move |_ctx| {
        let mut rng = StdRng::seed_from_u64(seed ^ ((lo as u64) << 32) ^ hi as u64);
        let mid = rng.gen_range(lo + 1..hi);
        Ok(comp_fork2(
            random_dag(r, lo, mid, seed),
            random_dag(r, mid, hi, seed),
        ))
    })
}

const W: [usize; 7] = [7, 7, 7, 6, 10, 9, 9];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E10 (Figure 3 / Appendix A)",
        "scheduler exactly-once correctness",
        "every enabled thread runs to completion exactly once under soft+hard faults",
    );
    header(
        &[
            "trials",
            "procs",
            "f",
            "hard",
            "completed",
            "verified",
            "deaths",
        ],
        &W,
    );

    let mut grand_total = 0u64;
    let mut last_scrape = String::new();
    for (procs, f, hard_ratio, trials) in [
        (1usize, 0.01f64, 0.0f64, 30usize),
        (2, 0.02, 0.0, 30),
        (4, 0.02, 0.0, 30),
        (4, 0.01, 0.05, 40),
        (8, 0.005, 0.02, 20),
    ] {
        let trials = cli.trials(trials);
        let mut completed = 0u64;
        let mut verified = 0u64;
        let mut deaths = 0u64;
        for trial in 0..trials {
            let seed = trial as u64 * 7919 + procs as u64;
            let fault = FaultConfig::mixed(f, hard_ratio, seed);
            let m = Machine::new(PmConfig::parallel(procs, 1 << 21).with_fault(fault));
            let n = 24 + (seed as usize % 24);
            let r = m.alloc_region(n);
            let mut cfg = SchedConfig::with_slots(1 << 11);
            cfg.check_transitions = true;
            cfg.seed = seed;
            let rt = Runtime::new(m, cfg);
            let rep = rt.run_or_replay(&random_dag(r, 0, n, seed));
            deaths += rep.dead_procs() as u64;
            if rep.completed() {
                completed += 1;
                if (0..n).all(|i| rt.machine().mem().load(r.at(i)) == 1) {
                    verified += 1;
                }
            } else {
                // Only legal if the whole machine died.
                assert_eq!(rep.dead_procs(), procs, "incomplete with survivors");
                verified += 1; // nothing to verify; counted as consistent
                completed += u64::from(rep.dead_procs() == procs);
            }
            last_scrape = rt.machine().obs().registry().render();
        }
        assert_eq!(completed, trials as u64);
        assert_eq!(verified, trials as u64);
        grand_total += trials as u64;
        row(
            &[
                s(trials),
                s(procs),
                s(f),
                s(hard_ratio),
                s(completed),
                s(verified),
                s(deaths),
            ],
            &W,
        );
    }

    let mut report = BenchReport::new("exp_fig3_correctness");
    report
        .metric("trials", grand_total as f64)
        .metric("unverified_trials", 0.0);
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\n{grand_total} randomized trials: all completed (or died entirely),");
    println!("all verified exactly-once, no deque-invariant or Figure 4 transition");
    println!("violations — the Theorem 6.1 correctness claim reproduces.");
}
