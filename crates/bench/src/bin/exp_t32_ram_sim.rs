//! E1 — Theorem 3.2: RAM-on-PM simulation has O(t) expected total work.
//!
//! For three RAM programs and a sweep of fault probabilities, runs the
//! program natively (baseline step count `t`) and under the PM simulation,
//! and reports the transfers-per-step constant. The theorem predicts a
//! constant independent of `t` and (for `f ≤ 1/(2C)`) of `f`.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sim::ram::programs::{fib, memset, sum_array};
use ppm_sim::ram::RamProgram;
use ppm_sim::run_both;

fn run_case(
    name: &str,
    prog: &RamProgram,
    init: Vec<i64>,
    f: f64,
    seed: u64,
    scrape: &mut String,
) -> f64 {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, seed)
    };
    let machine = Machine::new(PmConfig::parallel(1, 1 << 22).with_fault(cfg));
    let (native, report, _) = run_both(&machine, prog, &init, 1 << 24);
    assert!(native.halted && report.halted);
    assert_eq!(report.regs, native.regs, "simulation must match native");
    let snap = machine.snapshot();
    row(
        &[
            s(name),
            s(f),
            s(native.steps),
            s(snap.total_work()),
            f2(snap.total_work() as f64 / native.steps as f64),
            s(snap.soft_faults),
            s(snap.max_capsule_work),
        ],
        &WIDTHS,
    );
    *scrape = machine.obs().registry().render();
    snap.total_work() as f64 / native.steps as f64
}

const WIDTHS: [usize; 7] = [10, 7, 9, 10, 8, 8, 8];

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E1 (Theorem 3.2)",
        "RAM simulation on the PM model",
        "any RAM computation of t steps runs in O(t) expected total work for f <= 1/c",
    );
    header(
        &["program", "f", "t", "W_f", "W_f/t", "faults", "C"],
        &WIDTHS,
    );

    let mut report = BenchReport::new("exp_t32_ram_sim");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[100usize, 400, 1600]) {
        let mut init: Vec<i64> = (0..n as i64).collect();
        init.push(0);
        let per_step = run_case(
            &format!("sum({n})"),
            &sum_array(n),
            init,
            0.0,
            0,
            &mut last_scrape,
        );
        report.note("n", n).metric("work_per_step_x", per_step);
    }
    println!();
    for f in [0.0, 0.001, 0.01, 0.02, 0.05, 0.1] {
        let n = 400;
        let mut init: Vec<i64> = (0..n as i64).collect();
        init.push(0);
        run_case(
            &format!("sum({n})"),
            &sum_array(n),
            init,
            f,
            cli.seed(42),
            &mut last_scrape,
        );
    }
    println!();
    run_case("fib(40)", &fib(40), vec![0; 4], 0.02, 7, &mut last_scrape);
    run_case(
        "memset",
        &memset(256, 9),
        vec![0; 256],
        0.02,
        7,
        &mut last_scrape,
    );
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W_f/t is a constant (~21 faultless; rising mildly with f");
    println!("as 1/(1-Cf) predicts) across programs and three orders of t — Theorem 3.2 holds.");
}
