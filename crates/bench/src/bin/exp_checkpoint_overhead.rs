//! Checkpoint overhead: what does an epoch persist boundary cost?
//!
//! Two measurements on a durable (file-mapped) machine:
//!
//! 1. **Flush microbenchmark** — after dirtying a fixed number of pages,
//!    the time of a whole-mapping `flush()` (`msync` over the file)
//!    versus the dirty-tracked `flush_dirty()` (msync over only the
//!    touched page runs). This is the per-boundary saving that makes
//!    frequent checkpoints affordable.
//! 2. **End-to-end epoch sweep** — the same checkpointed prefix-sum run
//!    at several `every_capsules` intervals (plus checkpointing
//!    disabled), reporting wall-clock, checkpoints taken, pages synced
//!    and pool words reclaimed. Expectation: overhead shrinks as the
//!    interval grows, and even short epochs sync a small fraction of the
//!    file's pages.
//!
//! `cargo run --release -p ppm-bench --bin exp_checkpoint_overhead`

use std::time::{Duration, Instant};

use ppm_algs::PrefixSum;
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{PmConfig, Word, PAGE_WORDS};
use ppm_sched::{CheckpointPolicy, Runtime, RuntimeConfig};

const WORDS: usize = 1 << 21; // 16 MiB file for the end-to-end sweep
const MICRO_WORDS: usize = 1 << 24; // 128 MiB mapping for the flush micro
const N: usize = 4096;
const TRIALS: usize = 5;
const DIRTY_PAGES: usize = 32;

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ppm-exp-ckpt-{}-{tag}.ppm", std::process::id()));
    p
}

fn input(n: usize) -> Vec<Word> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(37) % 100_003)
        .collect()
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Times one flush flavor over `trials` rounds of dirtying
/// [`DIRTY_PAGES`] contiguous pages first — the shape of a real epoch's
/// write footprint (pool churn, deque words and output live in localized
/// regions; widely scattered footprints make `flush_dirty` degrade to a
/// full flush by design).
fn flush_micro(machine: &Machine, trials: usize, full: bool) -> f64 {
    let mem = machine.mem();
    let total_pages = MICRO_WORDS / PAGE_WORDS;
    let mut total = Duration::ZERO;
    for t in 0..trials {
        let base = (t * DIRTY_PAGES) % (total_pages - DIRTY_PAGES);
        for i in 0..DIRTY_PAGES {
            mem.store((base + i) * PAGE_WORDS + 11, (t * 1000 + i) as Word);
        }
        let start = Instant::now();
        if full {
            mem.flush().expect("msync");
        } else {
            let flush = mem.flush_dirty().expect("msync");
            assert!(!flush.full, "durable backend must track dirty pages");
        }
        total += start.elapsed();
    }
    micros(total / trials as u32)
}

struct EpochRun {
    elapsed: Duration,
    checkpoints: u64,
    pages_flushed: u64,
    words_reclaimed: u64,
    records: u64,
    scrape: String,
}

fn epoch_run(procs: usize, policy: CheckpointPolicy, tag: &str) -> EpochRun {
    let path = tmp(tag);
    let _ = std::fs::remove_file(&path);
    let rt = Runtime::create(
        &path,
        RuntimeConfig::new(PmConfig::parallel(procs, WORDS))
            .with_slots(1 << 13)
            .with_checkpoint(policy),
    )
    .expect("create durable session");
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    let start = Instant::now();
    let rep = rt.run_or_recover(&ps.pcomp());
    let elapsed = start.elapsed();
    assert!(rep.completed());
    let run = rep.run.expect("fresh run report");
    let scrape = rt.machine().obs().registry().render();
    let _ = std::fs::remove_file(&path);
    EpochRun {
        elapsed,
        checkpoints: run.checkpoints.completed,
        pages_flushed: run.checkpoints.pages_flushed,
        words_reclaimed: run.checkpoints.words_reclaimed,
        records: run.checkpoints.records_written,
        scrape,
    }
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    let procs = cli.procs(2);
    let trials = cli.trials(TRIALS);
    banner(
        "exp_checkpoint_overhead",
        "Dirty-block incremental flush vs whole-mapping msync",
        "checkpoint cost is proportional to the epoch's write footprint, not the file size",
    );

    // --- 1. flush microbenchmark -----------------------------------
    let path = tmp("micro");
    let _ = std::fs::remove_file(&path);
    let machine = Machine::create_durable(PmConfig::parallel(1, MICRO_WORDS), &path)
        .expect("create durable machine");
    let full_us = flush_micro(&machine, trials, true);
    let dirty_us = flush_micro(&machine, trials, false);
    let mut report = BenchReport::new("exp_checkpoint_overhead");
    report
        .note("procs", procs)
        .note("dirty_pages", DIRTY_PAGES)
        .metric("flush_full_us", full_us)
        .metric("flush_dirty_us", dirty_us)
        .metric("dirty_over_full_x", dirty_us / full_us.max(0.01));
    drop(machine);
    let _ = std::fs::remove_file(&path);
    let total_pages = MICRO_WORDS / PAGE_WORDS;
    println!(
        "flush of a {} MiB mapping with {DIRTY_PAGES}/{total_pages} pages dirty:",
        (MICRO_WORDS * 8) >> 20
    );
    let widths = [26, 14, 12];
    header(&["flavor", "mean µs", "speedup"], &widths);
    row(
        &[s("flush (whole mapping)"), f2(full_us), s("1.00x")],
        &widths,
    );
    row(
        &[
            s("flush_dirty (tracked)"),
            f2(dirty_us),
            format!("{}x", f2(full_us / dirty_us.max(0.01))),
        ],
        &widths,
    );

    // --- 2. end-to-end epoch sweep ---------------------------------
    println!("\ncheckpointed prefix sum (n = {N}, P = {procs}), epoch sweep:");
    let widths = [16, 12, 12, 14, 16, 10];
    header(
        &[
            "policy",
            "wall ms",
            "ckpts",
            "pages synced",
            "words reclaimed",
            "records",
        ],
        &widths,
    );
    let base = epoch_run(procs, CheckpointPolicy::disabled(), "off");
    report.metric_ms("run_disabled_ms", base.elapsed);
    row(
        &[
            s("disabled"),
            f2(base.elapsed.as_secs_f64() * 1e3),
            s(0),
            s(0),
            s(0),
            s(0),
        ],
        &widths,
    );
    let mut last_scrape = base.scrape.clone();
    for k in [256u64, 1024, 4096] {
        let r = epoch_run(procs, CheckpointPolicy::every_capsules(k), &format!("k{k}"));
        last_scrape = r.scrape.clone();
        if k == 256 {
            report.metric(
                "ckpt_k256_overhead_x",
                r.elapsed.as_secs_f64() / base.elapsed.as_secs_f64().max(1e-9),
            );
        }
        row(
            &[
                format!("every {k}"),
                f2(r.elapsed.as_secs_f64() * 1e3),
                s(r.checkpoints),
                s(r.pages_flushed),
                s(r.words_reclaimed),
                s(r.records),
            ],
            &widths,
        );
    }
    report.embed_scrape(&last_scrape);
    report.emit();
    println!(
        "\n(each checkpoint also wrote a durable resume record; replay after a crash is \
         bounded by one epoch — see examples/checkpointed_run.rs)"
    );
}
