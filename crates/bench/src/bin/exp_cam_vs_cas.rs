//! E12 — §5: CAS is unsafe under faults; CAM with a capsule-boundary
//! check is safe.
//!
//! The paper: "a CAS writes two locations ... the processor could fault
//! immediately before or after the CAS instruction. On restart the local
//! register is lost ... Looking at the shared location does not help."
//!
//! The experiment runs many test-and-set trials under soft faults:
//!
//! * **CAS protocol** (broken): one capsule does `won = CAS(x, 0, 1)` and,
//!   if `won`, records the claim. A fault between the CAS and the record
//!   loses the local result — on re-run the CAS fails (the location is
//!   already 1) and the claim is never recorded: the win is *lost*.
//! * **CAM protocol** (the paper's fix): capsule 1 CAMs `x: 0 → id`;
//!   capsule 2 *reads* `x` and claims iff it holds `id`. Success is
//!   observed from persistent memory, so restarts are harmless.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::{capsule, run_chain, InstallCtx, Machine, Next};
use ppm_pm::{FaultConfig, PmConfig};

/// Default trials per configuration (override with `--trials=`).
const TRIALS: usize = 400;
const W: [usize; 5] = [9, 7, 9, 7, 11];

/// Runs `trials` single-contender test-and-set trials; returns
/// (claims recorded, wins actually taken, final metrics scrape).
fn run_protocol(trials: usize, f: f64, seed: u64, use_cas: bool) -> (u64, u64, String) {
    let machine = Machine::new(PmConfig::parallel(1, 1 << 20).with_fault(if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, seed)
    }));
    let slots = machine.alloc_region(2 * trials);
    let mut ctx = machine.ctx(0);
    let mut install = InstallCtx::new(machine.proc_meta(0));

    for t in 0..trials {
        let x = slots.at(2 * t);
        let claim = slots.at(2 * t + 1);
        let chain = if use_cas {
            // One capsule: CAS then act on its (ephemeral!) result.
            capsule("cas-protocol", move |ctx| {
                let won = ctx.pcas_baseline(x, 0, 1)?;
                if won {
                    ctx.pwrite(claim, 1)?;
                }
                Ok(Next::End)
            })
        } else {
            // CAM capsule, then a separate check capsule.
            let check = capsule("cam-check", move |ctx| {
                if ctx.pread(x)? == 1 {
                    ctx.pwrite(claim, 1)?;
                }
                Ok(Next::End)
            });
            capsule("cam-protocol", move |ctx| {
                ctx.pcam(x, 0, 1)?;
                Ok(Next::Jump(check.clone()))
            })
        };
        run_chain(&mut ctx, machine.arena(), &mut install, chain)
            .expect("soft-only config cannot kill the processor");
    }

    let mut claims = 0;
    let mut wins = 0;
    for t in 0..trials {
        wins += machine.mem().load(slots.at(2 * t));
        claims += machine.mem().load(slots.at(2 * t + 1));
    }
    let scrape = machine.obs().registry().render();
    (claims, wins, scrape)
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    let trials = cli.trials(TRIALS);
    let seed = cli.seed(1234);
    banner(
        "E12 (§5)",
        "CAS vs CAM under soft faults",
        "a faulting capsule cannot use a CAS result; CAM + read-in-next-capsule is safe",
    );
    header(&["protocol", "f", "wins", "claims", "lost wins"], &W);

    let mut report = BenchReport::new("exp_cam_vs_cas");
    report.note("trials", trials);
    let mut last_scrape = String::new();
    for f in [0.0, 0.01, 0.05, 0.1, 0.2] {
        for use_cas in [true, false] {
            let (claims, wins, scrape) = run_protocol(trials, f, seed, use_cas);
            last_scrape = scrape;
            if f == 0.2 {
                let key = if use_cas {
                    "cas_lost_wins"
                } else {
                    "cam_lost_wins"
                };
                report.metric(key, (wins - claims) as f64);
            }
            assert_eq!(wins, trials as u64, "the location always gets set");
            row(
                &[
                    s(if use_cas { "CAS" } else { "CAM" }),
                    s(f),
                    s(wins),
                    s(claims),
                    format!(
                        "{} ({}%)",
                        wins - claims,
                        f2(100.0 * (wins - claims) as f64 / wins as f64)
                    ),
                ],
                &W,
            );
            if !use_cas {
                assert_eq!(claims, wins, "CAM must never lose a win (f = {f})");
            }
        }
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: the CAS protocol silently drops wins at a rate that");
    println!("grows with f (the fault window between the CAS and using its result);");
    println!("the CAM protocol loses none at any fault rate — §5's claim, observed.");
}
