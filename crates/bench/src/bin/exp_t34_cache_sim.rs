//! E3 — Theorem 3.4: ideal-cache simulation has O(t) expected total work,
//! where `t` is the ideal-cache miss count.
//!
//! Sweeps access patterns, cache geometry and fault rate, reporting the
//! PM-simulation work per native LRU miss. Each simulation round costs
//! O(M/B) and covers at least M/B misses, so the ratio is a constant.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sim::{run_native_cache, simulate_cache_on_pm, AccessPattern, CachePmLayout};

const WIDTHS: [usize; 8] = [22, 5, 4, 7, 8, 10, 8, 8];

fn run_case(
    name: &str,
    pattern: &AccessPattern,
    m: usize,
    b: usize,
    f: f64,
    scrape: &mut String,
) -> f64 {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 5)
    };
    let machine = Machine::new(
        PmConfig::parallel(1, 1 << 22)
            .with_block_size(b)
            .with_ephemeral_words(m)
            .with_fault(cfg),
    );
    let range = pattern.address_range();
    let layout = CachePmLayout::new(&machine, range.next_multiple_of(b), m);
    simulate_cache_on_pm(&machine, pattern, layout).unwrap();

    let mut native_mem = vec![0u64; range];
    let native = run_native_cache(pattern, m, b, &mut native_mem);
    assert_eq!(
        layout.read_memory(&machine, range),
        native_mem,
        "{name}: memory must match native"
    );

    let snap = machine.snapshot();
    row(
        &[
            s(name),
            s(m),
            s(b),
            s(f),
            s(native.misses),
            s(snap.total_work()),
            f2(snap.total_work() as f64 / native.misses.max(1) as f64),
            s(snap.soft_faults),
        ],
        &WIDTHS,
    );
    *scrape = machine.obs().registry().render();
    snap.total_work() as f64 / native.misses.max(1) as f64
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E3 (Theorem 3.4)",
        "ideal-cache simulation on the PM model",
        "any (M,B) ideal-cache computation with t misses runs in O(t) expected total work",
    );
    header(
        &["pattern", "M", "B", "f", "misses", "W_f", "W/t", "faults"],
        &WIDTHS,
    );

    let mut report = BenchReport::new("exp_t34_cache_sim");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[256usize, 1024, 4096]) {
        let per_miss = run_case(
            &format!("seq_scan({n})"),
            &AccessPattern::SeqScan { n },
            64,
            8,
            0.0,
            &mut last_scrape,
        );
        report.note("n", n).metric("work_per_miss_x", per_miss);
    }
    println!();
    for (m, b) in [(32usize, 8usize), (64, 8), (128, 16)] {
        run_case(
            "random(4k/512)",
            &AccessPattern::Random {
                n: 4096,
                range: 512,
                seed: 9,
            },
            m,
            b,
            0.0,
            &mut last_scrape,
        );
    }
    println!();
    for f in [0.0, 0.002, 0.01] {
        run_case(
            "strided(4k,s=7)",
            &AccessPattern::Strided {
                n: 4096,
                stride: 7,
                range: 512,
            },
            64,
            8,
            f,
            &mut last_scrape,
        );
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W_f per ideal-cache miss is a small constant across");
    println!("patterns, trace lengths, geometries and fault rates — Theorem 3.4 holds.");
    println!("(LRU at 2M stands in for OPT at M; see DESIGN.md substitution table.)");
}
