//! E2 — Theorem 3.3: external-memory simulation has O(t) expected total
//! work for `f ≤ B/(cM)`.
//!
//! Sweeps the machine geometry (M, B) and the fault rate over two EM
//! programs, reporting transfers-per-source-transfer. The per-round
//! overhead is O(M/B), so the constant scales with M/B — visible in the
//! table — while staying flat in `t` and in `f` below the theorem's bound.

use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{FaultConfig, PmConfig};
use ppm_sim::em::programs::{block_reverse, block_sum_built};
use ppm_sim::em::EmProgram;
use ppm_sim::{run_native_em, simulate_em_on_pm, EmPmLayout};

const WIDTHS: [usize; 8] = [12, 5, 4, 7, 7, 10, 8, 8];

fn run_case(name: &str, prog: &EmProgram, ext: Vec<i64>, f: f64, scrape: &mut String) -> f64 {
    let cfg = if f == 0.0 {
        FaultConfig::none()
    } else {
        FaultConfig::soft(f, 23)
    };
    let machine = Machine::new(
        PmConfig::parallel(1, 1 << 22)
            .with_block_size(prog.b)
            .with_fault(cfg),
    );
    let layout = EmPmLayout::new(&machine, prog, ext.len());
    layout.load_ext(&machine, &ext);
    let report = simulate_em_on_pm(&machine, prog, layout, 1 << 24).unwrap();
    assert!(report.halted);

    let mut native_ext = ext.clone();
    let native = run_native_em(prog, &mut native_ext, 1 << 24);
    assert_eq!(
        layout.read_ext(&machine, ext.len()),
        native_ext,
        "must match native"
    );

    let snap = machine.snapshot();
    row(
        &[
            s(name),
            s(prog.m),
            s(prog.b),
            s(f),
            s(native.transfers),
            s(snap.total_work()),
            f2(snap.total_work() as f64 / native.transfers.max(1) as f64),
            s(snap.soft_faults),
        ],
        &WIDTHS,
    );
    *scrape = machine.obs().registry().render();
    snap.total_work() as f64 / native.transfers.max(1) as f64
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E2 (Theorem 3.3)",
        "(M,B) external-memory simulation on the PM model",
        "any EM computation of t transfers runs in O(t) expected total work for f <= B/(cM)",
    );
    header(
        &["program", "M", "B", "f", "t", "W_f", "W_f/t", "faults"],
        &WIDTHS,
    );

    // Geometry sweep, faultless: the constant tracks M/B.
    let mut last_scrape = String::new();
    for (m, b) in [(32usize, 8usize), (64, 8), (128, 8), (64, 16)] {
        let nb = 24;
        let ext: Vec<i64> = (0..((nb + 1) * b) as i64).collect();
        run_case(
            "block_sum",
            &block_sum_built(nb, m, b),
            ext,
            0.0,
            &mut last_scrape,
        );
    }
    println!();
    // t sweep at fixed geometry: W_f/t flat in t.
    let mut report = BenchReport::new("exp_t33_em_sim");
    for nb in cli.cap_sizes(&[8usize, 32, 128]) {
        let (m, b) = (64usize, 8usize);
        let ext: Vec<i64> = vec![1; (nb + 1) * b];
        let per_t = run_case(
            "block_sum",
            &block_sum_built(nb, m, b),
            ext,
            0.0,
            &mut last_scrape,
        );
        report.note("nb", nb).metric("work_per_transfer_x", per_t);
    }
    println!();
    // f sweep at fixed geometry: B/(cM) = 8/(2*64) = 1/16; stay below.
    for f in [0.0, 0.002, 0.01, 0.03] {
        let (nb, m, b) = (64usize, 64usize, 8usize);
        let ext: Vec<i64> = vec![1; (nb + 1) * b];
        run_case(
            "block_sum",
            &block_sum_built(nb, m, b),
            ext,
            f,
            &mut last_scrape,
        );
    }
    println!();
    for f in [0.0, 0.01] {
        let (nb, m, b) = (16usize, 64usize, 8usize);
        let ext: Vec<i64> = (0..(2 * nb * b) as i64).collect();
        run_case(
            "block_rev",
            &block_reverse(nb, m, b),
            ext,
            f,
            &mut last_scrape,
        );
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: W_f/t grows with M/B (the per-round copy cost), is flat");
    println!("in t, and rises only mildly with f below B/(cM) — Theorem 3.3 holds.");
}
