//! E8 — Theorem 7.3: samplesort in O((n/B)·log_M n) work versus
//! mergesort's O((n/B)·log(n/M)).
//!
//! Sweeps `n` at fixed (M, B), reporting both sorts' I/O counts, the
//! normalized constants against their respective analytic factors, and
//! the ratio — which should grow in mergesort's disfavour as n/M grows,
//! since log(n/M) grows while log_M n barely moves.

use ppm_algs::sort::samplesort_pool_words;
use ppm_algs::util::{scatter_naive, BlockScatter};
use ppm_algs::{MergeSort, SampleSort};
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::{Addr, PmConfig, Word};
use ppm_sched::{Runtime, SchedConfig};

const W: [usize; 8] = [8, 11, 11, 9, 10, 10, 9, 9];

fn data(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7)) % 1_000_000_007)
        .collect()
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E8 (Theorem 7.3)",
        "samplesort vs mergesort I/O",
        "samplesort O((n/B) log_M n) beats mergesort O((n/B) log(n/M)) as n/M grows",
    );

    let m_eph = 128; // small M exaggerates the asymptotic gap at feasible n
    let b = 8;

    header(
        &[
            "n",
            "W merge",
            "W sample",
            "ms/ss",
            "per-lvl-m",
            "per-lvl-s",
            "log(n/M)",
            "log_M n",
        ],
        &W,
    );

    let mut report = BenchReport::new("exp_t73_sort");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13]) {
        let input = data(n);
        let mut expect = input.clone();
        expect.sort_unstable();

        let w_ms = {
            let m = Machine::new(
                PmConfig::parallel(1, 1 << 24)
                    .with_block_size(b)
                    .with_ephemeral_words(m_eph),
            );
            let ms = MergeSort::new(&m, n);
            ms.load_input(&m, &input);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 15));
            let rep = rt.run_or_replay(&ms.comp());
            assert!(rep.completed());
            assert_eq!(ms.read_output(rt.machine()), expect);
            rep.stats().total_work()
        };
        let w_ss = {
            let m = Machine::with_pool_words(
                PmConfig::parallel(1, 1 << 25)
                    .with_block_size(b)
                    .with_ephemeral_words(m_eph),
                samplesort_pool_words(n),
            );
            let ss = SampleSort::new(&m, n);
            ss.load_input(&m, &input);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 16));
            let rep = rt.run_or_replay(&ss.comp());
            assert!(rep.completed());
            assert_eq!(ss.read_output(rt.machine()), expect);
            last_scrape = rt.machine().obs().registry().render();
            rep.stats().total_work()
        };

        let nb = n as f64 / b as f64;
        let log_n_m = (n as f64 / m_eph as f64).log2().max(1.0);
        let log_m_n = (n as f64).log2() / (m_eph as f64).log2();
        row(
            &[
                s(n),
                s(w_ms),
                s(w_ss),
                f2(w_ms as f64 / w_ss as f64),
                f2(w_ms as f64 / (nb * log_n_m)),
                f2(w_ss as f64 / (nb * log_m_n)),
                f2(log_n_m),
                f2(log_m_n),
            ],
            &W,
        );
        report
            .note("n", n)
            .metric("merge_per_level_x", w_ms as f64 / (nb * log_n_m))
            .metric("sample_per_level_x", w_ss as f64 / (nb * log_m_n));
    }
    // --- propagation-blocking scatter microbench (1M keys) -----------
    //
    // The samplesort scatter phase in isolation: move 1M keys into ~√n
    // buckets, once through the naive per-element scatter (every write
    // lands in a cold block: ~1 transfer per key) and once through the
    // `BlockScatter` staging bins (sequential appends, full-block
    // streams: ~1 transfer per B keys). The ratio is the baselined
    // `scatter_seq_over_random_x` — ≤ 0.667 means the blocked move is at
    // least 1.5x cheaper.
    let (w_blocked, w_naive) = {
        let n = 1 << 20;
        let buckets = 1 << 10;
        let m = Machine::new(PmConfig::parallel(1, 1 << 22).with_block_size(b));
        let src = m.alloc_region(n);
        let dst = m.alloc_region(n);
        // Bucket assignment and destination offsets are uncosted setup:
        // samplesort derives them in its counts/prefix phases, which this
        // microbench holds fixed to isolate the move.
        let keys = data(n);
        let assign: Vec<usize> = keys
            .iter()
            .map(|k| (k.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 44) as usize % buckets)
            .collect();
        let mut offs = vec![0usize; buckets + 1];
        for &j in &assign {
            offs[j + 1] += 1;
        }
        for j in 0..buckets {
            offs[j + 1] += offs[j];
        }
        for (i, k) in keys.iter().enumerate() {
            m.mem().store(src.at(i), *k);
        }

        let mut ctx = m.ctx(0);
        let work = |ctx: &ppm_pm::ProcCtx| {
            let s = ctx.stats().snapshot();
            s.total_reads + s.total_writes
        };

        ctx.begin_capsule("scatter/blocked");
        let before = work(&ctx);
        let mut sc = BlockScatter::new(
            &ctx,
            (0..buckets)
                .map(|j| dst.cursor(offs[j]))
                .collect::<Vec<Addr>>(),
        );
        let mut pos = 0usize;
        while pos < n {
            let take = 4096.min(n - pos);
            let chunk = ppm_algs::util::pread_range(&mut ctx, src.at(pos), take).unwrap();
            for (o, w) in chunk.iter().enumerate() {
                sc.push(&mut ctx, assign[pos + o], *w).unwrap();
            }
            pos += take;
        }
        sc.flush(&mut ctx).unwrap();
        let w_blocked = work(&ctx) - before;
        ctx.complete_capsule();

        ctx.begin_capsule("scatter/naive");
        let before = work(&ctx);
        let mut cursors: Vec<Addr> = (0..buckets).map(|j| dst.cursor(offs[j])).collect();
        let mut pos = 0usize;
        while pos < n {
            let take = 4096.min(n - pos);
            let chunk = ppm_algs::util::pread_range(&mut ctx, src.at(pos), take).unwrap();
            scatter_naive(
                &mut ctx,
                &mut cursors,
                chunk.iter().enumerate().map(|(o, w)| (assign[pos + o], *w)),
            )
            .unwrap();
            pos += take;
        }
        let w_naive = work(&ctx) - before;
        ctx.complete_capsule();

        // The second pass overwrote the first with the same permutation.
        let mut sorted_by_bucket: Vec<Word> = (0..n).map(|i| m.mem().load(dst.at(i))).collect();
        let mut expect = keys.clone();
        sorted_by_bucket.sort_unstable();
        expect.sort_unstable();
        assert_eq!(sorted_by_bucket, expect, "scatter must permute the input");
        (w_blocked, w_naive)
    };
    let scatter_x = w_blocked as f64 / w_naive as f64;
    println!("\nscatter microbench (1M keys, 1024 buckets, B = {b}):");
    println!(
        "  blocked W = {w_blocked}   naive W = {w_naive}   ratio = {}",
        f2(scatter_x)
    );
    report.metric("scatter_seq_over_random_x", scatter_x);

    // --- frame write-combining ratio (registered form) ---------------
    //
    // The registered pipeline writes every phase frame through the
    // per-proc staging buffer; staged_persists/staged_words is the
    // fraction of a raw word-per-transfer cost actually charged (1/B is
    // perfect coalescing, 1.0 is none).
    {
        let n = 1 << 12;
        let m = Machine::with_pool_words(
            PmConfig::parallel(1, 1 << 25)
                .with_block_size(b)
                .with_ephemeral_words(m_eph),
            samplesort_pool_words(n),
        );
        let ss = SampleSort::new(&m, n);
        let input = data(n);
        ss.load_input(&m, &input);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 16));
        let rep = rt.run_or_recover(&ss.pcomp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(ss.read_output(rt.machine()), expect);
        let snap = rep.stats();
        let ratio = snap
            .frame_coalesce_ratio()
            .expect("registered samplesort stages frame words");
        println!("\nframe write-combining (registered samplesort, n = {n}):");
        println!(
            "  staged words = {}   persists = {}   coalesce ratio = {}",
            snap.staged_words,
            snap.staged_persists,
            f2(ratio)
        );
        report.metric("frame_coalesce_ratio", ratio);
    }

    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: each normalized per-level constant is flat in n for its");
    println!("own model (columns 5-6), and the ms/ss ratio drifts upward with n —");
    println!("the log(n/M) vs log_M n separation of Theorem 7.3. Crossover position");
    println!("depends on constants; the trend direction is the reproducible claim.");
}
