//! E8 — Theorem 7.3: samplesort in O((n/B)·log_M n) work versus
//! mergesort's O((n/B)·log(n/M)).
//!
//! Sweeps `n` at fixed (M, B), reporting both sorts' I/O counts, the
//! normalized constants against their respective analytic factors, and
//! the ratio — which should grow in mergesort's disfavour as n/M grows,
//! since log(n/M) grows while log_M n barely moves.

use ppm_algs::sort::samplesort_pool_words;
use ppm_algs::{MergeSort, SampleSort};
use ppm_bench::{banner, f2, header, row, s, BenchReport};
use ppm_core::Machine;
use ppm_pm::PmConfig;
use ppm_sched::{Runtime, SchedConfig};

const W: [usize; 8] = [8, 11, 11, 9, 10, 10, 9, 9];

fn data(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7)) % 1_000_000_007)
        .collect()
}

fn main() {
    let cli = ppm_bench::cli::Cli::from_env();
    banner(
        "E8 (Theorem 7.3)",
        "samplesort vs mergesort I/O",
        "samplesort O((n/B) log_M n) beats mergesort O((n/B) log(n/M)) as n/M grows",
    );

    let m_eph = 128; // small M exaggerates the asymptotic gap at feasible n
    let b = 8;

    header(
        &[
            "n",
            "W merge",
            "W sample",
            "ms/ss",
            "per-lvl-m",
            "per-lvl-s",
            "log(n/M)",
            "log_M n",
        ],
        &W,
    );

    let mut report = BenchReport::new("exp_t73_sort");
    let mut last_scrape = String::new();
    for n in cli.cap_sizes(&[1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13]) {
        let input = data(n);
        let mut expect = input.clone();
        expect.sort_unstable();

        let w_ms = {
            let m = Machine::new(
                PmConfig::parallel(1, 1 << 24)
                    .with_block_size(b)
                    .with_ephemeral_words(m_eph),
            );
            let ms = MergeSort::new(&m, n);
            ms.load_input(&m, &input);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 15));
            let rep = rt.run_or_replay(&ms.comp());
            assert!(rep.completed());
            assert_eq!(ms.read_output(rt.machine()), expect);
            rep.stats().total_work()
        };
        let w_ss = {
            let m = Machine::with_pool_words(
                PmConfig::parallel(1, 1 << 25)
                    .with_block_size(b)
                    .with_ephemeral_words(m_eph),
                samplesort_pool_words(n),
            );
            let ss = SampleSort::new(&m, n);
            ss.load_input(&m, &input);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 16));
            let rep = rt.run_or_replay(&ss.comp());
            assert!(rep.completed());
            assert_eq!(ss.read_output(rt.machine()), expect);
            last_scrape = rt.machine().obs().registry().render();
            rep.stats().total_work()
        };

        let nb = n as f64 / b as f64;
        let log_n_m = (n as f64 / m_eph as f64).log2().max(1.0);
        let log_m_n = (n as f64).log2() / (m_eph as f64).log2();
        row(
            &[
                s(n),
                s(w_ms),
                s(w_ss),
                f2(w_ms as f64 / w_ss as f64),
                f2(w_ms as f64 / (nb * log_n_m)),
                f2(w_ss as f64 / (nb * log_m_n)),
                f2(log_n_m),
                f2(log_m_n),
            ],
            &W,
        );
        report
            .note("n", n)
            .metric("merge_per_level_x", w_ms as f64 / (nb * log_n_m))
            .metric("sample_per_level_x", w_ss as f64 / (nb * log_m_n));
    }
    report.embed_scrape(&last_scrape);
    report.emit();

    println!("\nshape check: each normalized per-level constant is flat in n for its");
    println!("own model (columns 5-6), and the ms/ss ratio drifts upward with n —");
    println!("the log(n/M) vs log_M n separation of Theorem 7.3. Crossover position");
    println!("depends on constants; the trend direction is the reproducible claim.");
}
