//! Machine-readable experiment results: `BENCH_<name>.json`.
//!
//! Every `exp_*` binary emits, alongside its human-readable table, one
//! JSON file of named numeric metrics. CI uploads these as workflow
//! artifacts and gates merges on the `bench_check` comparator, which
//! compares the current metrics against the checked-in
//! `bench/baseline.json` with a generous regression threshold — so a
//! change that silently triples the durable-write overhead fails the
//! build instead of landing unnoticed.
//!
//! The build environment is offline (no serde); the format is
//! deliberately a flat, restricted JSON subset written and parsed by
//! this module:
//!
//! ```json
//! {
//!   "name": "exp_example",
//!   "meta": {"n": "4096"},
//!   "metrics": {"run_ms": 12.5, "overhead_x": 1.42}
//! }
//! ```
//!
//! Metric keys ending in `_ms`, `_ns`, `_x`, or `_words` are
//! lower-is-better by convention; the comparator treats *all* baselined
//! metrics as lower-is-better, so only put such metrics in the baseline.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Environment variable selecting the output directory for
/// `BENCH_*.json` files (default: the current directory).
pub const BENCH_DIR_ENV: &str = "PPM_BENCH_DIR";

/// A single experiment's machine-readable result set.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Experiment name (`exp_*`), also the output file stem.
    pub name: String,
    /// Named numeric results.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form context (problem sizes, processor counts, ...).
    pub meta: BTreeMap<String, String>,
}

impl BenchReport {
    /// An empty report for experiment `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            metrics: BTreeMap::new(),
            meta: BTreeMap::new(),
        }
    }

    /// Records metric `key = value` (last write wins).
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.insert(key.into(), value);
        self
    }

    /// Records a duration metric in fractional milliseconds.
    pub fn metric_ms(&mut self, key: impl Into<String>, d: std::time::Duration) -> &mut Self {
        self.metric(key, d.as_secs_f64() * 1e3)
    }

    /// Records contextual metadata.
    pub fn note(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.meta.insert(key.into(), value.to_string());
        self
    }

    /// Serializes to the restricted JSON subset.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        s.push_str("  \"meta\": {");
        let meta: Vec<String> = self
            .meta
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
            .collect();
        s.push_str(&meta.join(", "));
        s.push_str("},\n  \"metrics\": {");
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", escape(k), fmt_f64(*v)))
            .collect();
        s.push_str(&metrics.join(", "));
        s.push_str("}\n}\n");
        s
    }

    /// Embeds a Prometheus-format scrape (see [`ppm_obs::MetricsRegistry::render`])
    /// as metrics named `obs.<family>[.<label>_<value>...]` — the final
    /// observability snapshot rides along in `BENCH_<name>.json`, so a CI
    /// artifact carries the counters (steals, adoptions, checkpoint skips,
    /// faults) behind each wall-clock number. Label values are sanitized
    /// to `[A-Za-z0-9_]` so the restricted JSON subset round-trips; `#`
    /// comment lines and non-finite samples are skipped.
    pub fn embed_scrape(&mut self, scrape: &str) -> &mut Self {
        for line in scrape.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<f64>() else {
                continue;
            };
            if !value.is_finite() {
                continue;
            }
            let mut key = String::from("obs.");
            match series.split_once('{') {
                None => key.push_str(series),
                Some((family, labels)) => {
                    key.push_str(family);
                    for lab in labels.trim_end_matches('}').split(',') {
                        let Some((k, v)) = lab.split_once('=') else {
                            continue;
                        };
                        key.push('.');
                        key.push_str(k.trim());
                        key.push('_');
                        for c in v.trim().trim_matches('"').chars() {
                            key.push(if c.is_ascii_alphanumeric() { c } else { '_' });
                        }
                    }
                }
            }
            self.metric(key, value);
        }
        self
    }

    /// Renders `registry` and embeds the snapshot via [`Self::embed_scrape`].
    pub fn embed_obs(&mut self, registry: &ppm_obs::MetricsRegistry) -> &mut Self {
        self.embed_scrape(&registry.render())
    }

    /// The output path this report writes to under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json` into `dir`.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = self.path_in(dir);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the report into [`BENCH_DIR_ENV`] (or the current
    /// directory) and prints where it went. Failures are reported, not
    /// fatal — an experiment's table output stands on its own.
    pub fn emit(&self) {
        let dir = std::env::var_os(BENCH_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        match self.write_to(&dir) {
            Ok(path) => println!("\nbench report: {}", path.display()),
            Err(e) => eprintln!("\nbench report not written ({e})"),
        }
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    /// This is a parser for exactly that subset, not general JSON.
    pub fn parse(text: &str) -> Option<Self> {
        let name = extract_str(text, "name")?;
        let metrics_body = extract_obj(text, "metrics")?;
        let meta_body = extract_obj(text, "meta")?;
        let mut report = BenchReport::new(name);
        for (k, v) in pairs(&meta_body) {
            report.note(k, v.trim_matches('"'));
        }
        for (k, v) in pairs(&metrics_body) {
            let val = v.trim().parse::<f64>().ok()?;
            if !val.is_finite() {
                // A non-finite metric marks a broken measurement (see
                // `fmt_f64`); refuse the whole report.
                return None;
            }
            report.metric(k, val);
        }
        Some(report)
    }

    /// Loads every `BENCH_*.json` — and every `TRACE_*.json` written by
    /// `ppm-trace`, which uses the same restricted format so its W / D /
    /// parallelism / wasted-work numbers gate like any benchmark — in
    /// `dir`.
    pub fn load_dir(dir: &Path) -> io::Result<Vec<BenchReport>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if (stem.starts_with("BENCH_") || stem.starts_with("TRACE_")) && stem.ends_with(".json")
            {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    if let Some(rep) = BenchReport::parse(&text) {
                        out.push(rep);
                    }
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Enough digits to round-trip doubles we care about; no exponent
        // notation for the common magnitudes.
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        // A NaN/Inf metric is a broken measurement. Emit a literal the
        // parser rejects, so the whole report reads as invalid and the
        // regression gate fails with MISSING — the same way it fails
        // for an experiment that stopped emitting — instead of the
        // metric silently serializing as something that passes a
        // lower-is-better comparison.
        "NaN".to_string()
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn extract_str(text: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_obj(text: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = text[at..].trim_start().strip_prefix('{')?;
    Some(rest[..rest.find('}')?].to_string())
}

/// Splits a flat `"k": v, "k2": v2` body into pairs (values may be bare
/// numbers or quoted strings; neither contains commas or braces by
/// construction).
fn pairs(body: &str) -> Vec<(String, String)> {
    body.split(',')
        .filter_map(|kv| {
            let (k, v) = kv.split_once(':')?;
            Some((k.trim().trim_matches('"').to_string(), v.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = BenchReport::new("exp_demo");
        r.metric("run_ms", 12.5)
            .metric("overhead_x", 1.375)
            .note("n", 4096)
            .note("procs", 4);
        let parsed = BenchReport::parse(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_sections_round_trip() {
        let r = BenchReport::new("exp_empty");
        let parsed = BenchReport::parse(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn write_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("ppm-bench-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = BenchReport::new("exp_a");
        a.metric("x_ms", 1.0);
        let mut b = BenchReport::new("exp_b");
        b.metric("y_ms", 2.0);
        a.write_to(&dir).unwrap();
        b.write_to(&dir).unwrap();
        std::fs::write(dir.join("not-a-report.txt"), "ignored").unwrap();
        let loaded = BenchReport::load_dir(&dir).unwrap();
        assert_eq!(loaded, vec![a, b]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durations_record_as_milliseconds() {
        let mut r = BenchReport::new("exp_t");
        r.metric_ms("flush_ms", std::time::Duration::from_micros(1500));
        assert!((r.metrics["flush_ms"] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(BenchReport::parse("not json").is_none());
        assert!(BenchReport::parse("{\"name\": \"x\"}").is_none());
    }

    #[test]
    fn embedded_scrape_round_trips() {
        let mut r = BenchReport::new("exp_obs");
        r.embed_scrape(
            "# HELP ppm_work_total faultless work\n\
             # TYPE ppm_work_total counter\n\
             ppm_work_total 42\n\
             ppm_reads_total{proc=\"0\"} 7\n\
             ppm_steal_latency_us_bucket{le=\"+Inf\"} 3\n\
             ppm_bad NaN\n",
        );
        assert_eq!(r.metrics["obs.ppm_work_total"], 42.0);
        assert_eq!(r.metrics["obs.ppm_reads_total.proc_0"], 7.0);
        assert_eq!(r.metrics["obs.ppm_steal_latency_us_bucket.le__Inf"], 3.0);
        assert!(!r.metrics.contains_key("obs.ppm_bad"));
        let parsed = BenchReport::parse(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn non_finite_metrics_poison_the_report() {
        let mut r = BenchReport::new("exp_nan");
        r.metric("bad_x", f64::NAN)
            .metric("also_bad_x", f64::INFINITY);
        // The serialized form must NOT parse back: the gate then reports
        // the experiment's metrics as MISSING instead of passing a bogus
        // zero through a lower-is-better comparison.
        assert!(BenchReport::parse(&r.to_json()).is_none());
    }
}
