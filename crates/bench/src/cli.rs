//! Shared experiment-parameter handling for the `exp_*` binaries.
//!
//! Every experiment binary accepts the same overrides, read once from the
//! command line (`--key=value`) with environment-variable fallbacks, and
//! supplies its own defaults at each use site:
//!
//! | flag        | env          | meaning                                       |
//! |-------------|--------------|-----------------------------------------------|
//! | `--n=`      | `PPM_N`      | problem size (sweeps are capped at this size) |
//! | `--procs=`  | `PPM_PROCS`  | model processor count `P`                     |
//! | `--seeds=`  | `PPM_SEEDS`  | randomized repetition count                   |
//! | `--seed=`   | `PPM_SEED`   | base RNG seed                                 |
//! | `--trials=` | `PPM_TRIALS` | measurement repetitions per configuration     |
//!
//! Example: `cargo run --release -p ppm-bench --bin exp_t71_prefix --`
//! `--n=4096 --procs=2` (or `PPM_N=4096 PPM_PROCS=2 cargo run ...`).

/// Parsed experiment-parameter overrides; absent fields fall back to the
/// defaults each experiment passes at the use site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cli {
    n: Option<usize>,
    procs: Option<usize>,
    seeds: Option<u64>,
    seed: Option<u64>,
    trials: Option<usize>,
}

impl Cli {
    /// Reads overrides from the process's command line and environment
    /// (flags win over env vars). Unknown or malformed flags abort with a
    /// usage message rather than being silently ignored.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1), |key| std::env::var(key).ok())
    }

    fn parse(args: impl Iterator<Item = String>, env: impl Fn(&str) -> Option<String>) -> Self {
        let mut cli = Cli::default();
        for (key, var) in [
            ("n", "PPM_N"),
            ("procs", "PPM_PROCS"),
            ("seeds", "PPM_SEEDS"),
            ("seed", "PPM_SEED"),
            ("trials", "PPM_TRIALS"),
        ] {
            if let Some(v) = env(var) {
                cli.set(key, &v);
            }
        }
        for arg in args {
            match arg.strip_prefix("--").and_then(|a| a.split_once('=')) {
                Some((key @ ("n" | "procs" | "seeds" | "seed" | "trials"), val)) => {
                    cli.set(key, val)
                }
                _ => {
                    eprintln!(
                        "unknown experiment argument `{arg}`; accepted: \
                         --n= --procs= --seeds= --seed= --trials="
                    );
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    fn set(&mut self, key: &str, val: &str) {
        fn parse<T: std::str::FromStr>(key: &str, val: &str) -> T {
            val.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{val}` for experiment parameter `{key}`");
                std::process::exit(2);
            })
        }
        match key {
            "n" => self.n = Some(parse(key, val)),
            "procs" => self.procs = Some(parse(key, val)),
            "seeds" => self.seeds = Some(parse(key, val)),
            "seed" => self.seed = Some(parse(key, val)),
            "trials" => self.trials = Some(parse(key, val)),
            _ => unreachable!("key set is fixed"),
        }
    }

    /// Problem size, or `default`.
    pub fn n(&self, default: usize) -> usize {
        self.n.unwrap_or(default)
    }

    /// Caps a problem-size sweep: keeps the sweep's sizes up to the
    /// override (so `--n=4096` turns a long sweep into a quick one), or
    /// returns it unchanged when no override is given. Always keeps at
    /// least the smallest size.
    pub fn cap_sizes(&self, sizes: &[usize]) -> Vec<usize> {
        match self.n {
            None => sizes.to_vec(),
            Some(cap) => {
                let kept: Vec<usize> = sizes.iter().copied().filter(|s| *s <= cap).collect();
                if kept.is_empty() {
                    sizes.iter().copied().min().into_iter().collect()
                } else {
                    kept
                }
            }
        }
    }

    /// Processor count, or `default`.
    pub fn procs(&self, default: usize) -> usize {
        self.procs.unwrap_or(default)
    }

    /// Randomized repetition count, or `default`.
    pub fn seeds(&self, default: u64) -> u64 {
        self.seeds.unwrap_or(default)
    }

    /// Base RNG seed, or `default`.
    pub fn seed(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Measurement repetitions, or `default`.
    pub fn trials(&self, default: usize) -> usize {
        self.trials.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn defaults_pass_through_when_nothing_is_set() {
        let cli = Cli::parse(std::iter::empty(), no_env);
        assert_eq!(cli.n(1024), 1024);
        assert_eq!(cli.procs(4), 4);
        assert_eq!(cli.seeds(12), 12);
        assert_eq!(cli.seed(7), 7);
        assert_eq!(cli.trials(5), 5);
        assert_eq!(cli.cap_sizes(&[8, 16, 32]), vec![8, 16, 32]);
    }

    #[test]
    fn flags_override_defaults() {
        let args = [
            "--n=256",
            "--procs=2",
            "--seeds=3",
            "--seed=9",
            "--trials=1",
        ]
        .into_iter()
        .map(String::from);
        let cli = Cli::parse(args, no_env);
        assert_eq!(cli.n(1024), 256);
        assert_eq!(cli.procs(4), 2);
        assert_eq!(cli.seeds(12), 3);
        assert_eq!(cli.seed(7), 9);
        assert_eq!(cli.trials(5), 1);
    }

    #[test]
    fn env_fills_in_and_flags_win() {
        let env = |key: &str| (key == "PPM_N").then(|| "64".to_string());
        let cli = Cli::parse(std::iter::empty(), env);
        assert_eq!(cli.n(1024), 64);
        let cli = Cli::parse(["--n=128".to_string()].into_iter(), env);
        assert_eq!(cli.n(1024), 128, "flags override env");
    }

    #[test]
    fn cap_sizes_truncates_sweeps_but_keeps_the_smallest() {
        let cli = Cli::parse(["--n=100".to_string()].into_iter(), no_env);
        assert_eq!(cli.cap_sizes(&[16, 64, 256, 1024]), vec![16, 64]);
        let cli = Cli::parse(["--n=4".to_string()].into_iter(), no_env);
        assert_eq!(cli.cap_sizes(&[16, 64, 256]), vec![16], "floor at smallest");
    }
}
