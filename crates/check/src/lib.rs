//! # `ppm-check` — bounded model checking for the Parallel-PM protocols
//!
//! The lease/adoption and checkpoint-quiesce protocols are subtle enough
//! that example-level SIGKILL tests under-explore the interleaving space:
//! a kill-point test samples one crash site per run, while the bugs that
//! matter live in *specific* orderings of heartbeat renewals, tombstone
//! writes, CAM races and crash points. This crate provides the exhaustive
//! complement: protocol state machines implement the [`Model`] trait and
//! the [`Explorer`] enumerates every reachable interleaving up to a depth
//! bound, checking safety invariants in every state and reporting a
//! **minimal counterexample trace** on violation (BFS order makes the
//! first violation found a shortest one).
//!
//! The concrete models live in `ppm-sched::model` (this crate stays
//! dependency-free so the scheduler crate can depend on it without a
//! cycle); `specs/tla/` holds TLA+ twins of the same state machines, and
//! the invariant names used here (`NoLostTask`, `NoDoubleExecution`,
//! `TombstoneSticky`, `NoLiveFrameReclaim`) match the TLA+ properties
//! one-to-one so a violation can be cross-checked in either framework.
//!
//! ```
//! use ppm_check::{Explorer, ExplorerConfig, Model};
//!
//! // A toy model: a counter that two "workers" may bump; the invariant
//! // bounds it. The explorer finds the shortest trace to a violation.
//! struct Bump;
//! impl Model for Bump {
//!     type State = u32;
//!     type Action = usize; // which worker bumps
//!     fn initial(&self) -> Vec<u32> { vec![0] }
//!     fn actions(&self, s: &u32) -> Vec<usize> {
//!         if *s < 10 { vec![0, 1] } else { vec![] }
//!     }
//!     fn step(&self, s: &u32, _a: &usize) -> u32 { s + 1 }
//!     fn invariant(&self, s: &u32) -> Result<(), String> {
//!         if *s > 2 { Err(format!("counter hit {s}")) } else { Ok(()) }
//!     }
//! }
//! let report = Explorer::new(ExplorerConfig::depth(8)).run(&Bump);
//! let cex = report.violation.expect("the bound is reachable");
//! assert_eq!(cex.trace.len(), 3, "BFS finds the 3-step minimum");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// A protocol state machine the [`Explorer`] can enumerate.
///
/// Implementations are *abstract* models: small value-type states with
/// explicit transition enums, not the real runtime structures. Crash
/// transitions are ordinary actions — a model that wants crash coverage
/// at persist boundaries returns `Crash(p)` actions from
/// [`Model::actions`] wherever the real protocol has a boundary.
pub trait Model {
    /// Global protocol state. Keep it small: the explorer clones it per
    /// transition and hashes it for the visited set.
    type State: Clone + Eq + Hash + Debug;
    /// One enabled transition, e.g. `Renew { shard: 1 }`.
    type Action: Clone + Debug;

    /// The initial state(s) of the protocol.
    fn initial(&self) -> Vec<Self::State>;

    /// All transitions enabled in `state`. An empty vector marks a
    /// terminal state (checked with [`Model::on_terminal`]).
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action` to `state`. Must be deterministic — all
    /// nondeterminism lives in the *choice* of action.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// A safety invariant, checked in **every** reachable state.
    /// `Err(reason)` is a violation.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    /// Checked only in terminal states (no enabled actions) — the place
    /// for liveness-at-quiescence obligations like "every task executed".
    fn on_terminal(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// The visited-set key of `state`. Override to fold out symmetries
    /// (e.g. hash a canonicalized state with worker ids relabeled in
    /// first-appearance order); the default hashes the state as-is.
    fn fingerprint(&self, state: &Self::State) -> u64 {
        let mut h = DefaultHasher::new();
        state.hash(&mut h);
        h.finish()
    }
}

/// Bounds on an exploration run.
#[derive(Debug, Clone, Copy)]
pub struct ExplorerConfig {
    /// Maximum trace depth (actions from an initial state).
    pub max_depth: usize,
    /// Maximum distinct states to expand before truncating.
    pub max_states: usize,
    /// Wall-clock budget; exploration truncates when it expires.
    pub time_budget: Option<Duration>,
}

impl ExplorerConfig {
    /// A depth-bounded config with a generous state cap and no clock.
    pub fn depth(max_depth: usize) -> Self {
        ExplorerConfig {
            max_depth,
            max_states: 10_000_000,
            time_budget: None,
        }
    }

    /// Caps the number of distinct states expanded.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Adds a wall-clock budget (for CI: a pinned depth *and* a ceiling
    /// on how long the job may take).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

/// A shortest-known trace from an initial state to a violating state.
#[derive(Debug, Clone)]
pub struct Counterexample<M: Model> {
    /// The actions, in order, from the initial state to the violation.
    pub trace: Vec<M::Action>,
    /// Every state along the trace, `states[0]` initial and
    /// `states[trace.len()]` the violating one.
    pub states: Vec<M::State>,
    /// The invariant's error message.
    pub reason: String,
    /// Whether the violation fired in a terminal state
    /// ([`Model::on_terminal`]) rather than a safety invariant.
    pub terminal: bool,
}

impl<M: Model> Counterexample<M> {
    /// Renders the trace as numbered `action → state` lines — the format
    /// written to `.trace` artifacts and replayed by the regression
    /// corpus.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let kind = if self.terminal {
            "terminal"
        } else {
            "invariant"
        };
        out.push_str(&format!(
            "{} violation after {} step(s): {}\n",
            kind,
            self.trace.len(),
            self.reason
        ));
        out.push_str(&format!("  init  {:?}\n", self.states[0]));
        for (i, a) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "  {:>4}. {:?}\n        → {:?}\n",
                i + 1,
                a,
                self.states[i + 1]
            ));
        }
        out
    }
}

/// The outcome of one exploration run.
#[derive(Debug)]
pub struct Report<M: Model> {
    /// Distinct states visited (by fingerprint).
    pub states: usize,
    /// Transitions taken (state expansions × enabled actions).
    pub transitions: usize,
    /// Deepest trace reached.
    pub max_depth_reached: usize,
    /// Whether any bound (depth, states, clock) truncated the search.
    pub truncated: bool,
    /// The first — and therefore minimal-depth — violation found.
    pub violation: Option<Counterexample<M>>,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
}

impl<M: Model> Report<M> {
    /// Panics with the rendered counterexample if the run found a
    /// violation. The `#[should_panic]` hook for mutation tests.
    pub fn assert_ok(&self) {
        if let Some(cex) = &self.violation {
            panic!("{}", cex.render());
        }
    }

    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} states, {} transitions, depth {} reached in {:?}{}{}",
            self.states,
            self.transitions,
            self.max_depth_reached,
            self.elapsed,
            if self.truncated { " (truncated)" } else { "" },
            if self.violation.is_some() {
                " — VIOLATION"
            } else {
                ""
            }
        )
    }
}

/// Breadth-first bounded explorer. BFS (rather than DFS) so that the
/// first violation encountered is at minimal depth — counterexamples
/// come out shortest-first without a separate minimization pass.
pub struct Explorer {
    config: ExplorerConfig,
}

/// One node of the BFS arena: the state plus the parent pointer used to
/// reconstruct traces without storing a trace per frontier entry.
struct Node<M: Model> {
    state: M::State,
    parent: usize,
    action: Option<M::Action>,
    depth: usize,
}

impl Explorer {
    /// An explorer with the given bounds.
    pub fn new(config: ExplorerConfig) -> Self {
        Explorer { config }
    }

    /// Runs the model to the configured bounds, stopping at the first
    /// violation.
    pub fn run<M: Model>(&self, model: &M) -> Report<M> {
        let start = Instant::now();
        let mut nodes: Vec<Node<M>> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut frontier: VecDeque<usize> = VecDeque::new();
        let mut transitions = 0usize;
        let mut max_depth_reached = 0usize;
        let mut truncated = false;

        let mut violation = None;
        'seed: for s in model.initial() {
            if let Err(reason) = model.invariant(&s) {
                nodes.push(Node {
                    state: s,
                    parent: usize::MAX,
                    action: None,
                    depth: 0,
                });
                violation = Some(self.rebuild(model, &nodes, nodes.len() - 1, reason, false));
                break 'seed;
            }
            if visited.insert(model.fingerprint(&s)) {
                nodes.push(Node {
                    state: s,
                    parent: usize::MAX,
                    action: None,
                    depth: 0,
                });
                frontier.push_back(nodes.len() - 1);
            }
        }

        'bfs: while let Some(idx) = frontier.pop_front() {
            if violation.is_some() {
                break;
            }
            if let Some(budget) = self.config.time_budget {
                if start.elapsed() > budget {
                    truncated = true;
                    break;
                }
            }
            let depth = nodes[idx].depth;
            max_depth_reached = max_depth_reached.max(depth);
            let actions = model.actions(&nodes[idx].state);
            if actions.is_empty() {
                if let Err(reason) = model.on_terminal(&nodes[idx].state) {
                    violation = Some(self.rebuild(model, &nodes, idx, reason, true));
                    break;
                }
                continue;
            }
            if depth >= self.config.max_depth {
                truncated = true;
                continue;
            }
            for action in actions {
                transitions += 1;
                let next = model.step(&nodes[idx].state, &action);
                if let Err(reason) = model.invariant(&next) {
                    nodes.push(Node {
                        state: next,
                        parent: idx,
                        action: Some(action),
                        depth: depth + 1,
                    });
                    violation = Some(self.rebuild(model, &nodes, nodes.len() - 1, reason, false));
                    break 'bfs;
                }
                if visited.insert(model.fingerprint(&next)) {
                    if visited.len() > self.config.max_states {
                        truncated = true;
                        break 'bfs;
                    }
                    nodes.push(Node {
                        state: next,
                        parent: idx,
                        action: Some(action),
                        depth: depth + 1,
                    });
                    frontier.push_back(nodes.len() - 1);
                }
            }
        }

        Report {
            states: visited.len(),
            transitions,
            max_depth_reached,
            truncated,
            violation,
            elapsed: start.elapsed(),
        }
    }

    /// Walks parent pointers from `idx` back to the root to materialize
    /// the counterexample trace.
    fn rebuild<M: Model>(
        &self,
        _model: &M,
        nodes: &[Node<M>],
        idx: usize,
        reason: String,
        terminal: bool,
    ) -> Counterexample<M> {
        let mut states = Vec::new();
        let mut trace = Vec::new();
        let mut cur = idx;
        loop {
            states.push(nodes[cur].state.clone());
            if let Some(a) = &nodes[cur].action {
                trace.push(a.clone());
            }
            if nodes[cur].parent == usize::MAX {
                break;
            }
            cur = nodes[cur].parent;
        }
        states.reverse();
        trace.reverse();
        Counterexample {
            trace,
            states,
            reason,
            terminal,
        }
    }
}

/// Replays a recorded action trace through a model, checking the
/// invariant at every step — the regression-corpus primitive. Returns
/// the final state; panics (with the step index) if the trace names an
/// action that is not enabled or if the invariant fails where the
/// recording says it should hold.
pub fn replay<M: Model>(
    model: &M,
    initial_index: usize,
    trace: &[M::Action],
    expect_violation_at_end: bool,
) -> M::State
where
    M::Action: PartialEq,
{
    let mut state = model
        .initial()
        .into_iter()
        .nth(initial_index)
        .expect("initial state index out of range");
    for (i, action) in trace.iter().enumerate() {
        assert!(
            model.actions(&state).iter().any(|a| a == action),
            "replay step {i}: action {action:?} not enabled in {state:?}"
        );
        state = model.step(&state, action);
        let check = model.invariant(&state);
        let last = i + 1 == trace.len();
        if last && expect_violation_at_end {
            assert!(
                check.is_err(),
                "replay expected a violation at the final step, got none in {state:?}"
            );
        } else {
            assert!(
                check.is_ok(),
                "replay step {i}: unexpected violation {:?} in {state:?}",
                check.unwrap_err()
            );
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tokens hopping between three cells; invariant: never both in
    /// the last cell. Shortest violation is 4 hops (2 per token).
    struct Hop;
    impl Model for Hop {
        type State = [u8; 2];
        type Action = (usize, u8);
        fn initial(&self) -> Vec<[u8; 2]> {
            vec![[0, 0]]
        }
        fn actions(&self, s: &[u8; 2]) -> Vec<(usize, u8)> {
            (0..2)
                .filter(|&t| s[t] < 2)
                .map(|t| (t, s[t] + 1))
                .collect()
        }
        fn step(&self, s: &[u8; 2], a: &(usize, u8)) -> [u8; 2] {
            let mut n = *s;
            n[a.0] = a.1;
            n
        }
        fn invariant(&self, s: &[u8; 2]) -> Result<(), String> {
            if s == &[2, 2] {
                Err("both tokens in cell 2".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn bfs_counterexample_is_minimal() {
        let report = Explorer::new(ExplorerConfig::depth(10)).run(&Hop);
        let cex = report.violation.expect("violation reachable");
        assert_eq!(cex.trace.len(), 4, "shortest trace is 4 hops");
        assert_eq!(cex.states.len(), 5);
        assert_eq!(*cex.states.last().unwrap(), [2, 2]);
        assert!(cex.render().contains("both tokens in cell 2"));
    }

    #[test]
    fn depth_bound_truncates_before_the_violation() {
        let report = Explorer::new(ExplorerConfig::depth(3)).run(&Hop);
        assert!(report.violation.is_none(), "violation needs depth 4");
        assert!(report.truncated);
        assert_eq!(report.max_depth_reached, 3);
    }

    #[test]
    fn state_cap_truncates() {
        let report = Explorer::new(ExplorerConfig::depth(10).with_max_states(3)).run(&Hop);
        assert!(report.truncated || report.violation.is_some());
    }

    #[test]
    #[should_panic(expected = "both tokens")]
    fn assert_ok_panics_with_the_trace() {
        Explorer::new(ExplorerConfig::depth(10))
            .run(&Hop)
            .assert_ok();
    }

    #[test]
    fn terminal_check_fires_only_in_terminal_states() {
        /// Counts to 2; terminal check requires having reached 2.
        struct Count(u8);
        impl Model for Count {
            type State = u8;
            type Action = ();
            fn initial(&self) -> Vec<u8> {
                vec![0]
            }
            fn actions(&self, s: &u8) -> Vec<()> {
                if *s < self.0 {
                    vec![()]
                } else {
                    vec![]
                }
            }
            fn step(&self, s: &u8, _a: &()) -> u8 {
                s + 1
            }
            fn invariant(&self, _s: &u8) -> Result<(), String> {
                Ok(())
            }
            fn on_terminal(&self, s: &u8) -> Result<(), String> {
                if *s == 2 {
                    Ok(())
                } else {
                    Err(format!("stopped early at {s}"))
                }
            }
        }
        Explorer::new(ExplorerConfig::depth(10))
            .run(&Count(2))
            .assert_ok();
        let r = Explorer::new(ExplorerConfig::depth(10)).run(&Count(1));
        let cex = r.violation.expect("terminal at 1 violates");
        assert!(cex.terminal);
    }

    #[test]
    fn replay_follows_a_recorded_trace() {
        let end = replay(&Hop, 0, &[(0, 1), (0, 2), (1, 1), (1, 2)], true);
        assert_eq!(end, [2, 2]);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn replay_rejects_disabled_actions() {
        replay(&Hop, 0, &[(0, 2)], false);
    }

    #[test]
    fn fingerprint_symmetry_reduction_folds_states() {
        /// Same Hop model but with token identity folded out: [a,b] and
        /// [b,a] share a fingerprint, halving the space.
        struct SymHop;
        impl Model for SymHop {
            type State = [u8; 2];
            type Action = (usize, u8);
            fn initial(&self) -> Vec<[u8; 2]> {
                Hop.initial()
            }
            fn actions(&self, s: &[u8; 2]) -> Vec<(usize, u8)> {
                Hop.actions(s)
            }
            fn step(&self, s: &[u8; 2], a: &(usize, u8)) -> [u8; 2] {
                Hop.step(s, a)
            }
            fn invariant(&self, s: &[u8; 2]) -> Result<(), String> {
                Hop.invariant(s)
            }
            fn fingerprint(&self, s: &[u8; 2]) -> u64 {
                let mut c = *s;
                c.sort_unstable();
                let mut h = DefaultHasher::new();
                c.hash(&mut h);
                h.finish()
            }
        }
        let plain = Explorer::new(ExplorerConfig::depth(3)).run(&Hop);
        let folded = Explorer::new(ExplorerConfig::depth(3)).run(&SymHop);
        assert!(
            folded.states < plain.states,
            "symmetry reduction shrinks the space"
        );
    }
}
