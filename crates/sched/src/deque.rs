//! Per-processor WS-deque state in persistent memory.
//!
//! Each processor owns one deque (§6.2): an array of `⟨tag, entry⟩` words
//! plus `top` and `bot` pointers, all in persistent memory. The deque never
//! deletes entries — stolen slots stay `taken` forever — so a computation
//! with many steals needs a proportionally sized array ("a WS-Deque
//! containing enough empty entries to complete the computation", §6.3);
//! overflow is a configuration error detected with a panic.
//!
//! [`check_invariant`] verifies the structural lemma of §6.2: entries are
//! always ordered `taken* job* local{0,1,2} empty*` (two locals only
//! transiently during `pushBottom`).

use ppm_pm::{Addr, PersistentMemory, Region};

use crate::entry::{kind_of, unpack, EntryKind, EntryVal};

/// Addresses of one processor's deque.
#[derive(Debug, Clone, Copy)]
pub struct DequeAddrs {
    /// The entry array (one word per slot).
    pub stack: Region,
    /// Address of the `top` pointer word.
    pub top: Addr,
    /// Address of the `bot` pointer word.
    pub bot: Addr,
    /// The owning processor.
    pub owner: usize,
    /// Number of slots.
    pub slots: usize,
}

impl DequeAddrs {
    /// Address of slot `i`'s entry word.
    #[inline]
    pub fn entry(&self, i: usize) -> Addr {
        assert!(
            i < self.slots,
            "deque slot {i} out of range {} — the WS-deque never \
                 deletes entries; size it for the computation (SchedConfig::deque_slots)",
            self.slots
        );
        self.stack.at(i)
    }

    /// Slot index of an entry address (inverse of [`DequeAddrs::entry`]).
    #[inline]
    pub fn slot_of(&self, addr: Addr) -> usize {
        addr - self.stack.start
    }
}

/// Carves deque state for `procs` processors with `slots` entries each.
pub fn build_deques(machine: &ppm_core::Machine, slots: usize) -> Vec<DequeAddrs> {
    let procs = machine.procs();
    (0..procs)
        .map(|p| {
            let stack = machine.alloc_region(slots);
            // top and bot each get their own block so owner bot-writes and
            // thief top-CAMs never share a block with entries.
            let top = machine.alloc_region(1).start;
            let bot = machine.alloc_region(1).start;
            DequeAddrs {
                stack,
                top,
                bot,
                owner: p,
                slots,
            }
        })
        .collect()
}

/// A decoded snapshot of a deque (oracle use: tests, experiments, debug).
#[derive(Debug, Clone)]
pub struct DequeSnapshot {
    /// Decoded `⟨tag, entry⟩` pairs, in slot order.
    pub entries: Vec<(u16, EntryVal)>,
    /// The `top` pointer.
    pub top: usize,
    /// The `bot` pointer.
    pub bot: usize,
}

/// Reads a deque's state (uncosted oracle read).
pub fn snapshot(mem: &PersistentMemory, d: &DequeAddrs) -> DequeSnapshot {
    DequeSnapshot {
        entries: (0..d.slots).map(|i| unpack(mem.load(d.entry(i)))).collect(),
        top: mem.load(d.top) as usize,
        bot: mem.load(d.bot) as usize,
    }
}

/// Checks the §6.2 structural invariant on a deque snapshot:
/// `taken* job* local{0,1,2} empty*`. Returns `Err` with a diagnostic if
/// violated.
pub fn check_invariant(mem: &PersistentMemory, d: &DequeAddrs) -> Result<(), String> {
    #[derive(PartialEq, PartialOrd, Debug)]
    enum Phase {
        Taken,
        Job,
        Local,
        Empty,
    }
    let mut phase = Phase::Taken;
    let mut locals = 0;
    for i in 0..d.slots {
        let kind = kind_of(mem.load(d.entry(i)));
        let needed = match kind {
            EntryKind::Taken => Phase::Taken,
            EntryKind::Job => Phase::Job,
            EntryKind::Local => Phase::Local,
            EntryKind::Empty => Phase::Empty,
        };
        if needed < phase {
            return Err(format!(
                "deque of proc {}: slot {i} is {kind:?} but an earlier slot was \
                 already in phase {phase:?} (violates taken* job* local* empty*)",
                d.owner
            ));
        }
        if kind == EntryKind::Local {
            locals += 1;
            if locals > 2 {
                return Err(format!(
                    "deque of proc {}: more than two local entries",
                    d.owner
                ));
            }
        }
        phase = needed;
    }
    Ok(())
}

/// Renders a deque snapshot compactly for diagnostics, e.g.
/// `top=2 bot=3 [T T J L . .]`.
pub fn render(mem: &PersistentMemory, d: &DequeAddrs) -> String {
    let snap = snapshot(mem, d);
    let body: String = snap
        .entries
        .iter()
        .map(|(_, v)| match v.kind() {
            EntryKind::Empty => ". ",
            EntryKind::Local => "L ",
            EntryKind::Job => "J ",
            EntryKind::Taken => "T ",
        })
        .collect();
    format!(
        "proc {} top={} bot={} [{}]",
        d.owner,
        snap.top,
        snap.bot,
        body.trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::pack;
    use ppm_core::Machine;
    use ppm_pm::PmConfig;

    fn setup() -> (Machine, Vec<DequeAddrs>) {
        let m = Machine::new(PmConfig::parallel(2, 1 << 18));
        let d = build_deques(&m, 16);
        (m, d)
    }

    #[test]
    fn fresh_deques_are_all_empty_and_valid() {
        let (m, ds) = setup();
        for d in &ds {
            let snap = snapshot(m.mem(), d);
            assert_eq!(snap.top, 0);
            assert_eq!(snap.bot, 0);
            assert!(snap
                .entries
                .iter()
                .all(|(t, v)| *t == 0 && *v == EntryVal::Empty));
            check_invariant(m.mem(), d).unwrap();
        }
    }

    #[test]
    fn invariant_accepts_legal_shapes() {
        let (m, ds) = setup();
        let d = &ds[0];
        // taken taken job job local empty...
        m.mem().store(
            d.entry(0),
            pack(
                3,
                EntryVal::Taken {
                    proc: 1,
                    slot: 0,
                    tag: 0,
                },
            ),
        );
        m.mem().store(
            d.entry(1),
            pack(
                2,
                EntryVal::Taken {
                    proc: 1,
                    slot: 1,
                    tag: 0,
                },
            ),
        );
        m.mem()
            .store(d.entry(2), pack(1, EntryVal::Job { handle: 64 }));
        m.mem()
            .store(d.entry(3), pack(1, EntryVal::Job { handle: 72 }));
        m.mem().store(d.entry(4), pack(1, EntryVal::Local));
        check_invariant(m.mem(), d).unwrap();
        // Two locals (transient pushBottom state) are allowed.
        m.mem().store(d.entry(5), pack(1, EntryVal::Local));
        check_invariant(m.mem(), d).unwrap();
    }

    #[test]
    fn invariant_rejects_job_after_local() {
        let (m, ds) = setup();
        let d = &ds[0];
        m.mem().store(d.entry(0), pack(1, EntryVal::Local));
        m.mem()
            .store(d.entry(1), pack(1, EntryVal::Job { handle: 64 }));
        let err = check_invariant(m.mem(), d).unwrap_err();
        assert!(err.contains("violates"), "{err}");
    }

    #[test]
    fn invariant_rejects_three_locals() {
        let (m, ds) = setup();
        let d = &ds[0];
        for i in 0..3 {
            m.mem().store(d.entry(i), pack(1, EntryVal::Local));
        }
        let err = check_invariant(m.mem(), d).unwrap_err();
        assert!(err.contains("two local"), "{err}");
    }

    #[test]
    fn invariant_rejects_taken_after_empty() {
        let (m, ds) = setup();
        let d = &ds[0];
        m.mem().store(
            d.entry(1),
            pack(
                1,
                EntryVal::Taken {
                    proc: 0,
                    slot: 0,
                    tag: 0,
                },
            ),
        );
        assert!(check_invariant(m.mem(), d).is_err());
    }

    #[test]
    fn render_is_compact() {
        let (m, ds) = setup();
        let d = &ds[0];
        m.mem()
            .store(d.entry(0), pack(1, EntryVal::Job { handle: 64 }));
        let s = render(m.mem(), d);
        assert!(s.starts_with("proc 0 top=0 bot=0 [J ."), "{s}");
    }

    #[test]
    fn deque_regions_are_disjoint_across_procs() {
        let (_m, ds) = setup();
        assert!(ds[0].stack.end() <= ds[1].stack.start || ds[1].stack.end() <= ds[0].stack.start);
        assert_ne!(ds[0].top, ds[1].top);
        assert_ne!(ds[0].bot, ds[1].bot);
    }
}
