//! # `ppm-sched` — fault-tolerant work stealing for the Parallel-PM
//!
//! The paper's headline system (§6, Figure 3, Appendix A): a work-stealing
//! scheduler that tolerates *soft* faults (processors restart, losing all
//! ephemeral state) and *hard* faults (processors die) anywhere — in user
//! code or in the scheduler itself — using only CAM (compare-and-modify,
//! never CAS), idempotent capsules, and tagged deque entries.
//!
//! * [`entry`] — the packed `⟨tag, entry⟩` words with the four states of
//!   Figure 4 (`empty | local | job | taken`).
//! * [`deque`] — per-processor WS-deque state in persistent memory and the
//!   §6.2 structural invariant (`taken* job* local{0,1,2} empty*`).
//! * [`capsules`] — `popTop`, `helpPopTop`, `pushBottom`, `popBottom`,
//!   `findWork` and `scheduler` as capsule state machines with the paper's
//!   exact commit boundaries.
//! * [`driver`] — one OS thread per model processor; runs fork-join
//!   computations to completion and reports cost statistics, including
//!   the cross-process recovery paths (resume via the capsule registry,
//!   replay from the root).
//! * [`runtime`] — the user-facing session object: [`Runtime`] wraps a
//!   machine and dispatches [`Runtime::run_or_recover`] to fresh-run,
//!   persistent-resume, checkpoint-resume, or replay-fallback internally,
//!   returning one unified [`SessionReport`]. After a whole process dies
//!   mid-run on a durable machine, a fresh process `Runtime::open`s the
//!   file and drives the computation to completion with exactly-once
//!   effects.
//! * [`checkpoint`] — epoch checkpoints for registered persistent runs:
//!   periodic quiesced persist boundaries that flush only dirty pages,
//!   write a durable resume record, and garbage-collect dead frame-pool
//!   words (see [`CheckpointPolicy`]).
//! * [`cluster`] — the multi-process sharded runtime: `N` worker OS
//!   processes attach to one `MAP_SHARED` machine file as independent
//!   fault domains, with a lease-based cross-process liveness oracle and
//!   dead-shard adoption through the ordinary steal protocol
//!   ([`cluster::ClusterBuilder`] is the one entry point; the old free
//!   functions survive as deprecated shims).
//! * [`service`] — service mode over the cluster: a durable MPMC
//!   injector queue in the machine file from which live shards pull jobs
//!   continuously, live-shard deque stealing, and the
//!   [`ServiceHandle`] submit/await/drain/shutdown API
//!   ([`Runtime::service`] / [`cluster::ClusterBuilder::spawn`]).
//! * [`abp`] — the CAS-based Arora–Blumofe–Plaxton baseline (not
//!   fault-tolerant), for the comparison benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abp;
pub mod capsules;
pub mod checkpoint;
pub mod cluster;
pub mod deque;
pub mod driver;
pub mod entry;
pub mod model;
pub mod runtime;
pub mod service;
pub mod sim;

pub use capsules::{Sched, SchedConfig, VictimStrategy};
pub use checkpoint::{CheckpointPolicy, CheckpointSummary, CheckpointTrigger};
pub use cluster::{
    ClusterBuilder, ClusterConfig, ClusterObserver, ClusterRole, ClusterSummary, ShardBuild,
    ShardDomain, ShardReport, DEFAULT_LEASE_MS,
};
pub use deque::{build_deques, check_invariant, render, snapshot, DequeAddrs, DequeSnapshot};
pub use driver::{
    run_root_on, run_root_thread, CheckpointResume, FallbackReason, PComp, ProcOutcome, RunReport,
    SessionMode, SessionReport,
};
pub use entry::{kind_of, pack, tag_of, unpack, EntryKind, EntryVal};
pub use runtime::{Runtime, RuntimeConfig};
pub use service::{InjectorQueue, JobReport, JobStatus, JobTicket, ServiceConfig, ServiceHandle};
pub use sim::{SimEvent, SimOp, SimReport, SimSched};
