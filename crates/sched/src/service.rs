//! Service mode: a durable MPMC **injector queue** feeding live shards,
//! plus the [`ServiceHandle`] API (`submit` / `await_job` / `drain` /
//! `shutdown`) over it.
//!
//! A batch cluster run ([`crate::cluster`]) plants one sub-root per shard
//! and ends when the subtree forest finishes. A **service** run keeps the
//! worker shards alive indefinitely and feeds them jobs through a ring of
//! persistent slots (the *injector queue*) living in the ordinary word
//! array, described by the [`ppm_pm::ServiceHeader`] in the superblock
//! page. Work distribution is pull-based: every spinning processor's
//! steal loop consults the ring (an uncosted peek, like victim selection)
//! before probing victim deques, so a published job is picked up by
//! whichever shard is idle — and from there fans out across *live* shards
//! through ordinary deque stealing
//! ([`crate::cluster::ShardDomain::set_live_stealing`]).
//!
//! ## The two-phase submit
//!
//! A submitter that crashes mid-write must never leave a torn job:
//!
//! 1. **Persist**: win an `EMPTY → STAGING` slot (CAS, epoch bumped),
//!    write the job/entry/done frames into the slot's private workspace,
//!    write the slot's ticket, entry-handle, and checksum control words,
//!    then `flush_dirty` — everything a puller will read is durable.
//! 2. **Publish**: store the `PUBLISHED` state word. The state word is
//!    the *only* thing pullers dispatch on, so a crash before it leaves
//!    an invisible `STAGING` slot (reclaimed by quiescent
//!    [`InjectorQueue::scavenge`]), never a half-written job.
//!
//! ## The claim protocol (exactly-once completion)
//!
//! Pulling is the §5 CAM discipline, one CAM per capsule:
//! read (`PUBLISHED`, verify checksum) → claim CAM
//! (`PUBLISHED → CLAIMED⟨epoch, me⟩` — claimant-distinct payloads, so
//! racing pullers never issue identical CAMs) → check (won: seat the
//! puller's `Local` deque marker, then jump to the slot's **entry
//! frame**). The registered `service/entry` capsule moves
//! the slot to `RUNNING` and jumps to the job frame; the job's final
//! continuation is the slot's **done frame**, whose single winning
//! `RUNNING → DONE` CAM is the job's exactly-once completion point. Every
//! rescue or reclaim bumps the slot's 16-bit claim epoch, so a fenced-off
//! claimant (falsely declared dead) can never replay a stale transition.
//!
//! Job bodies follow the same rule every persistent computation here
//! follows: effects must be §5 atomically idempotent (racy-read /
//! racy-write / CAM capsules), because a crash–adoption window can run a
//! body's capsules more than once even though its *completion* (the done
//! CAM) is exactly-once.
//!
//! ## Crash coverage
//!
//! * Submitter dies before publish → invisible staging slot, scavenged.
//! * Claimant dies in `CLAIMED`/`RUNNING` → [`InjectorQueue::rescue`]
//!   (driven from [`ServiceHandle::tick`] by the lease table) republishes
//!   the slot at epoch + 1; any survivor re-claims and re-runs it.
//! * Whole cluster dies → [`crate::cluster::recover`] scavenges the ring
//!   and finishes the queued jobs single-process.

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::registry::frame_args;
use ppm_core::{capsule, capsule_unchecked, sched_capsule, CapsuleId, Cont, Machine, Next};
use ppm_obs::{Counter, Obs, TraceKind};
use ppm_pm::service::{
    pack_quiesce_req, ring_words, slot_checksum, slot_claimant, slot_epoch, slot_phase, slot_state,
    QUIESCE_REL_OFFSET, QUIESCE_REQ_OFFSET,
};
use ppm_pm::{
    is_frame_at, store_frame, Lease, LeaseState, PersistentMemory, Region, ServiceHeader,
    ServiceState, ShardMap, SlotPhase, Word,
};

use crate::capsules::Sched;
use crate::cluster::{ClusterObserver, ClusterSummary, ShardReport};
use crate::driver::SessionReport;
use crate::entry::{pack, tag_of, EntryVal};

/// Word offset of the entry frame inside a slot's workspace.
const WS_ENTRY_OFF: usize = 0;
/// Word offset of the done frame inside a slot's workspace.
const WS_DONE_OFF: usize = 8;
/// Word offset of the job frame inside a slot's workspace.
const WS_JOB_OFF: usize = 16;
/// Frame-header + fixed-arg words a job frame needs beyond its user args
/// (3 header words plus the appended done-frame continuation handle).
const JOB_FRAME_OVERHEAD: usize = 4;

/// Shape of a service run's injector queue. Persisted once in the
/// [`ppm_pm::ServiceHeader`]; every attaching process reads it back from
/// the machine file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Ring slots — the bound on concurrently in-flight (submitted but
    /// not yet awaited) jobs. A full ring makes `submit` return
    /// `WouldBlock`, never silently drop.
    pub slots: usize,
    /// Words of private frame workspace per slot. Bounds a job's argument
    /// count: `job_words - 16 - 4` user argument words (entry and done
    /// frames occupy the first 16 words; a job frame needs 3 header words
    /// plus the appended continuation handle).
    pub job_words: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            slots: 32,
            job_words: 64,
        }
    }
}

impl ServiceConfig {
    /// Sets the ring slot count.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the per-slot workspace size in words.
    pub fn with_job_words(mut self, words: usize) -> Self {
        self.job_words = words;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.slots >= 1, "service ring needs at least one slot");
        assert!(self.slots <= 0x1000, "service ring slot count exceeds 4096");
        assert!(
            self.job_words >= WS_JOB_OFF + JOB_FRAME_OVERHEAD,
            "job_words must be at least {}",
            WS_JOB_OFF + JOB_FRAME_OVERHEAD
        );
    }
}

/// A submitted job's receipt: resolves through
/// [`ServiceHandle::await_job`] (or [`InjectorQueue::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// Ring slot the job occupies until reclaimed.
    pub slot: usize,
    /// Globally unique (per machine file) submission number, from the
    /// ring's durable ticket counter. Guards the slot against reuse races
    /// (ABA): every status read verifies the slot still carries it.
    pub ticket: u64,
    /// The slot epoch this job was published at (each slot life bumps
    /// it). Rescue and adoption re-claims bump the slot epoch further;
    /// the gap between a resolution's epoch and this one counts the
    /// re-claims the job survived ([`JobReport::rescues`]).
    pub epoch: u64,
}

/// Where a ticket's job currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Still in the pipeline (published, claimed, or running).
    InFlight(SlotPhase),
    /// Completed exactly-once (the done CAM won).
    Done {
        /// Processor whose done CAM completed the job.
        claimant: usize,
        /// Slot epoch at completion. Exceeds the ticket's publish epoch
        /// ([`JobTicket::epoch`]) by the number of rescue or adoption
        /// re-claims the job survived.
        claim_epoch: u64,
    },
    /// The slot no longer carries this ticket — the job was completed,
    /// reclaimed, and the slot reused (double-await), or the ticket never
    /// published.
    Lost,
}

/// What [`ServiceHandle::await_job`] returns for a resolved ticket.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The resolved ticket.
    pub ticket: JobTicket,
    /// Processor whose done CAM completed the job.
    pub claimant: usize,
    /// Slot epoch at completion (see [`JobReport::rescues`]).
    pub claim_epoch: u64,
    /// Wall-clock time from the await call to resolution.
    pub elapsed: Duration,
    /// Cluster-wide state at resolution — the same nested shape batch
    /// [`SessionReport`]s carry, so per-job and per-session reporting
    /// share field names and accessors.
    pub cluster: Option<ClusterSummary>,
}

impl JobReport {
    /// Rescue or adoption re-claims this job survived: how many times
    /// the slot epoch was bumped past the publish epoch because a
    /// claimant was declared dead (0 = first claimant finished it).
    pub fn rescues(&self) -> u64 {
        self.claim_epoch.saturating_sub(self.ticket.epoch)
    }

    /// Total frontier entries adopted from dead shards (cluster-wide).
    pub fn adopted(&self) -> u64 {
        self.cluster.as_ref().map(|c| c.adopted()).unwrap_or(0)
    }

    /// Total refused adoptions (cluster-wide).
    pub fn blocked(&self) -> u64 {
        self.cluster.as_ref().map(|c| c.blocked()).unwrap_or(0)
    }

    /// Per-shard outcome rows, empty without a cluster summary.
    pub fn shard_reports(&self) -> &[ShardReport] {
        self.cluster
            .as_ref()
            .map(|c| c.shard_reports.as_slice())
            .unwrap_or(&[])
    }
}

// ====================================================================
// The injector queue
// ====================================================================

/// The durable MPMC injector ring: submit-side (host code, CAS +
/// persist-then-publish) and pull-side (capsules, §5 CAM discipline)
/// views of the same persistent slots.
///
/// Constructed by the cluster session builder (service mode) or
/// [`InjectorQueue::attach`]; installed into the scheduler so the steal
/// loop scans for published slots before probing victim deques.
pub struct InjectorQueue {
    mem: Arc<PersistentMemory>,
    obs: Arc<Obs>,
    /// Ticket counter word + per-slot control words.
    ring: Region,
    /// `slots × job_words` private frame workspaces.
    workspace: Region,
    slots: usize,
    job_words: usize,
    entry_id: CapsuleId,
    done_id: CapsuleId,
    jobs_submitted: Counter,
    jobs_claimed: Counter,
    jobs_completed: Counter,
}

impl std::fmt::Debug for InjectorQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InjectorQueue({} slots x {} words, depth {})",
            self.slots,
            self.job_words,
            self.depth()
        )
    }
}

impl InjectorQueue {
    /// Builds the queue over freshly allocated (or deterministically
    /// re-allocated) regions, registering the `service/entry` and
    /// `service/done` capsules and the queue metrics. Called from the
    /// cluster session construction, in the same spot in every attaching
    /// process, so the capsule ids written into shared frames agree.
    pub(crate) fn install(
        machine: &Machine,
        ring: Region,
        workspace: Region,
        cfg: ServiceConfig,
    ) -> Arc<Self> {
        cfg.validate();
        assert!(ring.len >= ring_words(cfg.slots), "ring region too small");
        assert!(
            workspace.len >= cfg.slots * cfg.job_words,
            "workspace region too small"
        );
        let registry = machine.registry();
        let obs = machine.obs().clone();
        let reg = obs.registry();
        let jobs_submitted = reg.counter(
            "ppm_service_jobs_submitted_total",
            "jobs published into the injector ring",
        );
        let jobs_claimed = reg.counter(
            "ppm_service_jobs_claimed_total",
            "injector claim CAMs won by this process's processors",
        );
        let jobs_completed = reg.counter(
            "ppm_service_jobs_completed_total",
            "job done CAMs won by this process's processors",
        );

        let entry_id = registry.allocate("service/entry");
        registry.register_traced(
            entry_id,
            "service/entry",
            move |args| {
                let [state_a, ticket_a, ticket, job] = frame_args("service/entry", args)?;
                Ok(capsule("service/entry", move |ctx| {
                    let me = ctx.proc();
                    // Ticket guard: if the slot was reclaimed and reused,
                    // a stale resumed entry frame must do nothing.
                    if ctx.pread(ticket_a as ppm_pm::Addr)? != ticket {
                        return Ok(Next::End);
                    }
                    let st = ctx.pread(state_a as ppm_pm::Addr)?;
                    let claimant = slot_claimant(st);
                    match slot_phase(st) {
                        // Our own claim: advance to RUNNING, then the job.
                        Some(SlotPhase::Claimed) if claimant == me => {
                            let new = slot_state(SlotPhase::Running, slot_epoch(st), me);
                            Ok(Next::Jump(entry_cam(state_a, st, new, job)))
                        }
                        // We already advanced it and crashed before the
                        // jump: just run the job.
                        Some(SlotPhase::Running) if claimant == me => Ok(Next::JumpHandle(job)),
                        // Adoption: the claimant hard-faulted mid-job and
                        // we inherited its restart pointer. Re-claim at
                        // epoch + 1 — the bump fences the dead claimant's
                        // (or a falsely-dead survivor's) stale CAMs.
                        Some(SlotPhase::Claimed) | Some(SlotPhase::Running)
                            if !ctx.is_live(claimant) =>
                        {
                            let new = slot_state(SlotPhase::Running, slot_epoch(st) + 1, me);
                            Ok(Next::Jump(entry_cam(state_a, st, new, job)))
                        }
                        // Someone else legitimately owns (or finished)
                        // the slot: nothing for this thread.
                        _ => Ok(Next::End),
                    }
                }))
            },
            |args, out| {
                if let [state_a, ticket_a, _ticket, job] = args {
                    out.extent(*state_a as usize, 1);
                    out.extent(*ticket_a as usize, 1);
                    out.handle(*job);
                    true
                } else {
                    false
                }
            },
        );

        let done_id = registry.allocate("service/done");
        let done_counter = jobs_completed.clone();
        let done_obs = obs.clone();
        registry.register_traced(
            done_id,
            "service/done",
            move |args| {
                let [state_a, ticket_a, ticket] = frame_args("service/done", args)?;
                let completed = done_counter.clone();
                let obs = done_obs.clone();
                Ok(capsule("service/done", move |ctx| {
                    if ctx.pread(ticket_a as ppm_pm::Addr)? != ticket {
                        return Ok(Next::End);
                    }
                    let st = ctx.pread(state_a as ppm_pm::Addr)?;
                    match slot_phase(st) {
                        Some(SlotPhase::Running) => {
                            let done_w =
                                slot_state(SlotPhase::Done, slot_epoch(st), slot_claimant(st));
                            Ok(Next::Jump(done_cam(
                                state_a,
                                st,
                                done_w,
                                ticket,
                                completed.clone(),
                                obs.clone(),
                            )))
                        }
                        // DONE already (benign re-run), or a rescue
                        // republished the slot out from under a
                        // falsely-dead runner — the re-claimed run
                        // completes it.
                        _ => Ok(Next::End),
                    }
                }))
            },
            |args, out| {
                if let [state_a, ticket_a, _ticket] = args {
                    out.extent(*state_a as usize, 1);
                    out.extent(*ticket_a as usize, 1);
                    true
                } else {
                    false
                }
            },
        );

        let q = Arc::new(InjectorQueue {
            mem: machine.mem().clone(),
            obs,
            ring,
            workspace,
            slots: cfg.slots,
            job_words: cfg.job_words,
            entry_id,
            done_id,
            jobs_submitted,
            jobs_claimed,
            jobs_completed,
        });
        let depth_q = q.clone();
        q.obs.registry().gauge_fn(
            "ppm_service_queue_depth",
            "injector-ring slots currently published, claimed, or running",
            &[],
            move || depth_q.depth() as f64,
        );
        q
    }

    /// Attaches to an existing service machine from its persisted
    /// [`ServiceHeader`] alone. The caller must have replayed the same
    /// capsule registrations that preceded the queue's original
    /// construction (construction determinism — the ids stored in shared
    /// frames must agree), which the cluster session builder guarantees.
    pub fn attach(machine: &Machine) -> io::Result<Arc<Self>> {
        let header = machine
            .mem()
            .backend()
            .read_service_header()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "machine file has no service header (not a service run)",
                )
            })?;
        let cfg = ServiceConfig {
            slots: header.slots as usize,
            job_words: header.job_words as usize,
        };
        let ring = Region {
            start: header.ring_base as usize,
            len: ring_words(cfg.slots),
        };
        let workspace = Region {
            start: header.workspace_base as usize,
            len: cfg.slots * cfg.job_words,
        };
        Ok(Self::install(machine, ring, workspace, cfg))
    }

    /// The ring's shape, as it would be persisted.
    pub fn header(&self, state: ServiceState) -> ServiceHeader {
        ServiceHeader {
            state,
            slots: self.slots as u64,
            job_words: self.job_words as u64,
            ring_base: self.ring.start as u64,
            workspace_base: self.workspace.start as u64,
        }
    }

    /// Ring slot count.
    pub fn slots(&self) -> usize {
        self.slots
    }

    fn counter_addr(&self) -> ppm_pm::Addr {
        self.ring.start
    }

    fn state_addr(&self, slot: usize) -> ppm_pm::Addr {
        self.ring.at(1 + slot * ppm_pm::service::SLOT_CTL_WORDS)
    }

    fn ticket_addr(&self, slot: usize) -> ppm_pm::Addr {
        self.state_addr(slot) + 1
    }

    fn entry_addr(&self, slot: usize) -> ppm_pm::Addr {
        self.state_addr(slot) + 2
    }

    fn check_addr(&self, slot: usize) -> ppm_pm::Addr {
        self.state_addr(slot) + 3
    }

    fn ws_addr(&self, slot: usize) -> ppm_pm::Addr {
        self.workspace.at(slot * self.job_words)
    }

    /// Job completions this process's processors have won (exactly-once
    /// done CAMs; cluster-wide totals come from the aggregated scrape).
    pub fn completed_total(&self) -> u64 {
        self.jobs_completed.get()
    }

    /// Jobs currently published, claimed, or running (completed-but-
    /// unreclaimed slots do not count). An oracle read.
    pub fn depth(&self) -> usize {
        (0..self.slots)
            .filter(|s| {
                matches!(
                    slot_phase(self.mem.load(self.state_addr(*s))),
                    Some(SlotPhase::Published)
                        | Some(SlotPhase::Claimed)
                        | Some(SlotPhase::Running)
                )
            })
            .count()
    }

    /// Maximum user argument words a job submission may carry.
    pub fn max_args(&self) -> usize {
        self.job_words - WS_JOB_OFF - JOB_FRAME_OVERHEAD
    }

    /// Submits a job: the capsule `kind`'s frame is built in the won
    /// slot's workspace with `args` plus an appended continuation handle
    /// (the slot's done frame — `kind`'s constructor must treat its last
    /// argument as the frame handle to jump to on completion, the
    /// standard continuation-passing contract). Runs host-side (oracle
    /// writes + one durability flush), not as model capsules: crash
    /// atomicity comes from persist-then-publish, not from capsule
    /// idempotence.
    ///
    /// Fails `WouldBlock` when no slot is reclaimable (backpressure) and
    /// `InvalidInput` when `args` exceeds [`InjectorQueue::max_args`].
    pub fn submit(&self, kind: CapsuleId, args: &[Word]) -> io::Result<JobTicket> {
        if args.len() > self.max_args() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "job args ({}) exceed the slot workspace budget ({})",
                    args.len(),
                    self.max_args()
                ),
            ));
        }
        let ticket = self.mem.fetch_add(self.counter_addr(), 1) + 1;
        // host-CAS: submitters are host threads outside the capsule
        // re-execution regime — a crashed submitter never re-runs this
        // CAS, and a torn staging slot is scavenged on recovery; the
        // two-phase publish below is what makes the crash harmless. The
        // epoch bump on the staging transition fences any stale CAM
        // aimed at the slot's previous life.
        let (slot, epoch) = 'won: {
            for i in 0..self.slots {
                let s = (ticket as usize + i) % self.slots;
                let w = self.mem.load(self.state_addr(s));
                if slot_phase(w) == Some(SlotPhase::Empty) {
                    let staging = slot_state(SlotPhase::Staging, slot_epoch(w) + 1, 0);
                    // host-CAS: see the block comment above.
                    if self
                        .mem
                        .cas_unsafe_under_faults(self.state_addr(s), w, staging)
                    {
                        break 'won (s, slot_epoch(staging));
                    }
                }
            }
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injector ring full (await completed jobs to free slots)",
            ));
        };

        // Phase 1 — persist: frames and control words, then flush.
        let ws = self.ws_addr(slot);
        let state_a = self.state_addr(slot) as Word;
        let ticket_a = self.ticket_addr(slot) as Word;
        let done_at = (ws + WS_DONE_OFF) as Word;
        let job_at = (ws + WS_JOB_OFF) as Word;
        let entry_at = (ws + WS_ENTRY_OFF) as Word;
        store_frame(
            &self.mem,
            ws + WS_DONE_OFF,
            self.done_id,
            &[state_a, ticket_a, ticket],
        );
        let mut job_args = Vec::with_capacity(args.len() + 1);
        job_args.extend_from_slice(args);
        job_args.push(done_at);
        store_frame(&self.mem, ws + WS_JOB_OFF, kind, &job_args);
        store_frame(
            &self.mem,
            ws + WS_ENTRY_OFF,
            self.entry_id,
            &[state_a, ticket_a, ticket, job_at],
        );
        self.mem.store(self.ticket_addr(slot), ticket);
        self.mem.store(self.entry_addr(slot), entry_at);
        self.mem
            .store(self.check_addr(slot), slot_checksum(ticket, entry_at));
        self.mem.flush_dirty()?;

        // Phase 2 — publish: the single visibility point.
        self.mem.store(
            self.state_addr(slot),
            slot_state(SlotPhase::Published, epoch, 0),
        );
        self.jobs_submitted.inc();
        self.obs
            .tracer()
            .record_with(TraceKind::JobSubmitted, None, None, || {
                format!("ticket {ticket} published in slot {slot} (epoch {epoch})")
            });
        Ok(JobTicket {
            slot,
            ticket,
            epoch,
        })
    }

    /// Ephemeral puller peek: the first `PUBLISHED` slot, scanning from a
    /// processor- and attempt-staggered start so spinning processors
    /// don't all hammer slot 0. Uncosted, like victim selection — the
    /// costed claim is the capsule chain entered on the result.
    pub(crate) fn scan_published(&self, me: usize, n: u64) -> Option<usize> {
        let start = me.wrapping_mul(7).wrapping_add(n as usize);
        (0..self.slots)
            .map(|i| (start + i) % self.slots)
            .find(|s| slot_phase(self.mem.load(self.state_addr(*s))) == Some(SlotPhase::Published))
    }

    /// Where `ticket` currently stands. An oracle read, safe from any
    /// process attached to the machine.
    pub fn status(&self, t: JobTicket) -> JobStatus {
        if t.slot >= self.slots {
            return JobStatus::Lost;
        }
        let st = self.mem.load(self.state_addr(t.slot));
        if self.mem.load(self.ticket_addr(t.slot)) != t.ticket {
            return JobStatus::Lost;
        }
        match slot_phase(st) {
            Some(SlotPhase::Done) => JobStatus::Done {
                claimant: slot_claimant(st),
                claim_epoch: slot_epoch(st),
            },
            // Reclaimed after completion (double await): still resolved.
            Some(SlotPhase::Empty) => JobStatus::Done {
                claimant: slot_claimant(st),
                claim_epoch: slot_epoch(st),
            },
            Some(p) => JobStatus::InFlight(p),
            None => JobStatus::Lost,
        }
    }

    /// Frees a completed ticket's slot (`DONE → EMPTY`, epoch bumped).
    /// Returns whether this call performed the reclaim.
    pub fn reclaim(&self, t: JobTicket) -> bool {
        if t.slot >= self.slots || self.mem.load(self.ticket_addr(t.slot)) != t.ticket {
            return false;
        }
        let st = self.mem.load(self.state_addr(t.slot));
        if slot_phase(st) != Some(SlotPhase::Done) {
            return false;
        }
        let empty = slot_state(SlotPhase::Empty, slot_epoch(st) + 1, 0);
        // host-CAS: reclaim runs on the awaiting host thread, never
        // re-executed after a fault; losing the race just means another
        // reclaimer (or none) freed the slot.
        self.mem
            .cas_unsafe_under_faults(self.state_addr(t.slot), st, empty)
    }

    /// Republishes every `CLAIMED` or `RUNNING` slot whose claimant
    /// `claimant_dead` certifies dead, at epoch + 1 (fencing the dead —
    /// or falsely-dead — claimant's stale CAMs). Driven by the service
    /// handle's lease sweep; also covers jobs stuck behind a
    /// blocked-adoption window, since a republished slot is re-claimed
    /// from its entry frame rather than the dead processor's frozen deque
    /// entry. Returns the number of rescued slots.
    pub fn rescue(&self, claimant_dead: impl Fn(usize) -> bool) -> usize {
        let mut rescued = 0;
        for s in 0..self.slots {
            let w = self.mem.load(self.state_addr(s));
            let phase = slot_phase(w);
            if !matches!(phase, Some(SlotPhase::Claimed) | Some(SlotPhase::Running)) {
                continue;
            }
            if !claimant_dead(slot_claimant(w)) {
                continue;
            }
            let republished = slot_state(SlotPhase::Published, slot_epoch(w) + 1, 0);
            // host-CAS: the rescue sweep runs on the supervisor host
            // thread; a lost race means a sibling sweep (or the claimant
            // itself, alive after all) moved the slot first.
            if self
                .mem
                .cas_unsafe_under_faults(self.state_addr(s), w, republished)
            {
                rescued += 1;
                self.obs
                    .tracer()
                    .record_with(TraceKind::JobSubmitted, None, None, || {
                        format!(
                            "slot {s} republished at epoch {} (claimant {} dead)",
                            slot_epoch(republished),
                            slot_claimant(w)
                        )
                    });
            }
        }
        rescued
    }

    /// Quiescent recovery sweep (no live pullers or submitters): torn
    /// staging slots are reclaimed, interrupted claims are republished
    /// (epoch + 1), and a published slot whose control words fail their
    /// checksum is reclaimed rather than served. Plain stores — the
    /// caller owns the machine exclusively.
    pub fn scavenge(&self) -> usize {
        let mut touched = 0;
        for s in 0..self.slots {
            let w = self.mem.load(self.state_addr(s));
            let next = match slot_phase(w) {
                Some(SlotPhase::Staging) => Some(slot_state(SlotPhase::Empty, slot_epoch(w), 0)),
                Some(SlotPhase::Claimed) | Some(SlotPhase::Running) => {
                    Some(slot_state(SlotPhase::Published, slot_epoch(w) + 1, 0))
                }
                Some(SlotPhase::Published) => {
                    let ticket = self.mem.load(self.ticket_addr(s));
                    let entry = self.mem.load(self.entry_addr(s));
                    let ok = self.mem.load(self.check_addr(s)) == slot_checksum(ticket, entry)
                        && is_frame_at(&self.mem, entry as usize);
                    if ok {
                        None
                    } else {
                        Some(slot_state(SlotPhase::Empty, slot_epoch(w) + 1, 0))
                    }
                }
                _ => None,
            };
            if let Some(next) = next {
                self.mem.store(self.state_addr(s), next);
                touched += 1;
            }
        }
        touched
    }

    pub(crate) fn note_claimed(&self, me: usize, slot: usize, ticket: u64) {
        self.jobs_claimed.inc();
        self.obs
            .tracer()
            .record_with(TraceKind::JobClaimed, None, Some(me as u32), || {
                format!("ticket {ticket} claimed from slot {slot}")
            });
    }
}

// ====================================================================
// Pull capsules (the claim chain, entered from the steal loop)
// ====================================================================

/// Claim chain capsule 1: re-read the slot (the scan was an uncosted
/// peek), verify the two-phase publish's checksum, and enter the claim
/// CAM. Any mismatch falls back into the steal loop.
pub(crate) fn pull_read(s: &Arc<Sched>, slot: usize, n: u64) -> Cont {
    let s = s.clone();
    sched_capsule("service/pull/read", move |ctx| {
        let me = ctx.proc();
        let q = s.injector().expect("pull without an injector queue");
        let st = ctx.pread(q.state_addr(slot))?;
        if slot_phase(st) != Some(SlotPhase::Published) {
            return Ok(Next::Jump(s.steal_attempt(n + 1)));
        }
        let ticket = ctx.pread(q.ticket_addr(slot))?;
        let entry = ctx.pread(q.entry_addr(slot))?;
        let check = ctx.pread(q.check_addr(slot))?;
        if check != slot_checksum(ticket, entry) || !is_frame_at(s.mem(), entry as usize) {
            // A torn publish cannot happen (publish follows the flush);
            // this guards scavenge-worthy corruption from spreading.
            return Ok(Next::Jump(s.steal_attempt(n + 1)));
        }
        let claimed = slot_state(SlotPhase::Claimed, slot_epoch(st), me);
        Ok(Next::Jump(pull_cam(
            &s, slot, st, claimed, entry, ticket, n,
        )))
    })
}

/// Claim chain capsule 2: the claim CAM. Claimant-distinct payloads keep
/// racing pullers' CAMs non-identical (§5's exactly-once requirement).
fn pull_cam(
    s: &Arc<Sched>,
    slot: usize,
    old: Word,
    claimed: Word,
    entry: Word,
    ticket: Word,
    n: u64,
) -> Cont {
    let s = s.clone();
    sched_capsule("service/pull/cam", move |ctx| {
        let q = s.injector().expect("pull without an injector queue");
        ctx.pcam(q.state_addr(slot), old, claimed)?;
        Ok(Next::Jump(pull_check(&s, slot, claimed, entry, ticket, n)))
    })
}

/// Claim chain capsule 3: did our CAM win? Winning seats the puller's
/// thread marker and enters the slot's entry frame (a registered capsule
/// — the restart pointer any adopting process can rehydrate); losing
/// falls back into the steal loop.
fn pull_check(
    s: &Arc<Sched>,
    slot: usize,
    claimed: Word,
    entry: Word,
    ticket: Word,
    n: u64,
) -> Cont {
    let s = s.clone();
    sched_capsule("service/pull/check", move |ctx| {
        let me = ctx.proc();
        let q = s.injector().expect("pull without an injector queue");
        if ctx.pread(q.state_addr(slot))? == claimed {
            q.note_claimed(me, slot, ticket);
            return Ok(Next::Jump(pull_seat(&s, entry)));
        }
        Ok(Next::Jump(s.steal_attempt(n + 1)))
    })
}

/// Claim chain capsule 4 (won claims only): seat the puller's thread
/// marker — `Local` at the bottom of its own deque — then enter the
/// job's entry frame.
///
/// A deque steal gets this seat from the helpPopTop protocol (the
/// `Taken` entry names the thief's slot, and helpers CAM that slot to
/// `Local`); a queue pull has no `Taken` entry, so without this step the
/// puller would run the job with an `Empty` bottom entry and the job's
/// first fork would spin forever in `pushBottom`'s adopting-thief arm.
/// Unchecked like `clearBottom`: reads its own bottom tag and rewrites
/// it (the Lemma A.12 idempotence argument — a re-run overwrites with
/// another `Local`, and the tag bump fences any stale helper CAM aimed
/// at this slot from an earlier abandoned steal).
///
/// Crash window: dying after the seat but before the entry frame leaves
/// a dead processor with a seated `Local` whose restart pointer does not
/// yet name the entry frame — harmless, because the slot is `CLAIMED` by
/// a dead claimant and the rescue sweep republishes it at epoch + 1; the
/// entry capsule's epoch guard fences whichever path loses the re-claim.
fn pull_seat(s: &Arc<Sched>, entry: Word) -> Cont {
    let s = s.clone();
    capsule_unchecked("service/pull/seat", move |ctx| {
        let me = ctx.proc();
        let d = s.deques()[me];
        let b = ctx.pread(d.bot)? as usize;
        let cur = ctx.pread(d.entry(b))?;
        ctx.pwrite(
            d.entry(b),
            pack(tag_of(cur).wrapping_add(1), EntryVal::Local),
        )?;
        Ok(Next::JumpHandle(entry))
    })
}

/// `service/entry` tail: the `CLAIMED → RUNNING` CAM and its check.
fn entry_cam(state_a: Word, old: Word, new: Word, job: Word) -> Cont {
    sched_capsule("service/entry/cam", move |ctx| {
        ctx.pcam(state_a as ppm_pm::Addr, old, new)?;
        Ok(Next::Jump(entry_check(state_a, new, job)))
    })
}

fn entry_check(state_a: Word, new: Word, job: Word) -> Cont {
    sched_capsule("service/entry/check", move |ctx| {
        if ctx.pread(state_a as ppm_pm::Addr)? == new {
            return Ok(Next::JumpHandle(job));
        }
        // Lost to a rescue (we were declared dead) — the re-claimed run
        // owns the job now.
        Ok(Next::End)
    })
}

/// `service/done` tail: the exactly-once `RUNNING → DONE` CAM and its
/// check (which counts and traces the completion).
fn done_cam(
    state_a: Word,
    old: Word,
    done_w: Word,
    ticket: Word,
    completed: Counter,
    obs: Arc<Obs>,
) -> Cont {
    sched_capsule("service/done/cam", move |ctx| {
        ctx.pcam(state_a as ppm_pm::Addr, old, done_w)?;
        Ok(Next::Jump(done_check(
            state_a,
            done_w,
            ticket,
            completed.clone(),
            obs.clone(),
        )))
    })
}

fn done_check(
    state_a: Word,
    done_w: Word,
    ticket: Word,
    completed: Counter,
    obs: Arc<Obs>,
) -> Cont {
    sched_capsule("service/done/check", move |ctx| {
        let me = ctx.proc();
        if ctx.pread(state_a as ppm_pm::Addr)? == done_w {
            completed.inc();
            obs.tracer()
                .record_with(TraceKind::JobDone, None, Some(me as u32), || {
                    format!("ticket {ticket} completed (epoch {})", slot_epoch(done_w))
                });
        }
        Ok(Next::End)
    })
}

// ====================================================================
// The service handle
// ====================================================================

/// How long [`ServiceHandle::shutdown`] waits for workers to observe the
/// done flag before killing them.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// The coordinator's handle on a running job service: submit jobs, await
/// their tickets, watch worker health (reaping dead workers and rescuing
/// their claimed jobs), pace cross-process checkpoints, and wind the
/// service down. Created by
/// [`crate::cluster::ClusterBuilder::spawn`].
pub struct ServiceHandle {
    observer: ClusterObserver,
    queue: Arc<InjectorQueue>,
    children: Vec<Option<std::process::Child>>,
    state: ServiceState,
    quiesce_every: Option<Duration>,
    last_quiesce: Instant,
    quiesce_seq: u64,
    /// The coordinator's aggregated scrape endpoint (`PPM_METRICS_PORT`),
    /// held so it answers for the whole service lifetime.
    _metrics: Option<ppm_obs::MetricsServer>,
}

impl ServiceHandle {
    pub(crate) fn new(
        observer: ClusterObserver,
        queue: Arc<InjectorQueue>,
        children: Vec<Option<std::process::Child>>,
        quiesce_every: Option<Duration>,
        metrics: Option<ppm_obs::MetricsServer>,
    ) -> Self {
        ServiceHandle {
            observer,
            queue,
            children,
            state: ServiceState::Accepting,
            quiesce_every,
            last_quiesce: Instant::now(),
            quiesce_seq: 0,
            _metrics: metrics,
        }
    }

    /// The observer half (progress reads, lease table, metrics).
    pub fn observer(&self) -> &ClusterObserver {
        &self.observer
    }

    /// The injector queue (direct submit/status access for tests and
    /// embedders that manage their own tickets).
    pub fn queue(&self) -> &Arc<InjectorQueue> {
        &self.queue
    }

    /// Jobs currently in flight.
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }

    /// Submits a job by registered capsule name (the name must have been
    /// registered by the session's [`crate::cluster::ShardBuild`] —
    /// construction determinism guarantees every worker can rehydrate
    /// it). The capsule's constructor receives `args` plus an appended
    /// continuation frame handle it must jump to on completion.
    pub fn submit(&mut self, kind: &'static str, args: &[Word]) -> io::Result<JobTicket> {
        self.tick();
        if self.state != ServiceState::Accepting {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "service is draining or stopped",
            ));
        }
        let id = self
            .observer
            .machine()
            .registry()
            .id_of(kind)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("no registered capsule named {kind:?}"),
                )
            })?;
        self.queue.submit(id, args)
    }

    /// Blocks until `ticket` resolves (completing the exactly-once
    /// contract by reclaiming its slot) or `timeout` passes. Worker
    /// health is swept while waiting, so a ticket claimed by a
    /// killed worker is rescued and completed by a survivor rather than
    /// timing out.
    pub fn await_job(&mut self, ticket: JobTicket, timeout: Duration) -> io::Result<JobReport> {
        let start = Instant::now();
        loop {
            self.tick();
            match self.queue.status(ticket) {
                JobStatus::Done {
                    claimant,
                    claim_epoch,
                } => {
                    self.queue.reclaim(ticket);
                    return Ok(JobReport {
                        ticket,
                        claimant,
                        claim_epoch,
                        elapsed: start.elapsed(),
                        cluster: Some(self.observer.summary()),
                    });
                }
                JobStatus::Lost => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "ticket {} lost (slot reused or never published)",
                            ticket.ticket
                        ),
                    ));
                }
                JobStatus::InFlight(_) => {
                    if start.elapsed() > timeout {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("ticket {} still in flight", ticket.ticket),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// One health sweep: reap exited workers (tombstoning their leases so
    /// survivors adopt immediately), rescue injector slots claimed by
    /// dead shards, and pace the cross-process checkpoint quiesce.
    pub fn tick(&mut self) {
        for (s, slot) in self.children.iter_mut().enumerate() {
            if let Some(child) = slot {
                if child.try_wait().map(|st| st.is_some()).unwrap_or(true) {
                    *slot = None;
                    let done_lease = matches!(
                        self.observer.lease(s),
                        Some(Lease {
                            state: LeaseState::Done,
                            ..
                        })
                    );
                    if !done_lease {
                        self.observer.tombstone(s);
                    }
                }
            }
        }
        let machine = self.observer.machine();
        let map = *self.observer.map();
        let backend = machine.mem().backend();
        let now = ppm_pm::now_ms();
        let shard_dead = |shard: usize| match backend.read_lease(shard) {
            Some(l) => l.is_dead(now) || l.state == LeaseState::Done,
            None => false,
        };
        self.queue
            .rescue(|claimant| claimant < map.procs() && shard_dead(map.shard_of(claimant)));
        self.maybe_request_quiesce(map, now);
    }

    /// Raises the superblock quiesce request when the cadence is due and
    /// the previous round has released (or timed out — a performer that
    /// died mid-round must not wedge the cadence forever).
    fn maybe_request_quiesce(&mut self, map: ShardMap, now: u64) {
        let Some(every) = self.quiesce_every else {
            return;
        };
        if self.last_quiesce.elapsed() < every {
            return;
        }
        let machine = self.observer.machine();
        let backend = machine.mem().backend();
        let released = backend.read_quiesce_word(QUIESCE_REL_OFFSET) >= self.quiesce_seq;
        if !released && self.last_quiesce.elapsed() < every.saturating_mul(3) {
            return;
        }
        // Elect the lowest shard holding a live, unexpired lease. Every
        // live shard acks; only the performer runs the checkpoint.
        let performer = (0..map.shards).find(|s| {
            matches!(backend.read_lease(*s),
                     Some(l) if l.state == LeaseState::Alive && !l.is_dead(now))
        });
        let Some(performer) = performer else {
            self.last_quiesce = Instant::now();
            return;
        };
        self.quiesce_seq += 1;
        backend.write_quiesce_word(
            QUIESCE_REQ_OFFSET,
            pack_quiesce_req(self.quiesce_seq, performer),
        );
        self.last_quiesce = Instant::now();
        machine
            .obs()
            .tracer()
            .record_with(TraceKind::Checkpoint, None, None, || {
                format!(
                    "cluster quiesce {} requested (performer shard {performer})",
                    self.quiesce_seq
                )
            });
    }

    /// Stops accepting submissions and waits (up to `timeout`) for the
    /// in-flight jobs to finish. Workers keep running — a drained service
    /// still accepts [`ServiceHandle::shutdown`] or a return to service
    /// by a fresh handle.
    pub fn drain(&mut self, timeout: Duration) -> io::Result<()> {
        self.state = ServiceState::Draining;
        let _ = self
            .observer
            .machine()
            .mem()
            .backend()
            .write_service_header(&self.queue.header(ServiceState::Draining));
        let start = Instant::now();
        while self.queue.depth() > 0 {
            self.tick();
            if start.elapsed() > timeout {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{} jobs still in flight", self.queue.depth()),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Kills worker `shard` (SIGKILL) and tombstones its lease — the
    /// fault-injection hook service examples and tests use. Jobs the
    /// shard had claimed are rescued on the next sweep.
    pub fn kill_worker(&mut self, shard: usize) -> io::Result<()> {
        let child = self
            .children
            .get_mut(shard)
            .and_then(Option::take)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no live worker for shard {shard}"),
                )
            })?;
        let mut child = child;
        let _ = child.kill();
        let _ = child.wait();
        self.observer.tombstone(shard);
        Ok(())
    }

    /// Stops the service: marks the header `Stopped`, sets the global
    /// done flag (workers halt at their next steal-loop poll), waits for
    /// worker exits (killing stragglers after a grace period), and
    /// returns the final session report.
    pub fn shutdown(mut self) -> io::Result<SessionReport> {
        self.state = ServiceState::Stopped;
        let _ = self
            .observer
            .machine()
            .mem()
            .backend()
            .write_service_header(&self.queue.header(ServiceState::Stopped));
        self.observer.set_done();
        let start = Instant::now();
        loop {
            for slot in self.children.iter_mut() {
                if let Some(child) = slot {
                    if child.try_wait().map(|st| st.is_some()).unwrap_or(true) {
                        *slot = None;
                    }
                }
            }
            if self.children.iter().all(|c| c.is_none()) {
                break;
            }
            if start.elapsed() > SHUTDOWN_GRACE {
                for slot in self.children.iter_mut() {
                    if let Some(child) = slot {
                        let _ = child.kill();
                        let _ = child.wait();
                        *slot = None;
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.observer.finish()?;
        let machine = self.observer.machine();
        Ok(SessionReport {
            epoch: machine.epoch(),
            mode: crate::driver::SessionMode::FreshRun,
            found_jobs: 0,
            found_locals: 0,
            found_taken: 0,
            live_restart_pointers: 0,
            resumed: 0,
            fallback_reason: None,
            checkpoint_resume: None,
            cluster: Some(self.observer.summary()),
            trace: Some(machine.obs().tracer().summary()),
            run: None,
        })
    }
}
