//! `ppm-check` — exhaustive interleaving explorer for the PPM protocol
//! models.
//!
//! Runs the bounded BFS explorer over the abstract state machines in
//! `ppm_sched::model` (Figure 3 steal/adoption, the cross-process lease
//! oracle, the checkpoint quiesce barrier) and exits nonzero on any
//! invariant violation, writing the minimal counterexample trace to a
//! `.trace` file for CI artifact upload.
//!
//! ```text
//! ppm-check [--model steal|lease|quiesce|all] [--depth N]
//!           [--max-states N] [--budget-secs S] [--out DIR] [--mutate]
//! ```
//!
//! `--mutate` runs the deliberately broken protocol variants instead and
//! *expects* violations (exit 1 if any mutant survives) — the
//! self-test that proves the explorer can actually catch these bugs.

use std::path::PathBuf;
use std::time::Duration;

use ppm_check::{Explorer, ExplorerConfig, Model, Report};
use ppm_sched::model::{LeaseModel, QuiesceModel, StealModel, StealMutation};

struct Args {
    model: String,
    depth: usize,
    max_states: usize,
    budget_secs: Option<u64>,
    out: PathBuf,
    mutate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        model: "all".to_string(),
        depth: 40,
        max_states: 10_000_000,
        budget_secs: None,
        out: PathBuf::from("check_out"),
        mutate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--model" => args.model = val("--model"),
            "--depth" => args.depth = val("--depth").parse().expect("--depth: integer"),
            "--max-states" => {
                args.max_states = val("--max-states").parse().expect("--max-states: integer")
            }
            "--budget-secs" => {
                args.budget_secs = Some(val("--budget-secs").parse().expect("--budget-secs: secs"))
            }
            "--out" => args.out = PathBuf::from(val("--out")),
            "--mutate" => args.mutate = true,
            "--help" | "-h" => {
                eprintln!(
                    "ppm-check [--model steal|lease|quiesce|all] [--depth N] \
                     [--max-states N] [--budget-secs S] [--out DIR] [--mutate]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Runs one model; returns whether the outcome matches expectations
/// (clean for faithful models, violated for mutants) and writes the
/// counterexample trace if there is one.
fn check<M: Model>(name: &str, model: &M, args: &Args, expect_violation: bool) -> bool {
    let mut cfg = ExplorerConfig::depth(args.depth).with_max_states(args.max_states);
    if let Some(s) = args.budget_secs {
        cfg = cfg.with_budget(Duration::from_secs(s));
    }
    let report: Report<M> = Explorer::new(cfg).run(model);
    println!("[{name}] {}", report.summary());
    match (&report.violation, expect_violation) {
        (None, false) => true,
        (Some(cex), true) => {
            println!(
                "[{name}] mutant caught as expected ({} steps): {}",
                cex.trace.len(),
                cex.reason
            );
            true
        }
        (Some(cex), false) => {
            let rendered = cex.render();
            eprintln!("[{name}] INVARIANT VIOLATION\n{rendered}");
            std::fs::create_dir_all(&args.out).ok();
            let path = args.out.join(format!("{name}.trace"));
            if std::fs::write(&path, &rendered).is_ok() {
                eprintln!("[{name}] counterexample written to {}", path.display());
            }
            false
        }
        (None, true) => {
            eprintln!("[{name}] MUTANT SURVIVED: the explorer failed to catch a seeded bug");
            false
        }
    }
}

fn main() {
    let args = parse_args();
    let run_steal = args.model == "steal" || args.model == "all";
    let run_lease = args.model == "lease" || args.model == "all";
    let run_quiesce = args.model == "quiesce" || args.model == "all";
    if !(run_steal || run_lease || run_quiesce) {
        eprintln!("unknown --model {} (steal|lease|quiesce|all)", args.model);
        std::process::exit(2);
    }

    let mut ok = true;
    if args.mutate {
        if run_steal {
            ok &= check(
                "steal-drop-lemma-a10",
                &StealModel::mutated(StealMutation::DropLemmaA10),
                &args,
                true,
            );
            ok &= check(
                "steal-adopt-live-local",
                &StealModel::mutated(StealMutation::AdoptLiveLocal),
                &args,
                true,
            );
            ok &= check(
                "steal-drop-rescue",
                &StealModel::mutated(StealMutation::DropRescue),
                &args,
                true,
            );
            ok &= check(
                "steal-rescue-completed",
                &StealModel::mutated(StealMutation::RescueCompleted),
                &args,
                true,
            );
        }
        if run_lease {
            ok &= check("lease-drop-tombstone", &LeaseModel::mutated(), &args, true);
        }
        if run_quiesce {
            ok &= check("quiesce-skip-busy", &QuiesceModel::mutated(), &args, true);
        }
    } else {
        if run_steal {
            ok &= check("steal", &StealModel::default(), &args, false);
            ok &= check("steal-injector", &StealModel::with_injector(), &args, false);
        }
        if run_lease {
            ok &= check("lease", &LeaseModel::default(), &args, false);
        }
        if run_quiesce {
            ok &= check("quiesce", &QuiesceModel::default(), &args, false);
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}
