//! Deterministic fault-injection simulator over the **real** capsule
//! engine.
//!
//! Where the `model` module checks abstract twins of the protocols,
//! [`SimSched`] drives the actual production code — `run_capsule`,
//! `InstallCtx`, the scheduler's `pushBottom`/`findWork`/`popTop`
//! capsules, persistent frames, checkpoint GC — through **scripted
//! interleavings** on a single OS thread. Each [`SimSched::step`] runs
//! exactly one capsule on one chosen processor, so a test can place a
//! crash or a checkpoint between any two capsules of any processor and
//! replay the schedule forever: the same seed and script produce a
//! byte-identical event trace and a bit-identical final machine state
//! ([`SimSched::digest`]).
//!
//! Faults compose from both layers:
//!
//! * **Boundary crashes** — [`SimSched::crash`] marks the processor dead
//!   in the liveness oracle at a capsule boundary, leaving its restart
//!   pointer and deque for thieves, exactly like a hard fault between
//!   capsules.
//! * **Mid-capsule crashes** — build the machine with
//!   [`ppm_pm::FaultConfig::with_scheduled_hard_fault`]; the fault fires
//!   inside `run_capsule` at the scheduled persistent access and the
//!   step reports the processor dead.
//! * **Checkpoints** — [`SimSched::checkpoint`] runs a quiesced
//!   checkpoint directly (the single-threaded stepper holds every
//!   processor at a boundary by construction), including frame-pool GC
//!   and watermark rollback.
//!
//! The seeded driver [`SimSched::run_seeded`] generates the schedule
//! from a xorshift stream, which is what the determinism property tests
//! replay across many seeds (`tests/proptest_sim.rs`).

use std::sync::Arc;

use ppm_core::registry::PComp;
use ppm_core::{run_capsule, Comp, Cont, DoneFlag, InstallCtx, Machine, Step, CORE_ID_FINALE};
use ppm_pm::{ProcCtx, Word};

use crate::capsules::{Sched, SchedConfig};
use crate::checkpoint::{CheckpointCtl, CheckpointPolicy};
use crate::cluster::ShardDomain;
use crate::deque::check_invariant;
use crate::driver::ProcOutcome;
use crate::entry::{pack, EntryVal};
use crate::service::{InjectorQueue, ServiceConfig};

/// One scripted operation of a simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// Run one capsule on processor `p`.
    Step(usize),
    /// Run up to `n` capsules on processor `p` (stops early if it halts
    /// or dies).
    Run(usize, usize),
    /// Hard-kill processor `p` at its current capsule boundary: the
    /// liveness oracle marks it dead, its restart pointer and deque stay
    /// in persistent memory for thieves.
    Crash(usize),
    /// Take a quiesced checkpoint (harvest, GC, watermark roll) with
    /// every processor parked between capsules.
    Checkpoint,
}

/// What happened at one simulated step; the rendered lines of these are
/// the determinism-checked event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// Processor `proc` ran capsule `capsule` and installed a successor.
    Ran {
        /// Global step index.
        step: usize,
        /// Which processor.
        proc: usize,
        /// Name of the capsule that ran.
        capsule: String,
        /// Name of the installed successor.
        next: String,
    },
    /// Processor `proc` ran `capsule` and halted (saw the done flag).
    Halted {
        /// Global step index.
        step: usize,
        /// Which processor.
        proc: usize,
        /// Name of the final capsule.
        capsule: String,
    },
    /// Processor `proc` hard-faulted inside `capsule` (scheduled
    /// mid-capsule fault from the machine's [`ppm_pm::FaultConfig`]).
    Died {
        /// Global step index.
        step: usize,
        /// Which processor.
        proc: usize,
        /// Capsule it died in.
        capsule: String,
    },
    /// Processor `proc` was killed by a scripted [`SimOp::Crash`].
    Crashed {
        /// Global step index.
        step: usize,
        /// Which processor.
        proc: usize,
    },
    /// A scripted quiesced checkpoint ran.
    Checkpoint {
        /// Global step index.
        step: usize,
    },
    /// A step was scripted for a processor that already halted or died.
    Noop {
        /// Global step index.
        step: usize,
        /// Which processor.
        proc: usize,
    },
}

impl std::fmt::Display for SimEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimEvent::Ran {
                step,
                proc,
                capsule,
                next,
            } => write!(f, "{step:5} p{proc} run  {capsule} -> {next}"),
            SimEvent::Halted {
                step,
                proc,
                capsule,
            } => write!(f, "{step:5} p{proc} halt {capsule}"),
            SimEvent::Died {
                step,
                proc,
                capsule,
            } => write!(f, "{step:5} p{proc} died in {capsule}"),
            SimEvent::Crashed { step, proc } => write!(f, "{step:5} p{proc} crash (scripted)"),
            SimEvent::Checkpoint { step } => write!(f, "{step:5} -- checkpoint"),
            SimEvent::Noop { step, proc } => write!(f, "{step:5} p{proc} noop (not running)"),
        }
    }
}

/// Summary of a finished (or abandoned) simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The computation's completion flag is set.
    pub completed: bool,
    /// Per-processor outcomes (`None` = still runnable when the sim
    /// stopped).
    pub outcomes: Vec<Option<ProcOutcome>>,
    /// Total capsule-steps executed.
    pub steps: usize,
    /// FNV-1a digest over the event trace and every machine word — the
    /// determinism witness (same seed + script ⇒ same digest).
    pub digest: u64,
}

struct SimProc {
    ctx: ProcCtx,
    install: InstallCtx,
    cur: Option<Cont>,
    outcome: Option<ProcOutcome>,
}

/// The single-threaded scripted stepper. See the module docs.
pub struct SimSched<'m> {
    machine: &'m Machine,
    sched: Arc<Sched>,
    done: DoneFlag,
    ctl: Arc<CheckpointCtl>,
    on_end: Cont,
    procs: Vec<SimProc>,
    events: Vec<SimEvent>,
    steps: usize,
}

impl<'m> SimSched<'m> {
    /// A simulator over a legacy-closure computation (the `comp` is the
    /// same shape [`crate::Runtime::run_or_replay`] takes). The root
    /// thread seats on processor 0; every other processor starts at
    /// `findWork`, per §6.3.
    pub fn new_closure(machine: &'m Machine, comp: &Comp, cfg: &SchedConfig) -> Self {
        let done = DoneFlag::new(machine);
        let root = comp(done.finale());
        let root_slot = machine.alloc_region(1).start;
        machine.arena().preregister(root_slot, root.clone());
        Self::seat(machine, done, root, root_slot as Word, cfg)
    }

    /// A simulator over a persistent-capsule computation: the root (and
    /// every fork) is frame-denoted, so scripted checkpoints can trace
    /// and GC the frame pools, and crashes leave a resumable machine.
    pub fn new_persistent(machine: &'m Machine, pcomp: &PComp, cfg: &SchedConfig) -> Self {
        let done = DoneFlag::new(machine);
        let finale = machine.setup_frame(CORE_ID_FINALE, &[done.addr() as Word]);
        let root_handle = pcomp(machine, finale);
        let root = machine
            .arena()
            .resolve(root_handle)
            .expect("root frame handle must rehydrate through the registry");
        Self::seat(machine, done, root, root_handle, cfg)
    }

    /// A simulator over a **service-mode** scheduler: no root computation
    /// is seated — every processor starts at `findWork` and work arrives
    /// through a durable injector ring allocated here (the in-process
    /// twin of a service session's queue). Submit host-side through the
    /// returned [`InjectorQueue`] handle; the steal loop consults the
    /// ring before probing victim deques, so a script can place a claim
    /// race or a live-shard steal between any two capsules.
    ///
    /// Pass a [`ShardDomain`] (with live stealing enabled) to route
    /// victim selection across shard boundaries through the real
    /// `pick_victim` path; `None` simulates a plain single-shard service
    /// process.
    ///
    /// The run has no root thread to set the completion flag — call
    /// [`SimSched::set_done`] once the ring drains (what the service
    /// supervisor does at shutdown) so the steal loops halt.
    pub fn new_service(
        machine: &'m Machine,
        cfg: &SchedConfig,
        service: ServiceConfig,
        domain: Option<Arc<ShardDomain>>,
    ) -> (Self, Arc<InjectorQueue>) {
        let done = DoneFlag::new(machine);
        let ring = machine.alloc_region(ppm_pm::service::ring_words(service.slots));
        let workspace = machine.alloc_region(service.slots * service.job_words);
        let queue = InjectorQueue::install(machine, ring, workspace, service);
        let sched = match domain {
            Some(d) => Sched::new_sharded(machine, done, cfg, d),
            None => Sched::new(machine, done, cfg),
        };
        sched.set_injector(queue.clone());
        let procs = (0..machine.procs())
            .map(|p| SimProc {
                ctx: machine.ctx(p),
                install: InstallCtx::new(machine.proc_meta(p)),
                cur: Some(sched.find_work()),
                outcome: None,
            })
            .collect();
        let ctl = CheckpointCtl::new(machine, sched.clone(), CheckpointPolicy::Disabled);
        let on_end = sched.scheduler_entry();
        let sim = SimSched {
            machine,
            sched,
            done,
            ctl,
            on_end,
            procs,
            events: Vec::new(),
            steps: 0,
        };
        (sim, queue)
    }

    /// Host-side completion signal for service-mode runs: sets the done
    /// flag the way the service supervisor does once the injector ring
    /// drains, releasing every steal loop to halt at its next
    /// termination check.
    pub fn set_done(&self) {
        self.machine.mem().store(self.done.addr(), 1);
    }

    /// §6.3 seating shared by both roots (mirrors the driver's
    /// `launch_root`): processor 0's first entry is `local`, its restart
    /// pointer is the root handle; everyone else installs `findWork`.
    fn seat(
        machine: &'m Machine,
        done: DoneFlag,
        root: Cont,
        root_handle: Word,
        cfg: &SchedConfig,
    ) -> Self {
        let sched = Sched::new(machine, done, cfg);
        machine
            .mem()
            .store(machine.proc_meta(0).active, root_handle);
        machine
            .mem()
            .store(sched.deques()[0].entry(0), pack(1, EntryVal::Local));
        let procs = (0..machine.procs())
            .map(|p| SimProc {
                ctx: machine.ctx(p),
                install: InstallCtx::new(machine.proc_meta(p)),
                cur: Some(if p == 0 {
                    root.clone()
                } else {
                    sched.find_work()
                }),
                outcome: None,
            })
            .collect();
        let ctl = CheckpointCtl::new(machine, sched.clone(), CheckpointPolicy::Disabled);
        let on_end = sched.scheduler_entry();
        SimSched {
            machine,
            sched,
            done,
            ctl,
            on_end,
            procs,
            events: Vec::new(),
            steps: 0,
        }
    }

    /// Runs exactly one capsule on processor `p` (a no-op event if it
    /// already halted or died). Returns the recorded event.
    pub fn step(&mut self, p: usize) -> SimEvent {
        let step = self.steps;
        self.steps += 1;
        let ev = if self.procs[p].outcome.is_some() || self.procs[p].cur.is_none() {
            SimEvent::Noop { step, proc: p }
        } else {
            let cur = self.procs[p].cur.clone().expect("checked above");
            let capsule = cur.name().to_string();
            let sched = self.sched.clone();
            let fork_wrap = move |handle: Word, cont: Cont, cont_handle: Option<Word>| {
                sched.push_bottom(handle, cont, cont_handle)
            };
            let sp = &mut self.procs[p];
            match run_capsule(
                &mut sp.ctx,
                self.machine.arena(),
                &mut sp.install,
                &cur,
                Some(&fork_wrap),
                Some(&self.on_end),
            ) {
                Ok(Step::Next(c)) => {
                    let next = c.name().to_string();
                    sp.cur = Some(c);
                    SimEvent::Ran {
                        step,
                        proc: p,
                        capsule,
                        next,
                    }
                }
                Ok(Step::Done) => {
                    sp.cur = None;
                    sp.outcome = Some(ProcOutcome::Halted);
                    SimEvent::Halted {
                        step,
                        proc: p,
                        capsule,
                    }
                }
                Err(_) => {
                    sp.cur = None;
                    sp.outcome = Some(ProcOutcome::Dead);
                    SimEvent::Died {
                        step,
                        proc: p,
                        capsule,
                    }
                }
            }
        };
        self.events.push(ev.clone());
        ev
    }

    /// Scripted boundary crash: marks `p` dead in the liveness oracle and
    /// stops stepping it. Its restart pointer and deque entries remain —
    /// live processors adopt them through the ordinary steal protocol.
    pub fn crash(&mut self, p: usize) {
        let step = self.steps;
        self.steps += 1;
        self.machine.liveness().mark_dead(p);
        self.procs[p].cur = None;
        self.procs[p].outcome = Some(ProcOutcome::Dead);
        self.events.push(SimEvent::Crashed { step, proc: p });
    }

    /// Scripted quiesced checkpoint. Sound here without the barrier: the
    /// stepper is single-threaded, so every processor *is* parked at a
    /// capsule boundary right now. Pool cursors resync from the (possibly
    /// rolled-back) watermarks, as the real barrier's unpark path does.
    pub fn checkpoint(&mut self) {
        let step = self.steps;
        self.steps += 1;
        self.ctl.quiesced_checkpoint(self.machine);
        for (p, sp) in self.procs.iter_mut().enumerate() {
            if sp.outcome.is_none() {
                sp.ctx.set_pool_cursor(self.machine.pool_watermark(p));
            }
        }
        self.events.push(SimEvent::Checkpoint { step });
    }

    /// Executes a script in order.
    pub fn run_script(&mut self, script: &[SimOp]) {
        for op in script {
            match *op {
                SimOp::Step(p) => {
                    self.step(p);
                }
                SimOp::Run(p, n) => {
                    for _ in 0..n {
                        if self.procs[p].outcome.is_some() {
                            break;
                        }
                        self.step(p);
                    }
                }
                SimOp::Crash(p) => self.crash(p),
                SimOp::Checkpoint => self.checkpoint(),
            }
        }
    }

    /// Drives a seeded random schedule: each step picks a uniformly
    /// pseudo-random runnable processor from a xorshift64* stream. Stops
    /// when the computation completes, nobody is runnable, or `max_steps`
    /// is hit. Same seed ⇒ same schedule ⇒ same trace and digest.
    pub fn run_seeded(&mut self, seed: u64, max_steps: usize) {
        // One splitmix64 round separates adjacent seeds (and maps no two
        // seeds to the same stream, unlike e.g. `seed | 1`).
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x |= 1;
        for _ in 0..max_steps {
            if self.done.is_set(self.machine.mem()) {
                break;
            }
            let runnable: Vec<usize> = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, sp)| sp.outcome.is_none())
                .map(|(p, _)| p)
                .collect();
            if runnable.is_empty() {
                break;
            }
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let pick = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % runnable.len();
            self.step(runnable[pick]);
        }
    }

    /// Round-robin steps every runnable processor until the computation
    /// completes, everyone halts/dies, or `max_steps` is hit.
    pub fn run_to_completion(&mut self, max_steps: usize) {
        let mut budget = max_steps;
        'outer: while budget > 0 {
            let mut progressed = false;
            for p in 0..self.procs.len() {
                if budget == 0 {
                    break 'outer;
                }
                if self.procs[p].outcome.is_none() {
                    self.step(p);
                    progressed = true;
                    budget -= 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// The recorded event trace.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// The trace rendered one line per event (what the determinism tests
    /// compare and what counterexample artifacts contain).
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// FNV-1a digest over the rendered trace and every machine word: the
    /// determinism witness. Two runs with the same machine construction,
    /// script, and seed must produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.render_trace().as_bytes());
        let mem = self.machine.mem();
        for w in mem.to_vec(0, mem.len()) {
            eat(&w.to_le_bytes());
        }
        h
    }

    /// Whether the computation's completion flag is set.
    pub fn completed(&self) -> bool {
        self.done.is_set(self.machine.mem())
    }

    /// Finishes the run: checks the WS-deque structural invariant on
    /// every deque (the machine is quiescent) and returns the report.
    ///
    /// # Panics
    /// Panics if any deque violates the §6.2 structural invariant — in a
    /// simulated schedule that is always a scheduler bug worth a trace.
    pub fn finish(self) -> SimReport {
        for d in self.sched.deques() {
            if let Err(e) = check_invariant(self.machine.mem(), d) {
                panic!(
                    "WS-deque invariant violated after simulated run: {e}\ntrace:\n{}",
                    self.render_trace()
                );
            }
        }
        let digest = self.digest();
        SimReport {
            completed: self.done.is_set(self.machine.mem()),
            outcomes: self.procs.iter().map(|p| p.outcome).collect(),
            steps: self.steps,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::{par_all, Comp};
    use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};

    fn machine(p: usize, f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(p, 1 << 21).with_fault(f))
    }

    fn markers(r: Region, n: usize) -> Comp {
        par_all(
            (0..n)
                .map(|i| {
                    ppm_core::comp_step("sim/mark", move |ctx: &mut ProcCtx| {
                        ctx.pwrite(r.at(i), i as u64 + 1)
                    })
                })
                .collect(),
        )
    }

    #[test]
    fn round_robin_schedule_completes_the_computation() {
        let m = machine(2, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = markers(r, 8);
        let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
        sim.run_to_completion(10_000);
        let rep = sim.finish();
        assert!(rep.completed);
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[test]
    fn scripted_boundary_crash_is_adopted_by_the_survivor() {
        let m = machine(2, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = markers(r, 8);
        let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
        // Let the root processor fork a bit, then kill it; processor 1
        // must finish everything through steals and adoption.
        sim.run_script(&[SimOp::Run(0, 6), SimOp::Crash(0)]);
        sim.run_to_completion(10_000);
        let rep = sim.finish();
        assert!(rep.completed, "survivor finishes:\n{}", sim_trace(&m));
        assert_eq!(rep.outcomes[0], Some(ProcOutcome::Dead));
        assert_eq!(rep.outcomes[1], Some(ProcOutcome::Halted));
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    // finish() consumes the sim; re-render for assertion messages.
    fn sim_trace(_m: &Machine) -> &'static str {
        "(trace consumed)"
    }

    #[test]
    fn mid_capsule_hard_fault_surfaces_as_died_event() {
        let m = machine(2, FaultConfig::none().with_scheduled_hard_fault(0, 12));
        let r = m.alloc_region(64);
        let comp = markers(r, 8);
        let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
        sim.run_to_completion(10_000);
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::Died { proc: 0, .. })));
        let rep = sim.finish();
        assert!(rep.completed, "processor 1 must finish alone");
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    /// The service-mode interleaving the model's injector extension
    /// abstracts, driven through the real capsules: both processors race
    /// the published slot's claim CAM step-by-step, the loser falls back
    /// to the deque-steal path and harvests the winner's forked subtasks
    /// across the shard boundary (live-shard stealing), and the ticket
    /// resolves exactly once.
    #[test]
    fn scripted_live_shard_steal_races_the_queue_pull() {
        use crate::cluster::ShardDomain;
        use crate::service::{JobStatus, ServiceConfig};
        use ppm_core::{dsl, Persist};
        use ppm_pm::ShardMap;

        let m = machine(2, FaultConfig::none());
        // Two processors in two one-processor shards; the domain is shard
        // 0's view, with cross-shard victim selection switched on.
        let domain = ShardDomain::new(ShardMap::new(2, 2), 0);
        domain.set_live_stealing(true);

        let out = m.alloc_region(16);
        let split = {
            let mut set = dsl::CapsuleSet::new(&m);
            let leaf = set.define(
                "simsvc/mark",
                |st: &dsl::Span<Region>, k, ctx: &mut ProcCtx| {
                    for i in st.lo..st.hi {
                        ctx.pwrite(st.env.at(i), i as u64 + 1)?;
                    }
                    Ok(dsl::Step::Jump(k))
                },
            );
            set.map_grain("simsvc/split", 1, leaf)
        };

        let (mut sim, queue) = SimSched::new_service(
            &m,
            &SchedConfig::with_slots(256),
            ServiceConfig::default().with_slots(4),
            Some(domain.clone()),
        );
        let mut args = Vec::new();
        dsl::Span {
            env: out,
            lo: 0usize,
            hi: 8usize,
        }
        .encode(&mut args);
        let ticket = queue.submit(split.id(), &args).expect("submit");
        assert_eq!(queue.depth(), 1, "published slot visible before any pull");

        // Strict alternation, one capsule at a time: both pullers scan the
        // ring, both enter the pull chain, exactly one claim CAM wins; the
        // loser's steal loop then probes the winner's deque every other
        // step while the splitter forks.
        for _ in 0..400 {
            if matches!(queue.status(ticket), JobStatus::Done { .. }) {
                break;
            }
            sim.step(1);
            sim.step(0);
        }

        let status = queue.status(ticket);
        assert!(
            matches!(status, JobStatus::Done { .. }),
            "ticket must resolve under alternation, got {status:?}\n{}",
            sim.render_trace()
        );

        // Drain complete: signal done the way the supervisor does and let
        // the trailing capsules (the winner's done/check, the loser's
        // steal loop) observe it and halt cleanly.
        sim.set_done();
        sim.run_to_completion(1_000);

        assert_eq!(queue.completed_total(), 1, "exactly-once resolution");
        assert_eq!(queue.depth(), 0);
        for i in 0..8 {
            assert_eq!(m.mem().load(out.at(i)), i as u64 + 1, "leaf effect {i}");
        }

        // Both processors reached the claim CAM — the scripted race was
        // real, not one puller draining an idle ring.
        let racers: std::collections::BTreeSet<usize> = sim
            .events()
            .iter()
            .filter_map(|e| match e {
                SimEvent::Ran { proc, capsule, .. } if capsule == "service/pull/cam" => Some(*proc),
                _ => None,
            })
            .collect();
        assert_eq!(
            racers.len(),
            2,
            "both processors must race the claim CAM\n{}",
            sim.render_trace()
        );
        // The losing puller crossed the shard boundary for the winner's
        // forked subtasks.
        assert!(
            domain.live_steals() > 0,
            "expected a live-shard steal in the interleaving\n{}",
            sim.render_trace()
        );

        let rep = sim.finish();
        assert!(rep.completed);
        assert!(rep.outcomes.iter().all(|o| *o == Some(ProcOutcome::Halted)));
    }

    /// Same service script, same submission: the trace and final machine
    /// digest are bit-identical across runs — service mode keeps the
    /// simulator's determinism witness.
    #[test]
    fn service_mode_scripts_replay_deterministically() {
        use crate::cluster::ShardDomain;
        use crate::service::ServiceConfig;
        use ppm_core::{dsl, Persist};
        use ppm_pm::ShardMap;

        let run = || {
            let m = machine(2, FaultConfig::none());
            let domain = ShardDomain::new(ShardMap::new(2, 2), 0);
            domain.set_live_stealing(true);
            let out = m.alloc_region(16);
            let mut set = dsl::CapsuleSet::new(&m);
            let leaf = set.define(
                "simsvc/mark",
                |st: &dsl::Span<Region>, k, ctx: &mut ProcCtx| {
                    for i in st.lo..st.hi {
                        ctx.pwrite(st.env.at(i), i as u64 + 1)?;
                    }
                    Ok(dsl::Step::Jump(k))
                },
            );
            let split = set.map_grain("simsvc/split", 1, leaf);
            let (mut sim, queue) = SimSched::new_service(
                &m,
                &SchedConfig::with_slots(256),
                ServiceConfig::default().with_slots(4),
                Some(domain),
            );
            let mut args = Vec::new();
            dsl::Span {
                env: out,
                lo: 0usize,
                hi: 8usize,
            }
            .encode(&mut args);
            queue.submit(split.id(), &args).expect("submit");
            sim.run_seeded(7, 2_000);
            sim.set_done();
            sim.run_to_completion(1_000);
            (sim.render_trace(), sim.digest())
        };
        let (t1, d1) = run();
        let (t2, d2) = run();
        assert_eq!(t1, t2, "service-mode schedule must replay byte-identically");
        assert_eq!(d1, d2);
    }

    #[test]
    fn same_seed_same_trace_and_digest() {
        let run = |seed: u64| -> (String, u64, bool) {
            let m = machine(3, FaultConfig::none());
            let r = m.alloc_region(64);
            let comp = markers(r, 12);
            let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
            sim.run_seeded(seed, 4_000);
            (sim.render_trace(), sim.digest(), sim.completed())
        };
        let (t1, d1, c1) = run(42);
        let (t2, d2, c2) = run(42);
        assert_eq!(t1, t2, "same seed must replay the identical schedule");
        assert_eq!(d1, d2);
        assert!(c1 && c2, "seeded run should complete within the budget");
        let (_, d3, _) = run(43);
        assert_ne!(d1, d3, "different seeds should interleave differently");
    }
}
