//! Packed WS-deque entries.
//!
//! Figure 3's deque stores `⟨int, entry⟩` pairs — a tag (called *step* in
//! the code) and an entry that is one of `empty | local | job(continuation)
//! | taken(entry*, int)`. The pair must be CAM-able as a unit, so we pack
//! it into one 64-bit persistent word:
//!
//! ```text
//!   63        48 47  46 45                                   0
//!  [    tag     ][kind][              payload                ]
//! ```
//!
//! * `tag` (16 bits) — the ABA-avoidance counter of §6.2. It increments on
//!   every entry transition; a slot would need 2^16 transitions for a tag
//!   to repeat, and slots see at most a handful (the deque never deletes).
//! * `kind` (2 bits) — empty / local / job / taken.
//! * `payload` (46 bits) —
//!   * `job`: the continuation handle (a persistent address; address
//!     spaces up to 2^46 words are representable);
//!   * `taken`: the thief-side entry reference `(proc: 8, slot: 22,
//!     tag: 16)` — which entry of which thief's deque will hold the stolen
//!     thread, and the tag that entry had when the steal began.

use ppm_pm::Word;

/// Maximum number of processors representable in a `taken` payload.
pub const MAX_PROCS: usize = 1 << 8;
/// Maximum deque slots representable in a `taken` payload.
pub const MAX_SLOTS: usize = 1 << 22;
/// Maximum continuation handle representable in a `job` payload.
pub const MAX_HANDLE: u64 = (1 << 46) - 1;

const KIND_SHIFT: u32 = 46;
const TAG_SHIFT: u32 = 48;
const PAYLOAD_MASK: u64 = (1 << 46) - 1;

/// The state of a deque entry (Figure 4's four states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// Not yet associated with a thread.
    Empty = 0,
    /// The owner (or an adopting thief) is currently running this thread.
    Local = 1,
    /// An enabled thread awaiting execution.
    Job = 2,
    /// Stolen (or being stolen); never changes again.
    Taken = 3,
}

impl EntryKind {
    /// Decodes the two kind bits.
    pub fn from_bits(b: u64) -> EntryKind {
        match b & 0b11 {
            0 => EntryKind::Empty,
            1 => EntryKind::Local,
            2 => EntryKind::Job,
            _ => EntryKind::Taken,
        }
    }

    /// Whether Figure 4 permits the transition `self → to`.
    ///
    /// Rows are old states, columns new states; the paper's ✓ cells:
    /// Empty→Local; Local→Empty, Local→Job, Local→Taken; Job→Local,
    /// Job→Taken. Taken is terminal. (Self-transitions are "-": an entry
    /// never rewrites to its own state, tags always change.)
    pub fn can_transition_to(self, to: EntryKind) -> bool {
        use EntryKind::*;
        matches!(
            (self, to),
            (Empty, Local)
                | (Local, Empty)
                | (Local, Job)
                | (Local, Taken)
                | (Job, Local)
                | (Job, Taken)
        )
    }
}

/// A decoded entry value (without its tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryVal {
    /// No thread.
    Empty,
    /// Thread running on the owner.
    Local,
    /// Enabled thread: continuation handle.
    Job {
        /// Arena handle of the thread's first capsule.
        handle: Word,
    },
    /// Stolen: reference to the thief's entry.
    Taken {
        /// Thief processor id.
        proc: usize,
        /// Slot index in the thief's deque.
        slot: usize,
        /// Tag the thief's entry had when the steal began.
        tag: u16,
    },
}

impl EntryVal {
    /// This value's kind.
    pub fn kind(&self) -> EntryKind {
        match self {
            EntryVal::Empty => EntryKind::Empty,
            EntryVal::Local => EntryKind::Local,
            EntryVal::Job { .. } => EntryKind::Job,
            EntryVal::Taken { .. } => EntryKind::Taken,
        }
    }
}

/// Packs a `⟨tag, entry⟩` pair into one word.
///
/// # Panics
/// Panics if a payload exceeds its field width (a configuration error:
/// too many processors, too many deque slots, or an oversized handle).
pub fn pack(tag: u16, val: EntryVal) -> Word {
    let (kind, payload): (u64, u64) = match val {
        EntryVal::Empty => (0, 0),
        EntryVal::Local => (1, 0),
        EntryVal::Job { handle } => {
            assert!(
                handle <= MAX_HANDLE,
                "continuation handle {handle} overflows payload"
            );
            (2, handle)
        }
        EntryVal::Taken { proc, slot, tag } => {
            assert!(proc < MAX_PROCS, "proc {proc} overflows taken payload");
            assert!(slot < MAX_SLOTS, "slot {slot} overflows taken payload");
            (
                3,
                ((proc as u64) << 38) | ((slot as u64) << 16) | tag as u64,
            )
        }
    };
    ((tag as u64) << TAG_SHIFT) | (kind << KIND_SHIFT) | payload
}

/// Unpacks a word into its `⟨tag, entry⟩` pair.
pub fn unpack(w: Word) -> (u16, EntryVal) {
    let tag = (w >> TAG_SHIFT) as u16;
    let payload = w & PAYLOAD_MASK;
    let val = match EntryKind::from_bits(w >> KIND_SHIFT) {
        EntryKind::Empty => EntryVal::Empty,
        EntryKind::Local => EntryVal::Local,
        EntryKind::Job => EntryVal::Job { handle: payload },
        EntryKind::Taken => EntryVal::Taken {
            proc: (payload >> 38) as usize,
            slot: ((payload >> 16) & ((1 << 22) - 1)) as usize,
            tag: payload as u16,
        },
    };
    (tag, val)
}

/// The tag of a packed entry (Figure 3's `getStep`).
#[inline]
pub fn tag_of(w: Word) -> u16 {
    (w >> TAG_SHIFT) as u16
}

/// The kind of a packed entry.
#[inline]
pub fn kind_of(w: Word) -> EntryKind {
    EntryKind::from_bits(w >> KIND_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        let cases = [
            (0u16, EntryVal::Empty),
            (42, EntryVal::Local),
            (u16::MAX, EntryVal::Job { handle: MAX_HANDLE }),
            (7, EntryVal::Job { handle: 0 }),
            (
                1,
                EntryVal::Taken {
                    proc: MAX_PROCS - 1,
                    slot: MAX_SLOTS - 1,
                    tag: u16::MAX,
                },
            ),
            (
                9,
                EntryVal::Taken {
                    proc: 0,
                    slot: 0,
                    tag: 0,
                },
            ),
        ];
        for (tag, val) in cases {
            let w = pack(tag, val);
            assert_eq!(unpack(w), (tag, val), "case tag={tag} val={val:?}");
            assert_eq!(tag_of(w), tag);
            assert_eq!(kind_of(w), val.kind());
        }
    }

    #[test]
    fn zero_word_is_tag_zero_empty() {
        // Fresh persistent memory is all zeroes: every slot starts as
        // ⟨0, empty⟩ without initialization writes.
        assert_eq!(unpack(0), (0, EntryVal::Empty));
    }

    #[test]
    fn distinct_pairs_pack_distinctly() {
        let a = pack(1, EntryVal::Local);
        let b = pack(2, EntryVal::Local);
        let c = pack(1, EntryVal::Empty);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "overflows payload")]
    fn oversized_handle_rejected() {
        let _ = pack(
            0,
            EntryVal::Job {
                handle: MAX_HANDLE + 1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "overflows taken payload")]
    fn oversized_proc_rejected() {
        let _ = pack(
            0,
            EntryVal::Taken {
                proc: MAX_PROCS,
                slot: 0,
                tag: 0,
            },
        );
    }

    #[test]
    fn figure4_transition_table() {
        use EntryKind::*;
        let all = [Empty, Local, Job, Taken];
        // The paper's table: rows = old, columns = new.
        let allowed = [
            (Empty, Local),
            (Local, Empty),
            (Local, Job),
            (Local, Taken),
            (Job, Local),
            (Job, Taken),
        ];
        for from in all {
            for to in all {
                let expect = allowed.contains(&(from, to));
                assert_eq!(
                    from.can_transition_to(to),
                    expect,
                    "transition {from:?} -> {to:?}"
                );
            }
        }
    }
}
