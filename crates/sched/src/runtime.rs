//! `Runtime`: one session object for running and recovering computations.
//!
//! The pre-session API exposed four free functions (`run_computation`,
//! `run_persistent`, `recover_computation`, `recover_persistent`) and
//! left the caller to decide which to call — i.e. to re-implement the
//! "did the previous process crash?" dispatch at every call site. A
//! [`Runtime`] owns that decision: it wraps a [`Machine`] plus a
//! [`SchedConfig`], and its one entry point for persistent computations,
//! [`Runtime::run_or_recover`], dispatches internally to
//!
//! * a **fresh run** when the machine has no crashed predecessor
//!   (volatile machines, or the creating run of a durable file),
//! * a **persistent resume** of the crash frontier when the machine was
//!   reopened from a crashed run and every in-flight handle rehydrates,
//! * the **replay-from-root fallback** otherwise (with a structured
//!   [`crate::FallbackReason`] saying why), or
//! * nothing at all when the persisted completion flag shows the
//!   previous run already finished,
//!
//! and always returns the same unified [`SessionReport`].
//!
//! [`Runtime::run_or_replay`] is the equivalent single entry point for
//! legacy closure computations (which can only ever replay after a
//! crash).
//!
//! ## Sessions and determinism
//!
//! A `Runtime` stands for one *session* against one machine. The
//! recovery contract of the underlying machinery is unchanged: the
//! process that calls [`Runtime::open`] must rebuild the computation
//! deterministically — same `alloc_region` calls in the same order, same
//! capsule names declared in the same order (see `ppm_core::dsl`), same
//! scheduler shape — before `run_or_recover` inspects the persisted
//! deques. The typed DSL makes that cheap: a `pcomp` closure carries the
//! whole construction.
//!
//! ```
//! use ppm_core::{dsl, Machine, PComp};
//! use ppm_pm::PmConfig;
//! use ppm_sched::{Runtime, RuntimeConfig};
//! use std::sync::Arc;
//!
//! let rt = Runtime::volatile(RuntimeConfig::new(PmConfig::parallel(2, 1 << 20)));
//! let out = rt.machine().alloc_region(16);
//! let pcomp: PComp = Arc::new(move |m: &Machine, finale| {
//!     let mut set = dsl::CapsuleSet::new(m);
//!     let leaf = set.define("doc/mark", |st: &dsl::Span<ppm_pm::Region>, k, ctx| {
//!         for i in st.lo..st.hi {
//!             ctx.pwrite(st.env.at(i), i as u64 + 1)?;
//!         }
//!         Ok(dsl::Step::Jump(k))
//!     });
//!     let split = set.map_grain("doc/split", 4, leaf);
//!     split.setup(m, &dsl::Span { env: out, lo: 0, hi: 16 }, dsl::K(finale)).0
//! });
//! let report = rt.run_or_recover(&pcomp);
//! assert!(report.completed());
//! assert_eq!(rt.machine().mem().load(out.at(5)), 6);
//! ```

use ppm_core::{Comp, Machine};
use ppm_pm::PmConfig;

use crate::capsules::SchedConfig;
use crate::driver::{
    recover_computation_impl, recover_persistent_impl, run_computation_impl, run_persistent_impl,
    PComp, SessionReport,
};

/// Configuration for a [`Runtime`] session: the machine shape plus the
/// scheduler shape.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Machine configuration (processors, memory size, fault adversary,
    /// validation mode). When a session is [`Runtime::open`]ed from an
    /// existing file, the shape fields come from the file's superblock
    /// and only the fault/validation fields of this value apply.
    pub pm: PmConfig,
    /// Scheduler configuration (deque slots, victim-selection seed,
    /// transition checking).
    pub sched: SchedConfig,
    /// Per-processor allocation-pool words; `None` uses the machine
    /// default sizing.
    pub pool_words: Option<usize>,
}

impl RuntimeConfig {
    /// A config over a machine shape, with default scheduler settings.
    pub fn new(pm: PmConfig) -> Self {
        RuntimeConfig {
            pm,
            sched: SchedConfig::default(),
            pool_words: None,
        }
    }

    /// Replaces the scheduler configuration.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the deque size (shorthand for the common scheduler knob).
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.sched.deque_slots = slots;
        self
    }

    /// Sets the checkpoint policy (see [`crate::checkpoint`]): how often
    /// persistent runs quiesce to flush dirty pages, write a durable
    /// resume record, and reclaim dead frame-pool words. Defaults to
    /// every [`crate::checkpoint::DEFAULT_CHECKPOINT_CAPSULES`] capsules;
    /// pass [`crate::CheckpointPolicy::disabled`] to opt out.
    pub fn with_checkpoint(mut self, policy: crate::CheckpointPolicy) -> Self {
        self.sched.checkpoint = policy;
        self
    }

    /// Sets explicit per-processor pool sizing (needed by the
    /// scratch-hungry algorithms — see e.g.
    /// `ppm_algs::sort::samplesort_pool_words`).
    pub fn with_pool_words(mut self, words: usize) -> Self {
        self.pool_words = Some(words);
        self
    }
}

/// A session against one Parallel-PM machine: the single user-facing way
/// to run fork-join computations, durable or volatile, fresh or
/// recovering. See the [module docs](self) for the dispatch semantics.
#[derive(Debug)]
pub struct Runtime {
    machine: Machine,
    sched: SchedConfig,
}

impl Runtime {
    /// Wraps an already-constructed machine (volatile, durable-created,
    /// or reopened) in a session. The universal adapter: `create`,
    /// `open` and `volatile` are conveniences over this.
    pub fn new(machine: Machine, sched: SchedConfig) -> Self {
        Runtime { machine, sched }
    }

    /// A session on a fresh volatile machine (persistence spans the
    /// simulated fault adversary only — tests, benchmarks, experiments).
    pub fn volatile(cfg: RuntimeConfig) -> Self {
        let machine = match cfg.pool_words {
            Some(w) => Machine::with_pool_words(cfg.pm, w),
            None => Machine::new(cfg.pm),
        };
        Runtime {
            machine,
            sched: cfg.sched,
        }
    }

    /// Creates a session on a fresh durable machine file at `path`
    /// (truncating anything already there). The first
    /// [`Runtime::run_or_recover`] on this session is a fresh run whose
    /// every continuation persists in the file.
    #[cfg(unix)]
    pub fn create(path: impl AsRef<std::path::Path>, cfg: RuntimeConfig) -> std::io::Result<Self> {
        let machine = match cfg.pool_words {
            Some(w) => Machine::create_durable_with_pool_words(cfg.pm, w, path)?,
            None => Machine::create_durable(cfg.pm, path)?,
        };
        Ok(Runtime {
            machine,
            sched: cfg.sched,
        })
    }

    /// Opens a session on an existing durable machine file (typically
    /// after the creating process crashed). The machine shape comes from
    /// the file's superblock; `cfg.pm`'s fault adversary and validation
    /// mode apply to this run. [`Runtime::run_or_recover`] on this
    /// session resumes, replays, or reports the computation already
    /// complete.
    #[cfg(unix)]
    pub fn open(path: impl AsRef<std::path::Path>, cfg: RuntimeConfig) -> std::io::Result<Self> {
        let machine = Machine::reopen_with(path, cfg.pm.fault.clone(), cfg.pm.validate)?;
        Ok(Runtime {
            machine,
            sched: cfg.sched,
        })
    }

    /// Runs a sharded multi-process session: creates the durable machine
    /// file at `path`, plants one sub-root per shard, spawns
    /// `cfg.shards` worker processes (via `spawn_worker`, which receives
    /// the shard index and returns the command that will call
    /// [`crate::cluster::run_worker`] for it), and monitors the run —
    /// leases, worker exits, the completion flag — until it completes or
    /// the deadline fires. Workers form independent fault domains:
    /// killing one mid-run costs bounded replay while the survivors
    /// adopt its deque frontier and the run keeps going. See
    /// [`crate::cluster`] for the full protocol.
    #[cfg(unix)]
    #[deprecated(
        note = "use cluster::ClusterBuilder::new(path).machine(pm).workers(n)….run(&build, spawn)"
    )]
    pub fn sharded(
        path: impl AsRef<std::path::Path>,
        cfg: &crate::cluster::ClusterConfig,
        build: &crate::cluster::ShardBuild,
        spawn_worker: impl FnMut(usize) -> std::process::Command,
    ) -> std::io::Result<SessionReport> {
        let mut b = crate::cluster::ClusterBuilder::new(path)
            .machine(cfg.pm.clone())
            .workers(cfg.shards)
            .lease_ms(cfg.lease_ms)
            .deque_slots(cfg.deque_slots)
            .seed(cfg.seed)
            .victim_strategy(cfg.victim_strategy)
            .deadline(cfg.deadline);
        if let Some(w) = cfg.pool_words {
            b = b.pool_words(w);
        }
        if let Some(every) = cfg.checkpoint_every {
            b = b.checkpoint_every(every);
        }
        if let Some(svc) = cfg.service {
            b = b.service(true).service_config(svc);
        }
        b.run(build, spawn_worker)
    }

    /// Starts a persistent job service: creates the durable machine file
    /// at `path` with an injector queue of `workers * procs_per_shard`
    /// model processors, spawns the worker processes, and returns a live
    /// [`crate::ServiceHandle`] — submit jobs
    /// ([`crate::ServiceHandle::submit`] → [`crate::JobTicket`]), await
    /// them exactly-once, and wind the service down with
    /// [`crate::ServiceHandle::drain`] / [`crate::ServiceHandle::shutdown`].
    /// Jobs submitted before a crash are recovered and completed
    /// exactly-once (see [`crate::service`]). This is sugar over
    /// [`crate::cluster::ClusterBuilder::spawn`], which exposes every
    /// knob.
    #[cfg(unix)]
    pub fn service(
        path: impl AsRef<std::path::Path>,
        pm: ppm_pm::PmConfig,
        workers: usize,
        build: &crate::cluster::ShardBuild,
        spawn_worker: impl FnMut(usize) -> std::process::Command,
    ) -> std::io::Result<crate::ServiceHandle> {
        crate::cluster::ClusterBuilder::new(path)
            .machine(pm)
            .workers(workers)
            .spawn(build, spawn_worker)
    }

    /// The session's machine (region allocation, oracle reads, flushing).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Starts a Prometheus scrape endpoint for this session's machine on
    /// `port` (`GET /metrics`, text exposition format 0.0.4; `port` 0
    /// picks an ephemeral one — read it back from the handle). The
    /// server runs until the returned handle is dropped. Runs also
    /// auto-serve while `PPM_METRICS_PORT` is set.
    pub fn serve_metrics(&self, port: u16) -> std::io::Result<ppm_obs::MetricsServer> {
        self.machine.obs().serve(port)
    }

    /// The scrape endpoint for one driven run, when `PPM_METRICS_PORT`
    /// asks for it (held across the parallel section, dropped when the
    /// entry point returns).
    fn auto_metrics(&self) -> Option<ppm_obs::MetricsServer> {
        ppm_obs::Obs::metrics_port_from_env().and_then(|p| self.machine.obs().serve(p).ok())
    }

    /// Session prologue shared by both entry points: when `PPM_TRACE_FILE`
    /// asks for a trace, open the causal span sidecar
    /// (`<trace>.spans.jsonl`) and hand it to the machine's [`ppm_obs::Obs`]
    /// so every processor context streams span records. Origin 0 is the
    /// coordinator / single-process run; epoch bits keep a recovery run's
    /// span ids disjoint from the crashed run's persisted parent words, and
    /// recovery *appends* so one file carries the whole multi-epoch story.
    fn attach_span_sink(&self) {
        if let Some(base) = ppm_obs::Obs::trace_file_from_env() {
            let path = ppm_obs::SpanSink::path_for(&base);
            if let Ok(sink) =
                ppm_obs::SpanSink::create(&path, 0, self.machine.epoch(), self.is_recovery())
            {
                self.machine.obs().set_span_sink(std::sync::Arc::new(sink));
            }
        }
    }

    /// Session epilogue shared by both entry points: close the event
    /// trace (RunEnd, sidecar flush per `PPM_TRACE_FILE`) and embed its
    /// summary in the report.
    fn finish_session(&self, mut report: SessionReport) -> SessionReport {
        let obs = self.machine.obs();
        obs.tracer().record(
            ppm_obs::TraceKind::RunEnd,
            None,
            None,
            if report.completed() {
                "session complete"
            } else {
                "session incomplete"
            },
        );
        if let Some(path) = ppm_obs::Obs::trace_file_from_env() {
            let _ = obs.tracer().flush_jsonl(path);
        }
        report.trace = Some(obs.tracer().summary());
        report
    }

    /// The session's scheduler configuration.
    pub fn sched_config(&self) -> &SchedConfig {
        &self.sched
    }

    /// Whether this session is recovering a previous process's machine
    /// (reopened durable file) rather than running fresh.
    pub fn is_recovery(&self) -> bool {
        self.machine.epoch() >= 2
    }

    /// Runs a registered persistent computation — **the** entry point of
    /// the typed API. Dispatches internally:
    ///
    /// * fresh session → fresh run (continuations persisted as frames);
    /// * recovering session, completion flag set → nothing re-runs
    ///   ([`crate::SessionMode::AlreadyComplete`]);
    /// * recovering session, frontier rehydrates → resume from the crash
    ///   frontier ([`crate::SessionMode::Resumed`]);
    /// * recovering session, frontier unresumable but a durable
    ///   checkpoint record exists → resume from the newest checkpoint
    ///   (still [`crate::SessionMode::Resumed`], with
    ///   [`crate::SessionReport::checkpoint_resume`] set; replay distance
    ///   is bounded by one checkpoint epoch — see [`crate::checkpoint`]);
    /// * recovering session otherwise → replay from the root with a
    ///   structured fallback reason ([`crate::SessionMode::Replayed`]).
    ///
    /// `pcomp` must follow the construction-determinism contract (see
    /// the [module docs](self)).
    pub fn run_or_recover(&self, pcomp: &PComp) -> SessionReport {
        let _metrics = self.auto_metrics();
        self.attach_span_sink();
        self.machine
            .obs()
            .tracer()
            .record_with(ppm_obs::TraceKind::RunStart, None, None, || {
                format!(
                    "persistent session, epoch {} ({})",
                    self.machine.epoch(),
                    if self.is_recovery() {
                        "recovering"
                    } else {
                        "fresh"
                    }
                )
            });
        let report = if self.is_recovery() {
            recover_persistent_impl(&self.machine, pcomp, &self.sched)
        } else {
            let epoch = self.machine.epoch();
            SessionReport::fresh_run(
                epoch,
                run_persistent_impl(&self.machine, pcomp, &self.sched),
            )
        };
        self.finish_session(report)
    }

    /// Runs a legacy closure computation: a fresh run on a fresh session,
    /// a scrub-and-replay recovery on a recovering one. Closure capsules
    /// cannot be rehydrated, so crash recovery always replays from the
    /// root (idempotence makes that correct; registered computations
    /// should prefer [`Runtime::run_or_recover`]).
    pub fn run_or_replay(&self, comp: &Comp) -> SessionReport {
        let _metrics = self.auto_metrics();
        self.attach_span_sink();
        self.machine
            .obs()
            .tracer()
            .record_with(ppm_obs::TraceKind::RunStart, None, None, || {
                format!(
                    "closure session, epoch {} ({})",
                    self.machine.epoch(),
                    if self.is_recovery() {
                        "recovering"
                    } else {
                        "fresh"
                    }
                )
            });
        let report = if self.is_recovery() {
            recover_computation_impl(&self.machine, comp, &self.sched)
        } else {
            let epoch = self.machine.epoch();
            SessionReport::fresh_run(
                epoch,
                run_computation_impl(&self.machine, comp, &self.sched),
            )
        };
        self.finish_session(report)
    }

    /// Forces all stored words to stable storage (no-op for volatile
    /// sessions).
    pub fn flush(&self) -> std::io::Result<()> {
        self.machine.flush()
    }

    /// Flushes and records a clean shutdown in the durable superblock.
    pub fn mark_clean(&self) -> std::io::Result<()> {
        self.machine.mark_clean()
    }

    /// Unwraps the session back into its machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionMode;
    use ppm_core::{comp_step, par_all, Comp};
    use ppm_pm::{FaultConfig, ProcCtx};

    fn marker_comp(r: ppm_pm::Region, n: usize) -> Comp {
        par_all(
            (0..n)
                .map(|i| {
                    comp_step("mark", move |ctx: &mut ProcCtx| {
                        ctx.pcam(r.at(i), 0, i as u64 + 1)
                    })
                })
                .collect(),
        )
    }

    #[test]
    fn volatile_session_runs_fresh() {
        let rt = Runtime::volatile(
            RuntimeConfig::new(PmConfig::parallel(2, 1 << 18).with_fault(FaultConfig::none()))
                .with_slots(512),
        );
        assert!(!rt.is_recovery());
        let r = rt.machine().alloc_region(32);
        let rep = rt.run_or_replay(&marker_comp(r, 16));
        assert_eq!(rep.mode, SessionMode::FreshRun);
        assert!(rep.completed());
        assert_eq!(rep.epoch, 0);
        assert!(rep.fallback_reason.is_none());
        for i in 0..16 {
            assert_eq!(rt.machine().mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[cfg(unix)]
    fn tmp(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppm-runtime-test-{}-{tag}.ppm", std::process::id()));
        p
    }

    #[cfg(unix)]
    #[test]
    fn create_then_open_dispatches_fresh_then_recover() {
        let path = tmp("dispatch");
        let _ = std::fs::remove_file(&path);
        let cfg = || {
            RuntimeConfig::new(
                PmConfig::parallel(1, 1 << 18)
                    .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 60)),
            )
            .with_slots(512)
        };
        {
            let rt = Runtime::create(&path, cfg()).unwrap();
            assert!(!rt.is_recovery());
            let r = rt.machine().alloc_region(32);
            let rep = rt.run_or_replay(&marker_comp(r, 16));
            assert_eq!(rep.mode, SessionMode::FreshRun);
            assert!(!rep.completed(), "the scheduled hard fault kills the run");
        }
        let rt = Runtime::open(
            &path,
            RuntimeConfig::new(PmConfig::parallel(1, 1 << 18)).with_slots(512),
        )
        .unwrap();
        assert!(rt.is_recovery());
        let r = rt.machine().alloc_region(32);
        let rep = rt.run_or_replay(&marker_comp(r, 16));
        assert_eq!(rep.mode, SessionMode::Replayed);
        assert!(rep.completed());
        assert!(matches!(
            rep.fallback_reason,
            Some(crate::FallbackReason::LegacyClosures)
        ));
        for i in 0..16 {
            assert_eq!(rt.machine().mem().load(r.at(i)), i as u64 + 1);
        }
        rt.mark_clean().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn reopening_a_clean_session_reports_already_complete() {
        let path = tmp("clean");
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig::new(PmConfig::parallel(1, 1 << 18)).with_slots(512);
        {
            let rt = Runtime::create(&path, cfg.clone()).unwrap();
            let r = rt.machine().alloc_region(32);
            assert!(rt.run_or_replay(&marker_comp(r, 8)).completed());
            rt.mark_clean().unwrap();
        }
        let rt = Runtime::open(&path, cfg).unwrap();
        let r = rt.machine().alloc_region(32);
        let rep = rt.run_or_replay(&marker_comp(r, 8));
        assert_eq!(rep.mode, SessionMode::AlreadyComplete);
        assert!(rep.completed() && rep.already_complete());
        assert!(rep.run.is_none());
        assert_eq!(rep.elapsed(), std::time::Duration::ZERO);
        std::fs::remove_file(&path).unwrap();
    }
}
