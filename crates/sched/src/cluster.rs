//! Multi-process sharded runtime: independent fault domains over one
//! `MAP_SHARED` machine file.
//!
//! The paper models `P` *individual processors* faulting independently —
//! one dies, the other `P − 1` keep the computation going by stealing its
//! deque entries and adopting its restart pointer (§6.3). Until this
//! module, the reproduction could only exercise that model *within* one
//! OS process (scheduled hard faults) or lose the whole machine at once
//! (`kill -9` + reopen + recover). A **cluster** restores the paper's
//! actual granularity at OS scale: `N` worker processes attach to one
//! durable machine file, each owning a contiguous *shard* of the model
//! processors (its fault domain — metadata blocks, frame pools, and
//! WS-deques all disjoint by the deterministic layout, see
//! [`ppm_pm::ShardMap`]). Killing one worker costs that shard's in-flight
//! work only; the survivors adopt its frontier and the run **keeps
//! going** instead of restarting.
//!
//! ## How adoption works
//!
//! The trick is that the whole steal protocol is already CAM on shared
//! persistent words, and `MAP_SHARED` makes those words coherent across
//! processes. A dead worker's processors are therefore *exactly* the
//! paper's hard-faulted processors, just observed from another process:
//!
//! 1. Every worker renews a [`ppm_pm::Lease`] in the superblock page (a
//!    few hundred milliseconds of validity, renewed at a quarter of
//!    that). The coordinator additionally tombstones the lease of any
//!    worker whose exit it reaps. This is the §6.3 heartbeat
//!    construction of `isLive`, made cross-process.
//! 2. Each worker's monitor thread folds expired or tombstoned leases
//!    into its local [`ppm_pm::Liveness`] oracle (marking the dead
//!    shard's processors dead) and widens its [`ShardDomain`] so victim
//!    selection starts probing the dead shard's deques.
//! 3. From there the *unmodified* Figure 3 machinery does the work:
//!    `popTop` steals the dead shard's `job` entries (frame handles,
//!    rehydratable by any process), and the dead-owner local-steal path
//!    adopts running threads through their persisted restart pointers —
//!    with one cross-process hardening: a remote restart pointer must be
//!    a registered *frame* (a dead sibling's in-process closures are
//!    gone), otherwise the steal is refused and recorded as a blocked
//!    adoption instead of silently dropping the thread. Replay cost is
//!    bounded by the adopted shard's in-flight capsules — the same bound
//!    hard-fault adoption has in-process.
//!
//! In **batch** runs, live shards never steal from each other (victim
//! selection stays inside the fault domain until the oracle declares a
//! sibling dead). **Service** runs turn live-shard stealing on
//! ([`ShardDomain::set_live_stealing`]): victim selection spans live
//! siblings too, because the same CAM steal protocol is already safe
//! across processes — the only extra gate is that a *remote* `job`
//! handle must be a rehydratable frame, exactly like adoption. Steals
//! from live remote shards are counted separately
//! (`ppm_live_steals_total`).
//!
//! ## Entry points: [`ClusterBuilder`]
//!
//! One builder replaces the old free functions (now thin deprecated
//! shims):
//!
//! | old | new |
//! |---|---|
//! | `init(path, &cfg, &build)` | `ClusterBuilder::new(path).machine(pm).workers(n).init(&build)` |
//! | `init_observed(path, &cfg, &build)` | `…​.observe(&build)` |
//! | `run_coordinator(path, &cfg, &build, spawn)` | `…​.run(&build, spawn)` |
//! | `Runtime::sharded(path, &cfg, &build, spawn)` | `…​.run(&build, spawn)` |
//! | *(new)* service mode | `…​.service(true).spawn(&build, spawn)` → [`crate::ServiceHandle`] |
//!
//! Every other `ClusterConfig` knob has a matching builder method
//! (`lease_ms`, `deque_slots`, `seed`, `victim_strategy`, `pool_words`,
//! `deadline`, `checkpoint_every`, `service_config`).
//!
//! ## Work distribution and completion
//!
//! In a batch run, work reaches a shard by
//! **planting**: the coordinator builds one sub-root per shard (the
//! caller's [`ShardBuild`], e.g. "sort slice `s`") and plants it as a
//! `job` entry on the shard's first deque — the same mechanism recovery
//! uses to re-plant a harvested frontier. Each sub-root's continuation is
//! a registered `cluster/arrive` capsule that CAMs the shard's completion
//! flag and jumps to `cluster/check`, which reads all the flags and jumps
//! to the finale (setting the global done flag) once every shard's
//! subtree has finished — wherever it finished: a subtree adopted by a
//! survivor arrives exactly the same way, because the arrive frame
//! travels with the subtree. Every effect stays exactly-once by the §5
//! CAM discipline.
//!
//! ## Degraded paths
//!
//! * A worker killed while one of its processors was inside a
//!   scheduler-internal capsule (a steal or push in flight) can leave a
//!   thread only its own process could resume — the same narrow windows
//!   process-level recovery documents. Survivors refuse those adoptions
//!   (blocked, counted); if the run cannot finish, the coordinator's
//!   deadline fires and [`recover`] finishes the job single-process via
//!   the ordinary resume/replay machinery.
//! * The coordinator is only an observer after planting: if *it* dies,
//!   the workers keep running and complete the computation on their own.
//!
//! ## Service mode
//!
//! `ClusterBuilder::…​.service(true).spawn(…)` skips root planting and
//! instead writes a [`ppm_pm::ServiceHeader`]: the workers start idle
//! and pull jobs from the durable injector queue (see [`crate::service`])
//! for as long as the service accepts them, with live-shard stealing on
//! and cross-process checkpoint quiesces paced by the coordinator
//! (`checkpoint_every`).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppm_core::registry::frame_args;
use ppm_core::{capsule, DoneFlag, Machine, Next};
use ppm_obs::{MetricsRegistry, MetricsServer, Obs, TraceKind};
use ppm_pm::{Lease, LeaseState, PersistentMemory, Region, ShardMap, Word};

use crate::capsules::{Sched, SchedConfig};
use crate::checkpoint::{CheckpointCtl, CheckpointPolicy, QuiesceFollower};
use crate::driver::{
    crash_forensics, harvest_frontier, plant_seeds, run_attached_seats, scrub_scheduler_state,
    FallbackReason, ProcOutcome, ProcSeat, RunReport, SessionMode, SessionReport,
};
use crate::entry::{pack, EntryVal};
use crate::service::{InjectorQueue, ServiceConfig, ServiceHandle};

/// Default lease validity window for worker heartbeats.
pub const DEFAULT_LEASE_MS: u64 = 1500;

/// Multiplier on the lease window granted to a worker that has not yet
/// written its first heartbeat (process spawn + attach + session build).
/// Public so tests driving the protocol on a [`ppm_pm::VirtualClock`]
/// can compute exactly when a never-started shard's seed lease expires.
pub const STARTUP_LEASE_FACTOR: u64 = 10;

/// Words per shard in the in-memory report block region.
const REPORT_WORDS: usize = 8;

/// Builds shard `s`'s sub-computation: given the machine and the frame
/// handle of the shard's arrival continuation, register constructors,
/// build the subtree's root frame, and return its handle — the same
/// contract as [`crate::PComp`], parameterized by shard. Called for
/// *every* shard in *every* attaching process (construction determinism:
/// all processes must replay identical allocations), so builders must be
/// pure setup: WAR-free rewrites of identical values.
pub type ShardBuild = Arc<dyn Fn(&Machine, usize, Word) -> Word + Send + Sync>;

// ====================================================================
// Steal domain
// ====================================================================

/// One worker's view of the cluster for victim selection: its own
/// processor range, plus the set of sibling shards the liveness oracle
/// has declared dead (and therefore adoptable). Shared between the
/// worker's scheduler capsules and its lease-monitor thread.
#[derive(Debug)]
pub struct ShardDomain {
    map: ShardMap,
    shard: usize,
    /// Per-shard adoptable flags (set once, by the monitor, when the
    /// shard's lease expires or is tombstoned; never cleared — death is
    /// sticky, as in the model).
    adoptable: Vec<AtomicBool>,
    adopted_jobs: AtomicU64,
    adopted_locals: AtomicU64,
    blocked_adoptions: AtomicU64,
    /// Per-processor dedup for [`ShardDomain::note_blocked_adoption`].
    blocked_marked: Vec<AtomicBool>,
    /// Live-shard stealing: when set, victim selection spans *live*
    /// sibling shards too (service mode), not only dead ones.
    live_stealing: AtomicBool,
    live_steals: AtomicU64,
}

impl ShardDomain {
    /// A domain for `shard` of `map` with no dead siblings yet and
    /// live-shard stealing off (batch semantics).
    pub fn new(map: ShardMap, shard: usize) -> Arc<Self> {
        assert!(shard < map.shards, "shard {shard} out of range");
        Arc::new(ShardDomain {
            map,
            shard,
            adoptable: (0..map.shards).map(|_| AtomicBool::new(false)).collect(),
            adopted_jobs: AtomicU64::new(0),
            adopted_locals: AtomicU64::new(0),
            blocked_adoptions: AtomicU64::new(0),
            blocked_marked: (0..map.procs()).map(|_| AtomicBool::new(false)).collect(),
            live_stealing: AtomicBool::new(false),
            live_steals: AtomicU64::new(0),
        })
    }

    /// Turns live-shard stealing on or off. Service runs set it before
    /// driving any processor; batch runs leave it off, confining victim
    /// selection to the fault domain until a sibling dies.
    pub fn set_live_stealing(&self, on: bool) {
        self.live_stealing.store(on, Ordering::Release);
    }

    /// Whether victim selection currently spans live sibling shards.
    pub fn live_stealing(&self) -> bool {
        self.live_stealing.load(Ordering::Acquire)
    }

    /// Successful steals of `job` entries from *live* sibling shards
    /// (cross-process load balancing, not adoption).
    pub fn live_steals(&self) -> u64 {
        self.live_steals.load(Ordering::Relaxed)
    }

    pub(crate) fn note_live_steal(&self) {
        self.live_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// The cluster's shard geometry.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// This worker's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This worker's own processor range.
    pub fn own_procs(&self) -> std::ops::Range<usize> {
        self.map.procs_of(self.shard)
    }

    /// Whether `proc` belongs to another shard.
    pub fn is_remote(&self, proc: usize) -> bool {
        self.map.shard_of(proc) != self.shard
    }

    /// The shard owning processor `proc`.
    pub fn shard_of(&self, proc: usize) -> usize {
        self.map.shard_of(proc)
    }

    /// Declares sibling `shard` dead: its processors join the victim set.
    /// Idempotent; marking the own shard is ignored.
    pub fn mark_adoptable(&self, shard: usize) {
        if shard != self.shard {
            self.adoptable[shard].store(true, Ordering::Release);
        }
    }

    /// Whether sibling `shard` has been declared dead.
    pub fn is_adoptable(&self, shard: usize) -> bool {
        self.adoptable[shard].load(Ordering::Acquire)
    }

    /// The shards currently declared dead, as a bitmask (diagnostics and
    /// the worker's report block).
    pub fn adoptable_mask(&self) -> u64 {
        (0..self.map.shards)
            .filter(|s| self.is_adoptable(*s))
            .fold(0u64, |m, s| m | (1 << s))
    }

    /// Successful steals of `job` entries from dead siblings' deques.
    pub fn adopted_jobs(&self) -> u64 {
        self.adopted_jobs.load(Ordering::Relaxed)
    }

    /// Successful adoptions of dead siblings' running threads (local
    /// entries + restart pointers).
    pub fn adopted_locals(&self) -> u64 {
        self.adopted_locals.load(Ordering::Relaxed)
    }

    /// Refused adoptions: dead remote processors whose running thread's
    /// frozen restart pointer was not a rehydratable frame (counted once
    /// per processor, not per probing steal attempt).
    pub fn blocked_adoptions(&self) -> u64 {
        self.blocked_adoptions.load(Ordering::Relaxed)
    }

    /// Registers the domain's adoption counters and dead-sibling mask as
    /// scrape-time collector closures. Replace semantics: recovery
    /// rebuilds the scheduler (and with it the domain) over the same
    /// machine, and the scrape must follow the live instance.
    pub fn register_into(self: &Arc<Self>, reg: &MetricsRegistry) {
        let d = self.clone();
        reg.counter_fn(
            "ppm_adopted_jobs_total",
            "job entries stolen from dead siblings' deques",
            &[],
            move || d.adopted_jobs(),
        );
        let d = self.clone();
        reg.counter_fn(
            "ppm_adopted_locals_total",
            "running threads adopted from dead siblings via restart pointers",
            &[],
            move || d.adopted_locals(),
        );
        let d = self.clone();
        reg.counter_fn(
            "ppm_blocked_adoptions_total",
            "adoptions refused because the remote restart pointer was not a rehydratable frame",
            &[],
            move || d.blocked_adoptions(),
        );
        let d = self.clone();
        reg.gauge_fn(
            "ppm_shards_declared_dead_mask",
            "bitmask of sibling shards this worker's liveness oracle declared dead",
            &[],
            move || d.adoptable_mask() as f64,
        );
        let d = self.clone();
        reg.counter_fn(
            "ppm_live_steals_total",
            "job entries stolen from live sibling shards (service-mode load balancing)",
            &[],
            move || d.live_steals(),
        );
    }

    pub(crate) fn note_adopted_job(&self) {
        self.adopted_jobs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_adopted_local(&self) {
        self.adopted_locals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a refused adoption of `proc`'s thread. The refusing steal
    /// path re-probes the same frozen entry on every findWork spin, so
    /// the count is deduplicated per processor — the dead owner's words
    /// never change, one refusal is one lost-thread event.
    pub(crate) fn note_blocked_adoption(&self, proc: usize) {
        if !self.blocked_marked[proc].swap(true, Ordering::Relaxed) {
            self.blocked_adoptions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether sibling `shard`'s processors are currently in the victim
    /// set: declared dead (adoption), or any live sibling when
    /// live-shard stealing is on (service mode).
    fn in_victim_set(&self, shard: usize, live: bool) -> bool {
        shard != self.shard && (self.is_adoptable(shard) || live)
    }

    /// Victim selection over the domain: the own shard's other
    /// processors, plus every processor of every shard declared dead —
    /// plus every *live* sibling's processors when live-shard stealing
    /// is on. Allocation-free — this runs on every steal attempt of
    /// every spinning processor. Sound under concurrent
    /// `mark_adoptable`/`set_live_stealing`: both flags are sticky for
    /// the duration of a run, so a shard appearing between the count and
    /// the walk only widens the walk, and `idx` (bounded by the counted
    /// total) still lands on a valid candidate.
    pub(crate) fn pick_victim(&self, thief: usize, r: u64) -> Option<usize> {
        let own = self.own_procs();
        let own_candidates = own.len() - 1;
        let pps = self.map.procs_per_shard;
        let live = self.live_stealing();
        let mut total = own_candidates;
        for s in 0..self.map.shards {
            if self.in_victim_set(s, live) {
                total += pps;
            }
        }
        if total == 0 {
            return None;
        }
        let mut idx = r as usize % total;
        if idx < own_candidates {
            let v = own.start + idx;
            return Some(if v >= thief { v + 1 } else { v });
        }
        idx -= own_candidates;
        for s in 0..self.map.shards {
            if self.in_victim_set(s, live) {
                if idx < pps {
                    return Some(self.map.procs_of(s).start + idx);
                }
                idx -= pps;
            }
        }
        None
    }
}

// ====================================================================
// Cluster configuration
// ====================================================================

/// Coordinator-side configuration of a sharded run. The pieces every
/// attacher must agree on (shard count, deque slots, victim seed, lease
/// interval) are persisted in the machine file's cluster header, so
/// workers configure themselves from the file alone.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Machine shape — `pm.procs` is the *total* processor count, split
    /// evenly across shards.
    pub pm: ppm_pm::PmConfig,
    /// Number of worker processes (fault domains).
    pub shards: usize,
    /// Lease validity window in milliseconds.
    pub lease_ms: u64,
    /// Deque slots per processor.
    pub deque_slots: usize,
    /// Victim-selection seed.
    pub seed: u64,
    /// Victim-selection policy of every shard's steal loop. Persisted in
    /// the cluster header's seed word (top two bits), so attaching
    /// workers pick it up from the machine file alone.
    pub victim_strategy: crate::capsules::VictimStrategy,
    /// Per-processor pool words (`None` = machine default).
    pub pool_words: Option<usize>,
    /// Overall coordinator deadline: past it, remaining workers are
    /// killed and the session reports incomplete (callers then finish
    /// via [`recover`]).
    pub deadline: Duration,
    /// Service mode: a durable injector queue of this shape is installed
    /// in the machine file, root planting is skipped, and workers pull
    /// jobs continuously (see [`crate::service`]). `None` = batch run.
    pub service: Option<ServiceConfig>,
    /// Cross-process checkpoint cadence: when set, the coordinator
    /// periodically requests a cluster-wide quiesce (barrier in the
    /// superblock) and the elected performer shard runs the checkpoint.
    /// `None` = no cross-process checkpoints.
    pub checkpoint_every: Option<Duration>,
}

impl ClusterConfig {
    /// A config over a machine shape and shard count, with defaults for
    /// the rest.
    pub fn new(pm: ppm_pm::PmConfig, shards: usize) -> Self {
        ClusterConfig {
            pm,
            shards,
            lease_ms: DEFAULT_LEASE_MS,
            deque_slots: SchedConfig::default().deque_slots,
            seed: SchedConfig::default().seed,
            victim_strategy: crate::capsules::VictimStrategy::default(),
            pool_words: None,
            deadline: Duration::from_secs(300),
            service: None,
            checkpoint_every: None,
        }
    }

    /// Turns on service mode with the given injector-queue shape.
    pub fn with_service(mut self, service: ServiceConfig) -> Self {
        self.service = Some(service);
        self
    }

    /// Sets the cross-process checkpoint cadence.
    pub fn with_checkpoint_every(mut self, every: Duration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Sets the victim-selection policy.
    pub fn with_victim_strategy(mut self, v: crate::capsules::VictimStrategy) -> Self {
        self.victim_strategy = v;
        self
    }

    /// Sets the lease window.
    pub fn with_lease_ms(mut self, ms: u64) -> Self {
        self.lease_ms = ms;
        self
    }

    /// Sets the deque size.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.deque_slots = slots;
        self
    }

    /// Sets explicit per-processor pool sizing. Size for the shard's own
    /// work *plus* adoption headroom: a survivor may re-drive a dead
    /// sibling's frontier out of its own pools.
    pub fn with_pool_words(mut self, words: usize) -> Self {
        self.pool_words = Some(words);
        self
    }

    /// Sets the coordinator deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    fn header(&self) -> ppm_pm::ClusterHeader {
        ppm_pm::ClusterHeader {
            shards: self.shards as u64,
            lease_ms: self.lease_ms,
            deque_slots: self.deque_slots as u64,
            seed: self.victim_strategy.pack_into_seed(self.seed),
        }
    }
}

// ====================================================================
// Builder — the one entry point
// ====================================================================

/// Builds every flavor of multi-process session over one machine file —
/// the single entry point the old free functions ([`init`],
/// [`init_observed`], [`run_coordinator`], `Runtime::sharded`) now
/// deprecate into. Configure, then pick a terminal:
///
/// * [`ClusterBuilder::init`] — prepare the file, return nothing
///   (external supervisor launches the workers);
/// * [`ClusterBuilder::observe`] — prepare the file, return a
///   [`ClusterObserver`] (custom coordinators, fault harnesses);
/// * [`ClusterBuilder::run`] — batch: prepare, spawn workers, block to
///   completion, return the [`SessionReport`];
/// * [`ClusterBuilder::spawn`] — service: prepare with a durable
///   injector queue, spawn workers, return a live
///   [`crate::ServiceHandle`] to submit jobs against.
///
/// ```no_run
/// # use ppm_sched::cluster::{ClusterBuilder, ShardBuild};
/// # use std::sync::Arc;
/// # let build: ShardBuild = Arc::new(|_m, _s, arrive| arrive);
/// let report = ClusterBuilder::new("/tmp/run.ppm")
///     .machine(ppm_pm::PmConfig::parallel(8, 1 << 22))
///     .workers(4)
///     .lease_ms(500)
///     .run(&build, |shard| {
///         let mut cmd = std::process::Command::new(std::env::current_exe().unwrap());
///         cmd.arg("worker").arg(shard.to_string());
///         cmd
///     })?;
/// # std::io::Result::Ok(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    path: std::path::PathBuf,
    pm: Option<ppm_pm::PmConfig>,
    shards: usize,
    lease_ms: u64,
    deque_slots: usize,
    seed: u64,
    victim_strategy: crate::capsules::VictimStrategy,
    pool_words: Option<usize>,
    deadline: Duration,
    checkpoint_every: Option<Duration>,
    service: bool,
    service_config: ServiceConfig,
}

impl ClusterBuilder {
    /// A builder over the machine file at `path` with one worker and
    /// defaults everywhere else. The machine shape
    /// ([`ClusterBuilder::machine`]) has no default — every terminal
    /// requires it.
    pub fn new(path: impl AsRef<std::path::Path>) -> Self {
        ClusterBuilder {
            path: path.as_ref().to_path_buf(),
            pm: None,
            shards: 1,
            lease_ms: DEFAULT_LEASE_MS,
            deque_slots: SchedConfig::default().deque_slots,
            seed: SchedConfig::default().seed,
            victim_strategy: crate::capsules::VictimStrategy::default(),
            pool_words: None,
            deadline: Duration::from_secs(300),
            checkpoint_every: None,
            service: false,
            service_config: ServiceConfig::default(),
        }
    }

    /// Sets the machine shape (`pm.procs` is the *total* processor
    /// count, split evenly across workers). Required.
    pub fn machine(mut self, pm: ppm_pm::PmConfig) -> Self {
        self.pm = Some(pm);
        self
    }

    /// Sets the worker-process (fault-domain) count.
    pub fn workers(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the lease validity window in milliseconds.
    pub fn lease_ms(mut self, ms: u64) -> Self {
        self.lease_ms = ms;
        self
    }

    /// Sets the deque slots per processor.
    pub fn deque_slots(mut self, slots: usize) -> Self {
        self.deque_slots = slots;
        self
    }

    /// Sets the victim-selection seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the victim-selection policy of every shard's steal loop.
    pub fn victim_strategy(mut self, v: crate::capsules::VictimStrategy) -> Self {
        self.victim_strategy = v;
        self
    }

    /// Sets explicit per-processor pool sizing (see
    /// [`ClusterConfig::with_pool_words`]).
    pub fn pool_words(mut self, words: usize) -> Self {
        self.pool_words = Some(words);
        self
    }

    /// Sets the coordinator deadline of batch runs.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Paces coordinator-arbitrated cross-process checkpoints: every
    /// `every`, the coordinator requests a cluster-wide quiesce and the
    /// elected performer shard checkpoints the machine.
    pub fn checkpoint_every(mut self, every: Duration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Turns service mode on or off ([`ClusterBuilder::spawn`] implies
    /// it). A service file gets a durable injector queue instead of
    /// planted roots, and its workers steal from live siblings.
    pub fn service(mut self, on: bool) -> Self {
        self.service = on;
        self
    }

    /// Sets the injector-queue shape used when service mode is on.
    pub fn service_config(mut self, cfg: ServiceConfig) -> Self {
        self.service_config = cfg;
        self
    }

    /// The equivalent [`ClusterConfig`] (errors without a machine shape).
    fn config(&self) -> io::Result<ClusterConfig> {
        let pm = self.pm.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "ClusterBuilder needs a machine shape: call .machine(PmConfig)",
            )
        })?;
        let mut cfg = ClusterConfig::new(pm, self.shards);
        cfg.lease_ms = self.lease_ms;
        cfg.deque_slots = self.deque_slots;
        cfg.seed = self.seed;
        cfg.victim_strategy = self.victim_strategy;
        cfg.pool_words = self.pool_words;
        cfg.deadline = self.deadline;
        cfg.checkpoint_every = self.checkpoint_every;
        if self.service {
            cfg.service = Some(self.service_config);
        }
        Ok(cfg)
    }

    /// Creates and fully prepares the machine file — superblock, cluster
    /// header, session frames, planted sub-roots (or the service header
    /// and injector ring), seeded leases — without spawning anything.
    /// For deployments whose workers are launched by an external
    /// supervisor, and tests.
    #[cfg(unix)]
    pub fn init(&self, build: &ShardBuild) -> io::Result<()> {
        let (machine, _session) = init_machine(&self.path, &self.config()?, build)?;
        machine.flush()
    }

    /// [`ClusterBuilder::init`] returning an observer handle: a custom
    /// coordinator (own spawn, kill, or progress logic — e.g. a
    /// fault-injection harness) keeps it to watch the completion flag,
    /// tombstone reaped workers, and assemble the final
    /// [`ClusterSummary`].
    #[cfg(unix)]
    pub fn observe(&self, build: &ShardBuild) -> io::Result<ClusterObserver> {
        observe_impl(&self.path, &self.config()?, build)
    }

    /// Batch terminal: prepares the file, spawns one worker process per
    /// shard via `spawn_worker` (receives the shard index; the command
    /// must end up calling [`run_worker`] for it), observes to
    /// completion or deadline, and reports. See the old
    /// [`run_coordinator`] docs for the full protocol.
    #[cfg(unix)]
    pub fn run(
        &self,
        build: &ShardBuild,
        spawn_worker: impl FnMut(usize) -> std::process::Command,
    ) -> io::Result<SessionReport> {
        coordinate(&self.path, &self.config()?, build, spawn_worker)
    }

    /// Service terminal (implies [`ClusterBuilder::service`]): prepares
    /// the file with a durable injector queue, spawns the workers, and
    /// returns a live [`crate::ServiceHandle`] — submit jobs, await
    /// tickets, kill and heal workers, drain, shut down. With
    /// `PPM_METRICS_PORT` set, the handle also serves the aggregated
    /// scrape surface for the service's lifetime.
    #[cfg(unix)]
    pub fn spawn(
        &self,
        build: &ShardBuild,
        mut spawn_worker: impl FnMut(usize) -> std::process::Command,
    ) -> io::Result<ServiceHandle> {
        let mut cfg = self.config()?;
        if cfg.service.is_none() {
            cfg.service = Some(self.service_config);
        }
        let map = ShardMap::new(cfg.pm.procs, cfg.shards);
        let observer = observe_impl(&self.path, &cfg, build)?;
        let queue = observer
            .service_queue()
            .expect("service session always installs an injector queue");
        let metrics = Obs::metrics_port_from_env()
            .and_then(|p| serve_aggregate(observer.machine(), map, cfg.lease_ms, p));
        let mut children: Vec<Option<std::process::Child>> = Vec::with_capacity(map.shards);
        for s in 0..map.shards {
            match spawn_worker(s).spawn() {
                Ok(child) => children.push(Some(child)),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(e);
                }
            }
        }
        Ok(ServiceHandle::new(
            observer,
            queue,
            children,
            cfg.checkpoint_every,
            metrics,
        ))
    }
}

// ====================================================================
// Session construction (identical in every attaching process)
// ====================================================================

/// The deterministic construction every cluster process replays: done
/// flag, scheduler deques, shard-completion flags, report blocks, the
/// finale/check/arrive frames, and the per-shard sub-roots.
struct ClusterSession {
    done: DoneFlag,
    sched: Arc<Sched>,
    flags: Region,
    reports: Region,
    roots: Vec<Word>,
    /// The durable injector queue, in service mode.
    service: Option<Arc<InjectorQueue>>,
}

fn build_session(
    machine: &Machine,
    map: ShardMap,
    deque_slots: usize,
    seed: u64,
    domain: Option<Arc<ShardDomain>>,
    service: Option<ServiceConfig>,
    build: &ShardBuild,
) -> ClusterSession {
    let done = DoneFlag::new(machine);
    let cfg = SchedConfig {
        deque_slots,
        seed,
        // Every attacher decodes the same header seed word, so all
        // shards run the same policy.
        victim_strategy: crate::capsules::VictimStrategy::unpack_from_seed(seed),
        check_transitions: false,
        // In-process checkpoint policy stays off in a cluster: sharded
        // checkpoints go through the cross-process quiesce barrier
        // instead ([`crate::checkpoint::QuiesceFollower`]), driven by
        // the coordinator's `checkpoint_every` cadence.
        checkpoint: CheckpointPolicy::disabled(),
    };
    let sched = match domain {
        Some(d) => Sched::new_sharded(machine, done, &cfg, d),
        None => Sched::new(machine, done, &cfg),
    };
    let flags = machine.alloc_region(map.shards);
    let reports = machine.alloc_region(map.shards * REPORT_WORDS);
    // Service regions next (before any frame setup): every attacher
    // replays the same alloc_region sequence, so the ring/workspace land
    // at the same addresses in every process (construction determinism).
    let service = service.map(|cfg| {
        let ring = machine.alloc_region(ppm_pm::service::ring_words(cfg.slots));
        let workspace = machine.alloc_region(cfg.slots * cfg.job_words);
        (cfg, ring, workspace)
    });

    let registry = machine.registry();
    let arrive_id = registry.allocate("cluster/arrive");
    registry.register_traced(
        arrive_id,
        "cluster/arrive",
        |args| {
            let [flag, check] = frame_args("cluster/arrive", args)?;
            // A CAM capsule: the shard-completion flag only ever goes
            // 0 → 1, so re-execution (including duplicate execution by an
            // adopting survivor racing a falsely-declared-dead owner) is
            // benign.
            Ok(capsule("cluster/arrive", move |ctx| {
                ctx.pcam(flag as ppm_pm::Addr, 0, 1)?;
                Ok(Next::JumpHandle(check))
            }))
        },
        |args, out| {
            if let [flag, check] = args {
                out.extent(*flag as usize, 1);
                out.handle(*check);
                true
            } else {
                false
            }
        },
    );
    let check_id = registry.allocate("cluster/check");
    registry.register_traced(
        check_id,
        "cluster/check",
        |args| {
            let [base, n, finale] = frame_args("cluster/check", args)?;
            // Racy reads of monotone flags: if every shard has arrived,
            // jump to the finale (itself a racy 0 → 1 write — duplicate
            // finishers are idempotent); otherwise this thread is done.
            Ok(capsule("cluster/check", move |ctx| {
                for i in 0..n as usize {
                    if ctx.pread(base as ppm_pm::Addr + i)? == 0 {
                        return Ok(Next::End);
                    }
                }
                Ok(Next::JumpHandle(finale))
            }))
        },
        |args, out| {
            if let [base, n, finale] = args {
                out.extent(*base as usize, *n as usize);
                out.handle(*finale);
                true
            } else {
                false
            }
        },
    );

    // Injector capsules next — still before any frame setup, and in the
    // same registry order in every attaching process.
    let queue = service.map(|(cfg, ring, workspace)| {
        let q = InjectorQueue::install(machine, ring, workspace, cfg);
        sched.set_injector(q.clone());
        q
    });

    let finale = machine.setup_frame(ppm_core::CORE_ID_FINALE, &[done.addr() as Word]);
    let check = machine.setup_frame(check_id, &[flags.start as Word, map.shards as Word, finale]);
    let roots = (0..map.shards)
        .map(|s| {
            let arrive = machine.setup_frame(arrive_id, &[flags.at(s) as Word, check]);
            build(machine, s, arrive)
        })
        .collect();

    ClusterSession {
        done,
        sched,
        flags,
        reports,
        roots,
        service: queue,
    }
}

/// Plants shard `s`'s sub-root as the initial `job` entry of the shard's
/// first deque — the same planted shape recovery uses, so every
/// processor's ordinary `findWork` picks it up.
fn plant_roots(machine: &Machine, session: &ClusterSession, map: ShardMap) {
    for (s, root) in session.roots.iter().enumerate() {
        let p = map.procs_of(s).start;
        let d = session.sched.deques()[p];
        machine
            .mem()
            .store(d.entry(0), pack(1, EntryVal::Job { handle: *root }));
        machine.mem().store(d.bot, 1);
        machine.mem().store(d.top, 0);
    }
}

// ====================================================================
// Reports
// ====================================================================

/// One shard's outcome, read from its persistent report block and lease.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The worker wrote its running-state marker (it attached and built
    /// the session).
    pub started: bool,
    /// The worker wrote its exit marker (it left the driver loop).
    pub exited: bool,
    /// The global completion flag was set when the worker exited.
    pub saw_completion: bool,
    /// The shard's *subtree* has arrived (its completion flag is set) —
    /// true for a dead shard exactly when a survivor finished the
    /// adopted work.
    pub subtree_complete: bool,
    /// Jobs this worker stole from dead siblings' deques.
    pub adopted_jobs: u64,
    /// Running threads this worker adopted from dead siblings.
    pub adopted_locals: u64,
    /// Adoptions this worker refused (unresumable remote restart
    /// pointer).
    pub blocked_adoptions: u64,
    /// Bitmask of shards this worker declared dead.
    pub declared_dead_mask: u64,
    /// Model-level hard faults among the worker's own processors.
    pub dead_procs: u64,
    /// Epoch-milliseconds horizon of the shard's last accepted heartbeat
    /// (the deadline of its last `Alive` renewal, preserved through the
    /// coordinator's tombstone). `None` when the worker never wrote a
    /// heartbeat — a worker tombstoned before its first renewal still
    /// gets a report row here (counters zeroed, `started: false`)
    /// instead of the shard being omitted from the summary.
    pub last_seen: Option<u64>,
    /// The shard's lease as last read (None: never readable).
    pub lease: Option<Lease>,
}

/// The cluster-wide outcome carried in [`SessionReport::cluster`].
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Shard count.
    pub shards: usize,
    /// Processors per shard.
    pub procs_per_shard: usize,
    /// Which role produced this summary.
    pub role: ClusterRole,
    /// Per-shard outcomes.
    pub shard_reports: Vec<ShardReport>,
    /// Shards that died (tombstoned, expired, or exited without seeing
    /// completion).
    pub dead_shards: Vec<usize>,
}

/// Which cluster participant produced a [`ClusterSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterRole {
    /// The coordinator process (created the file, spawned the workers).
    Coordinator,
    /// Worker process serving the given shard.
    Worker(usize),
    /// A post-mortem single-process recovery of a cluster file.
    Recovery,
}

impl ClusterSummary {
    /// Total frontier entries adopted from dead shards, across workers.
    pub fn adopted(&self) -> u64 {
        self.shard_reports
            .iter()
            .map(|r| r.adopted_jobs + r.adopted_locals)
            .sum()
    }

    /// Total refused adoptions across workers.
    pub fn blocked(&self) -> u64 {
        self.shard_reports.iter().map(|r| r.blocked_adoptions).sum()
    }
}

const REPORT_STATE_RUNNING: Word = 1;
const REPORT_STATE_EXITED: Word = 2;

fn write_report(
    machine: &Machine,
    reports: Region,
    shard: usize,
    state: Word,
    saw_completion: bool,
    domain: &ShardDomain,
    dead_procs: u64,
) {
    let base = reports.at(shard * REPORT_WORDS);
    let mem = machine.mem();
    mem.store(base + 1, saw_completion as Word);
    mem.store(base + 2, domain.adopted_jobs());
    mem.store(base + 3, domain.adopted_locals());
    mem.store(base + 4, domain.blocked_adoptions());
    mem.store(base + 5, domain.adoptable_mask());
    mem.store(base + 6, dead_procs);
    // State word last: a report is only readable once its fields are.
    mem.store(base, state);
}

fn read_reports(
    machine: &Machine,
    reports: Region,
    flags: Region,
    map: ShardMap,
) -> Vec<ShardReport> {
    let mem = machine.mem();
    (0..map.shards)
        .map(|s| {
            let base = reports.at(s * REPORT_WORDS);
            let state = mem.load(base);
            let lease = machine.mem().backend().read_lease(s);
            // Worker heartbeats count from 1; the coordinator's seed
            // lease is seq 0 and a bare tombstone is seq u64::MAX, so
            // any other seq proves the worker renewed at least once.
            let last_seen =
                lease.and_then(|l| (l.seq >= 1 && l.seq < u64::MAX).then_some(l.deadline_ms));
            ShardReport {
                shard: s,
                started: state >= REPORT_STATE_RUNNING,
                exited: state >= REPORT_STATE_EXITED,
                saw_completion: mem.load(base + 1) != 0,
                subtree_complete: mem.load(flags.at(s)) != 0,
                adopted_jobs: mem.load(base + 2),
                adopted_locals: mem.load(base + 3),
                blocked_adoptions: mem.load(base + 4),
                declared_dead_mask: mem.load(base + 5),
                dead_procs: mem.load(base + 6),
                last_seen,
                lease,
            }
        })
        .collect()
}

/// Tombstones shard `s`'s lease, preserving the sequence number and
/// deadline of a prior accepted heartbeat so the shard's
/// [`ShardReport::last_seen`] survives the reap. A worker that never
/// heartbeated (seed lease `seq == 0`, or no readable lease) gets the
/// bare tombstone and reports `last_seen: None`.
fn tombstone_lease(machine: &Machine, shard: usize) {
    let backend = machine.mem().backend();
    let (seq, deadline_ms) = match backend.read_lease(shard) {
        Some(l) if l.state == LeaseState::Alive && l.seq >= 1 => (l.seq, l.deadline_ms),
        _ => (u64::MAX, 0),
    };
    let _ = backend.write_lease(
        shard,
        &Lease {
            state: LeaseState::Dead,
            seq,
            deadline_ms,
        },
    );
}

// ====================================================================
// Aggregated scrape surface
// ====================================================================

/// Renders live lease telemetry for every shard, read from the shared
/// superblock at scrape time: `ppm_lease_up` (1 while the lease is alive
/// and unexpired), `ppm_lease_seq` (renewal counter), and
/// `ppm_lease_age_ms` (milliseconds since the last accepted renewal —
/// which keeps growing after the worker dies, which is the point).
fn lease_metrics_text(mem: &PersistentMemory, shards: usize, lease_ms: u64) -> String {
    use std::fmt::Write as _;
    let now = ppm_pm::now_ms();
    let leases: Vec<Option<Lease>> = (0..shards).map(|s| mem.backend().read_lease(s)).collect();
    let mut out = String::new();
    out.push_str("# HELP ppm_lease_up whether the shard's lease is alive and unexpired\n");
    out.push_str("# TYPE ppm_lease_up gauge\n");
    for (s, l) in leases.iter().enumerate() {
        let up = matches!(l, Some(l) if l.state == LeaseState::Alive && !l.is_dead(now));
        let _ = writeln!(out, "ppm_lease_up{{shard=\"{s}\"}} {}", up as u32);
    }
    out.push_str("# HELP ppm_lease_seq lease renewal counter of the shard\n");
    out.push_str("# TYPE ppm_lease_seq gauge\n");
    for (s, l) in leases.iter().enumerate() {
        if let Some(l) = l {
            if l.seq < u64::MAX {
                let _ = writeln!(out, "ppm_lease_seq{{shard=\"{s}\"}} {}", l.seq);
            }
        }
    }
    out.push_str(
        "# HELP ppm_lease_age_ms milliseconds since the shard's last accepted lease renewal\n",
    );
    out.push_str("# TYPE ppm_lease_age_ms gauge\n");
    for (s, l) in leases.iter().enumerate() {
        if let Some(l) = l {
            // Heartbeats only (seed and bare tombstones carry no renewal
            // time); a tombstone that preserved its heartbeat still ages.
            if l.seq >= 1 && l.seq < u64::MAX {
                let renewed = l.deadline_ms.saturating_sub(lease_ms);
                let _ = writeln!(
                    out,
                    "ppm_lease_age_ms{{shard=\"{s}\"}} {}",
                    now.saturating_sub(renewed)
                );
            }
        }
    }
    out
}

/// Starts the coordinator's aggregated Prometheus endpoint on `port`.
/// Each scrape merges (a) the coordinator machine's own registry, (b)
/// live lease telemetry from the shared superblock, and (c) every
/// worker's scrape, fetched from `port + 1 + shard` at scrape time and
/// labeled `shard="<s>"`. A worker that stops answering keeps
/// contributing its **last-seen** scrape, so a dead shard's counters
/// stay visible (its lease age still growing) until adoption completes
/// and the run ends.
fn serve_aggregate(
    machine: &Machine,
    map: ShardMap,
    lease_ms: u64,
    port: u16,
) -> Option<MetricsServer> {
    let reg = machine.obs().registry().clone();
    let mem = machine.mem().clone();
    let cache: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(vec![None; map.shards]));
    let body: ppm_obs::BodyFn = Arc::new(move || {
        let mut parts = vec![reg.render(), lease_metrics_text(&mem, map.shards, lease_ms)];
        let mut cache = cache.lock().unwrap();
        for (s, slot) in cache.iter_mut().enumerate() {
            let worker_port = match port.checked_add(1 + s as u16) {
                Some(p) => p,
                None => continue,
            };
            if let Ok(text) = ppm_obs::http_get(
                (std::net::Ipv4Addr::LOCALHOST, worker_port),
                "/metrics",
                Duration::from_millis(200),
            ) {
                *slot = Some(text);
            }
            if let Some(text) = slot.as_deref() {
                parts.push(ppm_obs::inject_label(text, "shard", &s.to_string()));
            }
        }
        ppm_obs::merge_scrapes(&parts)
    });
    MetricsServer::start(port, body).ok()
}

// ====================================================================
// Worker
// ====================================================================

/// Serves one shard of a sharded run: attaches to the machine file
/// (shared run epoch, no superblock rewrite), replays the deterministic
/// session construction, then drives the shard's processors while a
/// monitor thread renews this shard's lease and folds sibling deaths
/// into the liveness oracle. Returns when the global completion flag is
/// set (or every own processor hard-faulted).
///
/// The worker configures itself entirely from the file: machine shape
/// from the superblock, cluster geometry from the cluster header. `build`
/// must be the same [`ShardBuild`] the coordinator used.
#[cfg(unix)]
pub fn run_worker(
    path: impl AsRef<std::path::Path>,
    shard: usize,
    build: &ShardBuild,
) -> io::Result<SessionReport> {
    run_worker_with_clock(path, shard, build, ppm_pm::system_clock())
}

/// [`run_worker`] with an explicit [`ppm_pm::SharedClock`] driving every
/// lease-expiry judgment the worker makes (its own renewals and its
/// verdicts on sibling shards). Production uses the system clock; the
/// deterministic tests hand every worker one [`ppm_pm::VirtualClock`]
/// and advance it explicitly, so lease-expiry adoption is exercised
/// without racing real milliseconds.
#[cfg(unix)]
pub fn run_worker_with_clock(
    path: impl AsRef<std::path::Path>,
    shard: usize,
    build: &ShardBuild,
    clock: ppm_pm::SharedClock,
) -> io::Result<SessionReport> {
    let machine = Machine::attach(
        &path,
        ppm_pm::FaultConfig::none(),
        ppm_pm::ValidateMode::Strict,
    )?;
    let header = machine
        .mem()
        .backend()
        .read_cluster_header()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "machine file has no cluster header (not a sharded run)",
            )
        })?;
    let map = ShardMap::new(machine.procs(), header.shards as usize);
    if shard >= map.shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("shard {shard} out of range ({} shards)", map.shards),
        ));
    }
    let domain = ShardDomain::new(map, shard);
    // First heartbeat *before* any session work (seq 1; the monitor
    // continues from 2). Unconditional publication closes a service-mode
    // observability race: a worker killed between attach and its first
    // queue pull would otherwise still be on the coordinator's seed
    // lease, and its tombstone would report `last_seen: None` as if the
    // process never came up.
    let _ = machine
        .mem()
        .backend()
        .write_lease(shard, &Lease::alive_at(1, header.lease_ms, clock.now_ms()));
    let service_cfg = machine
        .mem()
        .backend()
        .read_service_header()
        .map(|h| ServiceConfig {
            slots: h.slots as usize,
            job_words: h.job_words as usize,
        });
    let session = build_session(
        &machine,
        map,
        header.deque_slots as usize,
        header.seed,
        Some(domain.clone()),
        service_cfg,
        build,
    );
    if let Some(q) = &session.service {
        // Service mode: victim selection spans live siblings from the
        // start, and the replayed construction must have landed the ring
        // where the durable header says it is.
        debug_assert_eq!(
            q.header(ppm_pm::ServiceState::Accepting).ring_base,
            machine
                .mem()
                .backend()
                .read_service_header()
                .map(|h| h.ring_base)
                .unwrap_or(0),
            "service ring landed at a different address than the header records"
        );
        domain.set_live_stealing(true);
    }
    write_report(
        &machine,
        session.reports,
        shard,
        REPORT_STATE_RUNNING,
        false,
        &domain,
        0,
    );
    let obs = machine.obs().clone();
    // Causal span sidecar: each worker streams to its own
    // `<trace>.shard<k>.spans.jsonl` with origin `shard + 1` baked into
    // its span ids, so a capsule stolen or adopted into this shard still
    // links back to its forker's span in another shard's file.
    if let Some(base) = Obs::trace_file_from_env() {
        let spath = ppm_obs::SpanSink::shard_path_for(&base, shard);
        if let Ok(sink) = ppm_obs::SpanSink::create(
            &spath,
            shard as u32 + 1,
            machine.epoch(),
            machine.epoch() >= 2,
        ) {
            obs.set_span_sink(std::sync::Arc::new(sink));
        }
    }
    obs.tracer()
        .record_with(TraceKind::RunStart, Some(shard as u32), None, || {
            format!("worker attached; own procs {:?}", domain.own_procs())
        });
    // Worker scrape endpoint on `PPM_METRICS_PORT + 1 + shard`; the
    // coordinator aggregates these under `shard` labels. Held to the end
    // of the session so a scraper can watch the shard's whole life.
    let _metrics = Obs::metrics_port_from_env()
        .and_then(|p| p.checked_add(1 + shard as u16))
        .and_then(|p| obs.serve(p).ok());

    let stop = AtomicBool::new(false);
    let run = std::thread::scope(|scope| {
        let monitor = {
            let machine = &machine;
            let domain = domain.clone();
            let stop = &stop;
            let clock = clock.clone();
            scope.spawn(move || lease_monitor_loop(machine, &domain, header.lease_ms, stop, clock))
        };
        let seats: Vec<ProcSeat> = domain
            .own_procs()
            .map(|proc| ProcSeat {
                proc,
                first: session.sched.find_work(),
                cursor: 0,
            })
            .collect();
        // Workers always carry the cross-process quiesce follower: it is
        // inert until a coordinator writes a request word, so batch runs
        // pay only the periodic probe.
        let ctl = CheckpointCtl::new_for_cluster(
            &machine,
            session.sched.clone(),
            CheckpointPolicy::disabled(),
            seats.len(),
            QuiesceFollower::new(shard, map.shards, header.lease_ms),
        );
        let run = run_attached_seats(&machine, &session.sched, seats, session.done, &ctl);
        stop.store(true, Ordering::Release);
        monitor.join().expect("lease monitor panicked");
        run
    });

    let completed = session.done.is_set(machine.mem());
    write_report(
        &machine,
        session.reports,
        shard,
        REPORT_STATE_EXITED,
        completed,
        &domain,
        run.dead_procs() as u64,
    );
    // Final lease: Done on a clean halt (siblings must not adopt a
    // completed shard), a self-tombstone when our own processors all
    // hard-faulted with the run unfinished (siblings should adopt *now*
    // rather than wait out the lease).
    let final_lease = if completed {
        Lease {
            state: LeaseState::Done,
            seq: u64::MAX,
            deadline_ms: 0,
        }
    } else {
        Lease {
            state: LeaseState::Dead,
            seq: u64::MAX,
            deadline_ms: 0,
        }
    };
    let _ = machine.mem().backend().write_lease(shard, &final_lease);
    machine.flush()?;
    obs.tracer().record(
        TraceKind::RunEnd,
        Some(shard as u32),
        None,
        if completed {
            "global completion flag set"
        } else {
            "exiting incomplete (own processors dead)"
        },
    );
    if let Some(base) = Obs::trace_file_from_env() {
        let _ = obs
            .tracer()
            .flush_jsonl(ppm_obs::shard_trace_path(&base, shard));
    }

    let summary = ClusterSummary {
        shards: map.shards,
        procs_per_shard: map.procs_per_shard,
        role: ClusterRole::Worker(shard),
        shard_reports: read_reports(&machine, session.reports, session.flags, map),
        dead_shards: (0..map.shards)
            .filter(|s| domain.is_adoptable(*s))
            .collect(),
    };
    Ok(SessionReport {
        epoch: machine.epoch(),
        mode: SessionMode::FreshRun,
        found_jobs: 0,
        found_locals: 0,
        found_taken: 0,
        live_restart_pointers: 0,
        resumed: 0,
        fallback_reason: None,
        checkpoint_resume: None,
        cluster: Some(summary),
        trace: Some(obs.tracer().summary()),
        run: Some(run),
    })
}

/// The worker's combined heartbeat + sibling monitor: renews this
/// shard's lease and folds dead siblings into the liveness oracle and
/// the steal domain. Runs until `stop`.
fn lease_monitor_loop(
    machine: &Machine,
    domain: &Arc<ShardDomain>,
    lease_ms: u64,
    stop: &AtomicBool,
    clock: ppm_pm::SharedClock,
) {
    let backend = machine.mem().backend();
    let tick = Duration::from_millis((lease_ms / 4).max(10));
    // Seq 1 was the worker's unconditional pre-session heartbeat.
    let mut seq = 2u64;
    while !stop.load(Ordering::Acquire) {
        let _ = backend.write_lease(
            domain.shard(),
            &Lease::alive_at(seq, lease_ms, clock.now_ms()),
        );
        seq += 1;
        let now = clock.now_ms();
        for s in 0..domain.map().shards {
            if s == domain.shard() || domain.is_adoptable(s) {
                continue;
            }
            // A torn read (concurrent rewrite) keeps the previous view;
            // the next tick sees a consistent record.
            if let Some(lease) = backend.read_lease(s) {
                if lease.is_dead(now) {
                    // The oracle's verdict: fold the dead shard into the
                    // model's isLive and widen the victim set. The Figure
                    // 3 protocol takes it from here.
                    for p in domain.map().procs_of(s) {
                        machine.liveness().mark_dead(p);
                    }
                    domain.mark_adoptable(s);
                    machine
                        .obs()
                        .tracer()
                        .record_with(TraceKind::ShardDead, Some(s as u32), None, || {
                            format!(
                                "shard {s} declared dead by shard {} (lease {:?}); procs {:?} adoptable",
                                domain.shard(),
                                lease.state,
                                domain.map().procs_of(s)
                            )
                        });
                }
            }
        }
        std::thread::sleep(tick);
    }
}

// ====================================================================
// Coordinator
// ====================================================================

/// Creates and fully prepares a sharded machine file — superblock,
/// cluster header, session frames, planted sub-roots, seeded leases —
/// without spawning or monitoring anything. [`run_coordinator`] builds
/// on this; it is public for coordinator-less deployments (workers
/// launched by an external supervisor) and tests.
#[cfg(unix)]
#[deprecated(note = "use ClusterBuilder::new(path).machine(pm).workers(n)….init(&build)")]
pub fn init(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
) -> io::Result<()> {
    let (machine, _session) = init_machine(path, cfg, build)?;
    machine.flush()
}

/// [`init`] returning an observer handle: a custom coordinator (one that
/// wants its own spawn, kill, or progress logic — e.g. a fault-injection
/// harness) keeps this to watch the completion flag, read progress
/// through the shared mapping, tombstone the leases of workers whose
/// deaths it learns about out-of-band, and assemble the final
/// [`ClusterSummary`].
#[cfg(unix)]
#[deprecated(note = "use ClusterBuilder::new(path).machine(pm).workers(n)….observe(&build)")]
pub fn init_observed(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
) -> io::Result<ClusterObserver> {
    observe_impl(path, cfg, build)
}

#[cfg(unix)]
fn observe_impl(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
) -> io::Result<ClusterObserver> {
    let map = ShardMap::new(cfg.pm.procs, cfg.shards);
    let (machine, session) = init_machine(path, cfg, build)?;
    Ok(ClusterObserver {
        machine,
        session,
        map,
        lease_ms: cfg.lease_ms,
    })
}

/// A coordinator's handle on a running sharded machine: oracle reads of
/// the shared state (never a driver of any processor).
pub struct ClusterObserver {
    machine: Machine,
    session: ClusterSession,
    map: ShardMap,
    lease_ms: u64,
}

impl ClusterObserver {
    /// The observing machine attachment (progress reads, region oracle).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Whether the global completion flag is set.
    pub fn is_done(&self) -> bool {
        self.session.done.is_set(self.machine.mem())
    }

    /// Shard `s`'s current lease.
    pub fn lease(&self, shard: usize) -> Option<Lease> {
        self.machine.mem().backend().read_lease(shard)
    }

    /// The cluster's shard geometry.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Sets the global completion flag (service shutdown: workers notice
    /// and exit their driver loops).
    pub(crate) fn set_done(&self) {
        self.machine.mem().store(self.session.done.addr(), 1);
        let _ = self.machine.flush();
    }

    /// The injector queue, when the observed file is a service run
    /// (`None` for batch files). This is the submit surface for
    /// coordinator-less deployments: an external supervisor that
    /// prepared the file with [`ClusterBuilder::observe`] publishes jobs
    /// through it while separately launched [`run_worker`] processes
    /// pull them.
    pub fn service_queue(&self) -> Option<Arc<InjectorQueue>> {
        self.session.service.clone()
    }

    /// Tombstones shard `s`'s lease — the coordinator's reap step: call
    /// when the worker's death is known out-of-band (exit status), so
    /// survivors adopt immediately instead of waiting out the expiry.
    /// The worker's last heartbeat (if any) is preserved in the
    /// tombstone, so [`ShardReport::last_seen`] survives the reap.
    pub fn tombstone(&self, shard: usize) {
        tombstone_lease(&self.machine, shard);
        self.machine.obs().tracer().record_with(
            TraceKind::ShardDead,
            Some(shard as u32),
            None,
            || format!("coordinator tombstoned shard {shard}"),
        );
    }

    /// Starts the aggregated Prometheus scrape endpoint on `port` (see
    /// [`run_coordinator`]'s `PPM_METRICS_PORT` handling): worker
    /// scrapes are fetched from `port + 1 + shard` and labeled, lease
    /// telemetry is read live from the shared superblock, and a dead
    /// worker keeps contributing its last-seen series. `None` when the
    /// port cannot be bound.
    pub fn serve_metrics(&self, port: u16) -> Option<MetricsServer> {
        serve_aggregate(&self.machine, self.map, self.lease_ms, port)
    }

    /// The cluster outcome as currently persisted. Dead shards are
    /// judged exactly like the workers' monitors judge them — tombstone
    /// *or* lease expiry — so a coordinator-less deployment that never
    /// tombstones still reports expiry-detected deaths; a worker that
    /// exited without seeing completion (own processors all
    /// hard-faulted) also counts.
    pub fn summary(&self) -> ClusterSummary {
        let shard_reports = read_reports(
            &self.machine,
            self.session.reports,
            self.session.flags,
            self.map,
        );
        let now = ppm_pm::now_ms();
        let dead_shards = shard_reports
            .iter()
            .filter(|r| {
                r.lease.map(|l| l.is_dead(now)).unwrap_or(false)
                    || (r.started && r.exited && !r.saw_completion)
            })
            .map(|r| r.shard)
            .collect();
        ClusterSummary {
            shards: self.map.shards,
            procs_per_shard: self.map.procs_per_shard,
            role: ClusterRole::Coordinator,
            shard_reports,
            dead_shards,
        }
    }

    /// Flushes, and records a clean shutdown when the run completed.
    /// With `PPM_TRACE_FILE` set, also flushes the coordinator's event
    /// ring and writes the `<trace>.manifest` naming every trace
    /// artifact of the run (coordinator + per-shard families) for
    /// `ppm-trace`.
    pub fn finish(&self) -> io::Result<()> {
        self.machine.flush()?;
        if self.is_done() {
            self.machine.mark_clean()?;
        }
        if let Some(path) = Obs::trace_file_from_env() {
            let _ = self.machine.obs().tracer().flush_jsonl(&path);
            write_trace_manifest(&path, self.map.shards);
        }
        Ok(())
    }
}

#[cfg(unix)]
fn init_machine(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
) -> io::Result<(Machine, ClusterSession)> {
    let map = ShardMap::new(cfg.pm.procs, cfg.shards);
    let machine = match cfg.pool_words {
        Some(w) => Machine::create_durable_with_pool_words(cfg.pm.clone(), w, &path)?,
        None => Machine::create_durable(cfg.pm.clone(), &path)?,
    };
    if !machine
        .mem()
        .backend()
        .write_cluster_header(&cfg.header())?
    {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "backend cannot store a cluster header",
        ));
    }
    let session = build_session(
        &machine,
        map,
        cfg.deque_slots,
        cfg.seed,
        None,
        cfg.service,
        build,
    );
    match &session.service {
        // Service mode: no planted roots — workers start idle and pull
        // from the injector. The durable header (state `Accepting`) is
        // what tells every attacher this is a service file.
        Some(q) => {
            if !machine
                .mem()
                .backend()
                .write_service_header(&q.header(ppm_pm::ServiceState::Accepting))?
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "backend cannot store a service header",
                ));
            }
        }
        None => plant_roots(&machine, &session, map),
    }
    for s in 0..map.shards {
        machine
            .mem()
            .backend()
            .write_lease(s, &Lease::alive(0, cfg.lease_ms * STARTUP_LEASE_FACTOR))?;
    }
    // Everything a worker needs is durable before any worker exists.
    machine.flush()?;
    Ok((machine, session))
}

/// SIGKILLs and reaps every still-tracked child.
#[cfg(unix)]
fn kill_all(children: &mut [Option<std::process::Child>]) {
    for slot in children.iter_mut() {
        if let Some(child) = slot {
            let _ = child.kill();
            let _ = child.wait();
            *slot = None;
        }
    }
}

/// Coordinator-side quiesce pacing: raises the superblock request word
/// when `every` has elapsed and the previous round released (or timed
/// out — a performer that died mid-round must not wedge the cadence
/// forever). The performer is the lowest shard holding a live, unexpired
/// lease; every live shard acks, only the performer checkpoints.
#[cfg(unix)]
fn request_quiesce_if_due(
    machine: &Machine,
    map: ShardMap,
    every: Duration,
    seq: &mut u64,
    last: &mut Instant,
) {
    if last.elapsed() < every {
        return;
    }
    let backend = machine.mem().backend();
    let released = backend.read_quiesce_word(ppm_pm::service::QUIESCE_REL_OFFSET) >= *seq;
    if !released && last.elapsed() < every.saturating_mul(3) {
        return;
    }
    let now = ppm_pm::now_ms();
    let performer = (0..map.shards).find(|s| {
        matches!(backend.read_lease(*s),
                 Some(l) if l.state == LeaseState::Alive && !l.is_dead(now))
    });
    let Some(performer) = performer else {
        *last = Instant::now();
        return;
    };
    *seq += 1;
    backend.write_quiesce_word(
        ppm_pm::service::QUIESCE_REQ_OFFSET,
        ppm_pm::service::pack_quiesce_req(*seq, performer),
    );
    *last = Instant::now();
    let requested = *seq;
    machine
        .obs()
        .tracer()
        .record_with(TraceKind::Checkpoint, None, None, || {
            format!("cluster quiesce {requested} requested (performer shard {performer})")
        });
}

/// Creates a sharded run and drives it to completion: prepares the
/// machine file via [`init`]'s path (superblock, cluster header, session
/// frames, one planted sub-root per shard, seeded leases), spawns the
/// `N` worker processes via `spawn_worker` (which receives the shard
/// index and must return a command that ends up calling [`run_worker`]
/// for it — typically the current executable with a `worker` argument),
/// and then *observes*: reaping worker exits (tombstoning the leases of
/// the dead so survivors adopt immediately), watching the completion
/// flag, and enforcing the deadline.
///
/// The returned [`SessionReport`] carries a [`ClusterSummary`]; its
/// `run.completed` reflects the persisted completion flag. On an
/// incomplete outcome (all workers dead, or deadline) the machine file is
/// left crashed-in-run; [`recover`] finishes the computation
/// single-process.
#[cfg(unix)]
#[deprecated(note = "use ClusterBuilder::new(path).machine(pm).workers(n)….run(&build, spawn)")]
pub fn run_coordinator(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
    spawn_worker: impl FnMut(usize) -> std::process::Command,
) -> io::Result<SessionReport> {
    coordinate(path, cfg, build, spawn_worker)
}

#[cfg(unix)]
fn coordinate(
    path: impl AsRef<std::path::Path>,
    cfg: &ClusterConfig,
    build: &ShardBuild,
    mut spawn_worker: impl FnMut(usize) -> std::process::Command,
) -> io::Result<SessionReport> {
    let start = Instant::now();
    let map = ShardMap::new(cfg.pm.procs, cfg.shards);
    let (machine, session) = init_machine(path, cfg, build)?;
    let obs = machine.obs().clone();
    obs.tracer()
        .record_with(TraceKind::RunStart, None, None, || {
            format!(
                "coordinator: {} shards x {} procs",
                map.shards, map.procs_per_shard
            )
        });
    // Aggregated scrape surface (workers serve `port + 1 + shard`).
    let _metrics =
        Obs::metrics_port_from_env().and_then(|p| serve_aggregate(&machine, map, cfg.lease_ms, p));

    // Spawn, killing the partial fleet if any spawn fails: leaking live
    // workers past an Err would leave them running against a file the
    // caller may immediately hand to `recover`, which scrubs deques
    // under them.
    let mut children: Vec<Option<std::process::Child>> = Vec::with_capacity(map.shards);
    for s in 0..map.shards {
        match spawn_worker(s).spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                kill_all(&mut children);
                return Err(e);
            }
        }
    }

    let poll = Duration::from_millis(20);
    let mut quiesce_seq = 0u64;
    let mut last_quiesce = Instant::now();
    let deadline_hit = loop {
        // Reap exits; a worker that exited without completing the run is
        // dead — tombstone its lease so survivors adopt immediately
        // instead of waiting out the expiry. A try_wait error counts as
        // an exit (the child is unobservable; the lease expiry would
        // catch it anyway).
        for (s, slot) in children.iter_mut().enumerate() {
            if let Some(child) = slot {
                if child.try_wait().map(|st| st.is_some()).unwrap_or(true) {
                    *slot = None;
                    let lease = machine.mem().backend().read_lease(s);
                    let done_lease = matches!(
                        lease,
                        Some(Lease {
                            state: LeaseState::Done,
                            ..
                        })
                    );
                    if !done_lease {
                        tombstone_lease(&machine, s);
                        obs.tracer().record_with(
                            TraceKind::ShardDead,
                            Some(s as u32),
                            None,
                            || format!("worker process for shard {s} exited before completion"),
                        );
                    }
                }
            }
        }
        if let Some(every) = cfg.checkpoint_every {
            request_quiesce_if_due(&machine, map, every, &mut quiesce_seq, &mut last_quiesce);
        }
        let done = session.done.is_set(machine.mem());
        let live = children.iter().filter(|c| c.is_some()).count();
        if done && live == 0 {
            break false;
        }
        if !done && live == 0 {
            break false; // every fault domain died; caller recovers
        }
        if start.elapsed() > cfg.deadline {
            kill_all(&mut children);
            break true;
        }
        std::thread::sleep(poll);
    };

    let completed = session.done.is_set(machine.mem());
    machine.flush()?;
    if completed {
        machine.mark_clean()?;
    }

    let shard_reports = read_reports(&machine, session.reports, session.flags, map);
    let now = ppm_pm::now_ms();
    let dead_shards: Vec<usize> = shard_reports
        .iter()
        .filter(|r| {
            r.lease.map(|l| l.is_dead(now)).unwrap_or(false) || (r.started && !r.saw_completion)
        })
        .map(|r| r.shard)
        .collect();
    let outcomes = shard_reports
        .iter()
        .map(|r| {
            if r.saw_completion {
                ProcOutcome::Halted
            } else {
                ProcOutcome::Dead
            }
        })
        .collect();
    let deque_dump = session
        .sched
        .deques()
        .iter()
        .map(|d| crate::deque::render(machine.mem(), d))
        .collect();
    let summary = ClusterSummary {
        shards: map.shards,
        procs_per_shard: map.procs_per_shard,
        role: ClusterRole::Coordinator,
        shard_reports,
        dead_shards,
    };
    let _ = deadline_hit; // recorded implicitly: incomplete + dead shards
    obs.tracer().record(
        TraceKind::RunEnd,
        None,
        None,
        if completed {
            "cluster run completed"
        } else {
            "cluster run incomplete (recover to finish)"
        },
    );
    if let Some(path) = Obs::trace_file_from_env() {
        let _ = obs.tracer().flush_jsonl(&path);
        write_trace_manifest(&path, map.shards);
    }
    Ok(SessionReport {
        epoch: machine.epoch(),
        mode: SessionMode::FreshRun,
        found_jobs: 0,
        found_locals: 0,
        found_taken: 0,
        live_restart_pointers: 0,
        resumed: 0,
        fallback_reason: None,
        checkpoint_resume: None,
        cluster: Some(summary),
        trace: Some(obs.tracer().summary()),
        run: Some(RunReport {
            completed,
            outcomes,
            stats: machine.stats().snapshot(),
            elapsed: start.elapsed(),
            deque_dump,
            checkpoints: Default::default(),
        }),
    })
}

/// Writes `<trace>.manifest`: one line per trace artifact of the run —
/// the coordinator's ring file and span sidecar, then each shard's —
/// in the plain-text format [`ppm_obs::expand_manifest`] reads (paths
/// relative to the manifest's own directory; `#` comments). Members that
/// were never written (a worker SIGKILLed before its ring flush) are
/// listed anyway: expansion skips absent files, and the span sidecars
/// are streamed per-line so they survive exactly such kills.
#[cfg(unix)]
fn write_trace_manifest(base: &std::path::Path, shards: usize) {
    let mut lines = vec!["# ppm trace manifest (consumed by ppm-trace)".to_string()];
    let mut push = |p: std::path::PathBuf| {
        if let Some(n) = p.file_name() {
            lines.push(n.to_string_lossy().into_owned());
        }
    };
    push(base.to_path_buf());
    push(ppm_obs::SpanSink::path_for(base));
    for s in 0..shards {
        push(ppm_obs::shard_trace_path(base, s));
        push(ppm_obs::SpanSink::shard_path_for(base, s));
    }
    let mut os = base.as_os_str().to_os_string();
    os.push(".manifest");
    let _ = std::fs::write(std::path::PathBuf::from(os), lines.join("\n") + "\n");
}

// ====================================================================
// Single-process recovery of a cluster file
// ====================================================================

/// Finishes a sharded run single-process: the cluster twin of
/// `Runtime::run_or_recover`, for when the cluster itself could not
/// complete (every fault domain died, or a blocked-adoption window
/// stalled the run past the coordinator's deadline). Reopens the file
/// (epoch bump — this *is* a recovery), replays the session
/// construction, and then:
///
/// * done flag already set → nothing re-runs;
/// * the crash frontier harvests → resume it on scrubbed deques, pool
///   cursors at the persisted watermarks (replay bounded by in-flight
///   work);
/// * otherwise → scrub everything and re-plant the per-shard sub-roots
///   (replay from the roots; §5 idempotence makes completed effects
///   stick).
#[cfg(unix)]
pub fn recover(path: impl AsRef<std::path::Path>, build: &ShardBuild) -> io::Result<SessionReport> {
    let machine = Machine::reopen(&path)?;
    let header = machine
        .mem()
        .backend()
        .read_cluster_header()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "machine file has no cluster header (not a sharded run)",
            )
        })?;
    let map = ShardMap::new(machine.procs(), header.shards as usize);
    // Recovery appends to the coordinator-side span sidecar: the epoch
    // bits in its span ids keep them disjoint from the crashed epoch's,
    // and re-executed capsules resolve their parents from the persistent
    // frame words — the recovery-resume causal edge.
    if let Some(base) = Obs::trace_file_from_env() {
        let spath = ppm_obs::SpanSink::path_for(&base);
        if let Ok(sink) = ppm_obs::SpanSink::create(&spath, 0, machine.epoch(), true) {
            machine.obs().set_span_sink(std::sync::Arc::new(sink));
        }
    }
    let service_cfg = machine
        .mem()
        .backend()
        .read_service_header()
        .map(|h| ServiceConfig {
            slots: h.slots as usize,
            job_words: h.job_words as usize,
        });
    let session = build_session(
        &machine,
        map,
        header.deque_slots as usize,
        header.seed,
        None,
        service_cfg,
        build,
    );
    let (found_jobs, found_locals, found_taken, live_restart_pointers) =
        crash_forensics(&machine, &session.sched);
    machine
        .obs()
        .tracer()
        .record_with(TraceKind::Recovery, None, None, || {
            format!(
                "single-process recovery of a {}-shard cluster file: \
                 {found_jobs} jobs, {found_locals} locals, {live_restart_pointers} live restart pointers",
                map.shards
            )
        });
    // Reports are re-read once the run is over, so subtree flags reflect
    // what recovery itself finished.
    let summary = |machine: &Machine, dead: Vec<usize>| ClusterSummary {
        shards: map.shards,
        procs_per_shard: map.procs_per_shard,
        role: ClusterRole::Recovery,
        shard_reports: read_reports(machine, session.reports, session.flags, map),
        dead_shards: dead,
    };

    if session.done.is_set(machine.mem()) {
        return Ok(SessionReport {
            epoch: machine.epoch(),
            mode: SessionMode::AlreadyComplete,
            found_jobs,
            found_locals,
            found_taken,
            live_restart_pointers,
            resumed: 0,
            fallback_reason: None,
            checkpoint_resume: None,
            cluster: Some(summary(&machine, Vec::new())),
            trace: Some(machine.obs().tracer().summary()),
            run: None,
        });
    }

    let harvest = harvest_frontier(&machine, &session.sched);
    let (seeds, fallback_reason) = match harvest {
        Ok(seeds) if !seeds.is_empty() => (seeds, None),
        Ok(_) => (Vec::new(), Some(FallbackReason::NoFrontier)),
        Err(reason) => (Vec::new(), Some(reason)),
    };
    let resume = fallback_reason.is_none();
    if !resume {
        // Replay resets the pool cursors any stale records live above.
        let _ = machine.clear_checkpoint_records();
    }
    scrub_scheduler_state(&machine, &session.sched, resume);
    if resume {
        plant_seeds(&machine, &session.sched, &seeds);
    } else if let Some(q) = &session.service {
        // Service replay: there are no roots to plant. Normalize the ring
        // instead — torn submissions dropped, jobs claimed by the dead
        // cluster republished — and let the seats pull what survives
        // through the ordinary injector path.
        let rescued = q.scavenge();
        machine
            .obs()
            .tracer()
            .record_with(TraceKind::Recovery, None, None, || {
                format!("service ring scavenged: {rescued} slots normalized")
            });
    } else {
        plant_roots(&machine, &session, map);
    }
    let seats: Vec<ProcSeat> = (0..machine.procs())
        .map(|proc| ProcSeat {
            proc,
            first: session.sched.find_work(),
            cursor: if resume {
                machine.pool_watermark(proc)
            } else {
                0
            },
        })
        .collect();
    let ctl = CheckpointCtl::new_for(
        &machine,
        session.sched.clone(),
        CheckpointPolicy::disabled(),
        seats.len(),
    );
    // In service mode nothing in the computation ever sets the done flag
    // (there is no finale root): a supervisor thread watches the ring and
    // declares completion once every surviving job has resolved.
    let run = match &session.service {
        Some(q) => {
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                let supervisor = {
                    let machine = &machine;
                    let q = q.clone();
                    let done = session.done;
                    let stop = &stop;
                    scope.spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            if q.depth() == 0 {
                                machine.mem().store(done.addr(), 1);
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    })
                };
                let run = run_attached_seats(&machine, &session.sched, seats, session.done, &ctl);
                stop.store(true, Ordering::Release);
                supervisor
                    .join()
                    .expect("service recovery supervisor panicked");
                run
            })
        }
        None => run_attached_seats(&machine, &session.sched, seats, session.done, &ctl),
    };
    machine.flush()?;
    if let Some(base) = Obs::trace_file_from_env() {
        let _ = machine.obs().tracer().flush_jsonl(&base);
        write_trace_manifest(&base, map.shards);
    }

    let dead = (0..map.shards).collect();
    Ok(SessionReport {
        epoch: machine.epoch(),
        mode: if resume {
            SessionMode::Resumed
        } else {
            SessionMode::Replayed
        },
        found_jobs,
        found_locals,
        found_taken,
        live_restart_pointers,
        resumed: if resume { seeds.len() } else { 0 },
        fallback_reason,
        checkpoint_resume: None,
        cluster: Some(summary(&machine, dead)),
        trace: Some(machine.obs().tracer().summary()),
        run: Some(run),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::PmConfig;

    #[test]
    fn domain_victims_stay_in_shard_until_adoption() {
        let map = ShardMap::new(8, 4);
        let d = ShardDomain::new(map, 1); // owns procs 2..4
        for r in 0..100u64 {
            let v = d.pick_victim(2, r).unwrap();
            assert_eq!(v, 3, "only the shard sibling before adoption");
        }
        d.mark_adoptable(3); // procs 6..8 join
        let mut seen = std::collections::HashSet::new();
        for r in 0..200u64 {
            seen.insert(d.pick_victim(2, r).unwrap());
        }
        assert_eq!(
            seen,
            [3usize, 6, 7].into_iter().collect(),
            "own sibling plus the dead shard's processors"
        );
        assert!(d.is_adoptable(3));
        assert_eq!(d.adoptable_mask(), 1 << 3);
        // Own shard cannot be marked; death of others is sticky.
        d.mark_adoptable(1);
        assert!(!d.is_adoptable(1));
    }

    #[test]
    fn single_proc_shard_has_no_victims_until_adoption() {
        let map = ShardMap::new(2, 2);
        let d = ShardDomain::new(map, 0);
        assert_eq!(d.pick_victim(0, 7), None);
        d.mark_adoptable(1);
        assert_eq!(d.pick_victim(0, 7), Some(1));
    }

    /// A worker tombstoned before its first heartbeat must still get a
    /// report row (`last_seen: None`, counters intact) instead of being
    /// dropped, and a tombstone over a real heartbeat must preserve it.
    #[cfg(unix)]
    #[test]
    fn tombstone_before_first_heartbeat_keeps_report_row() {
        let path =
            std::env::temp_dir().join(format!("ppm-cluster-tombstone-{}.ppm", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // The sub-root IS the arrival continuation: each shard's subtree
        // completes the moment it runs (no workers run here anyway).
        let build: ShardBuild = Arc::new(|_machine, _s, arrive| arrive);
        let observer = ClusterBuilder::new(&path)
            .machine(PmConfig::parallel(2, 1 << 20))
            .workers(2)
            .lease_ms(500)
            .observe(&build)
            .expect("init cluster file");

        // Shard 0 heartbeats once, then dies and is reaped.
        let hb = Lease::alive(7, 500);
        let _ = observer.machine().mem().backend().write_lease(0, &hb);
        observer.tombstone(0);
        // Shard 1 is reaped before ever renewing its seed lease.
        observer.tombstone(1);

        let summary = observer.summary();
        assert_eq!(summary.shard_reports.len(), 2, "no shard row is dropped");
        let r0 = &summary.shard_reports[0];
        let r1 = &summary.shard_reports[1];
        assert_eq!(
            r0.last_seen,
            Some(hb.deadline_ms),
            "tombstone preserves the last heartbeat"
        );
        assert_eq!(r0.lease.unwrap().state, LeaseState::Dead);
        assert_eq!(
            r1.last_seen, None,
            "never-heartbeated shard: last_seen None"
        );
        assert!(!r1.started && r1.adopted_jobs == 0 && r1.blocked_adoptions == 0);
        assert_eq!(summary.dead_shards, vec![0, 1], "both tombstones count");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cluster_config_header_round_trip() {
        let cfg = ClusterConfig::new(PmConfig::parallel(8, 1 << 20), 4)
            .with_lease_ms(700)
            .with_slots(1 << 12);
        let h = cfg.header();
        assert_eq!(h.shards, 4);
        assert_eq!(h.lease_ms, 700);
        assert_eq!(h.deque_slots, 1 << 12);
    }
}
