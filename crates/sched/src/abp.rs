//! The Arora–Blumofe–Plaxton baseline scheduler.
//!
//! The scheduler our fault-tolerant one is built from (ABP01): a classic
//! CAS-based work-stealing deque with a tagged `age` word (top pointer +
//! ABA tag) and an untagged `bot`. It observes CAS results directly, so —
//! as §5 of the paper proves — it is **not safe under faults**: a fault
//! between the CAS and acting on its result loses the answer. It exists as
//! the comparison point for the scheduler benchmarks (same cost accounting,
//! same fork-join computations, `f = 0` enforced).
//!
//! ABP01: Arora, Blumofe, Plaxton, "Thread scheduling for multiprogrammed
//! multiprocessors", Theory of Computing Systems 34(2).

use std::sync::Arc;

use ppm_core::{
    capsule_unchecked, run_capsule, Comp, Cont, DoneFlag, InstallCtx, Machine, Next, Step,
};
use ppm_pm::{Addr, PmResult, ProcCtx, Region, StatsSnapshot, Word};

/// One processor's ABP deque: an array of continuation handles plus the
/// packed `age` (top:32 | tag:32) and `bot` words.
#[derive(Debug, Clone, Copy)]
pub struct AbpDeque {
    stack: Region,
    age: Addr,
    bot: Addr,
    slots: usize,
}

fn age_pack(top: u32, tag: u32) -> Word {
    ((top as u64) << 32) | tag as u64
}

fn age_unpack(w: Word) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

impl AbpDeque {
    fn entry(&self, i: usize) -> Addr {
        assert!(
            i < self.slots,
            "ABP deque overflow (slot {i} of {})",
            self.slots
        );
        self.stack.at(i)
    }

    /// `pushBottom(h)` — owner only.
    fn push_bottom(&self, ctx: &mut ProcCtx, h: Word) -> PmResult<()> {
        let b = ctx.pread(self.bot)? as usize;
        ctx.pwrite(self.entry(b), h)?;
        ctx.pwrite(self.bot, (b + 1) as Word)?;
        Ok(())
    }

    /// `popBottom()` — owner only.
    fn pop_bottom(&self, ctx: &mut ProcCtx) -> PmResult<Option<Word>> {
        let b = ctx.pread(self.bot)? as usize;
        if b == 0 {
            return Ok(None);
        }
        let b = b - 1;
        ctx.pwrite(self.bot, b as Word)?;
        let h = ctx.pread(self.entry(b))?;
        let old_age = ctx.pread(self.age)?;
        let (top, tag) = age_unpack(old_age);
        if b > top as usize {
            return Ok(Some(h));
        }
        ctx.pwrite(self.bot, 0)?;
        let new_age = age_pack(0, tag.wrapping_add(1));
        if b == top as usize && ctx.pcas_baseline(self.age, old_age, new_age)? {
            return Ok(Some(h));
        }
        ctx.pwrite(self.age, new_age)?;
        Ok(None)
    }

    /// `popTop()` — any processor.
    fn pop_top(&self, ctx: &mut ProcCtx) -> PmResult<Option<Word>> {
        let old_age = ctx.pread(self.age)?;
        let b = ctx.pread(self.bot)? as usize;
        let (top, tag) = age_unpack(old_age);
        if b <= top as usize {
            return Ok(None);
        }
        let h = ctx.pread(self.entry(top as usize))?;
        let new_age = age_pack(top + 1, tag);
        if ctx.pcas_baseline(self.age, old_age, new_age)? {
            return Ok(Some(h));
        }
        Ok(None)
    }
}

/// The ABP scheduler instance.
pub struct AbpScheduler {
    deques: Vec<AbpDeque>,
    done: DoneFlag,
    seed: u64,
}

impl AbpScheduler {
    /// Carves per-processor deques with `slots` entries each.
    pub fn new(machine: &Machine, done: DoneFlag, slots: usize, seed: u64) -> Arc<Self> {
        assert_eq!(
            machine.cfg().fault.fault_prob,
            0.0,
            "the ABP baseline is not fault-tolerant; run it with FaultConfig::none()"
        );
        assert!(
            machine.cfg().fault.scheduled_hard_faults.is_empty(),
            "the ABP baseline cannot survive hard faults"
        );
        let deques = (0..machine.procs())
            .map(|_| AbpDeque {
                stack: machine.alloc_region(slots),
                age: machine.alloc_region(1).start,
                bot: machine.alloc_region(1).start,
                slots,
            })
            .collect();
        Arc::new(AbpScheduler { deques, done, seed })
    }

    /// The scheduler capsule: find work (own deque, then random steals)
    /// or halt when done. Runs as one unchecked capsule — legitimate only
    /// because the machine is fault-free.
    fn find_work(self: &Arc<Self>, machine: &Machine) -> Cont {
        let s = self.clone();
        let arena = machine.arena().clone();
        let p = s.deques.len();
        capsule_unchecked("abp/findWork", move |ctx| {
            let me = ctx.proc();
            if let Some(h) = s.deques[me].pop_bottom(ctx)? {
                return Ok(Next::Jump(arena.get(h).expect("dangling ABP handle")));
            }
            let mut n = 0u64;
            loop {
                if s.done.read(ctx)? {
                    return Ok(Next::Halt);
                }
                if p > 1 {
                    let r = (s.seed ^ ((me as u64) << 32) ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let v = (r >> 33) as usize % (p - 1);
                    let victim = if v >= me { v + 1 } else { v };
                    if let Some(h) = s.deques[victim].pop_top(ctx)? {
                        return Ok(Next::Jump(arena.get(h).expect("dangling ABP handle")));
                    }
                }
                n += 1;
            }
        })
    }

    /// The fork wrapper: push the child, continue the thread.
    fn push_wrap(self: &Arc<Self>, handle: Word, cont: Cont) -> Cont {
        let s = self.clone();
        capsule_unchecked("abp/push", move |ctx| {
            let me = ctx.proc();
            s.deques[me].push_bottom(ctx, handle)?;
            Ok(Next::Jump(cont.clone()))
        })
    }
}

/// Result of an ABP run.
#[derive(Debug, Clone)]
pub struct AbpReport {
    /// Whether the completion flag was set (always, absent deadlock).
    pub completed: bool,
    /// Machine statistics.
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the parallel section.
    pub elapsed: std::time::Duration,
}

/// Runs a fork-join computation under the ABP baseline (fault-free).
pub fn run_computation_abp(machine: &Machine, comp: &Comp, slots: usize, seed: u64) -> AbpReport {
    let done = DoneFlag::new(machine);
    let root = comp(done.finale());
    let sched = AbpScheduler::new(machine, done, slots, seed);

    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..machine.procs() {
            let sched = sched.clone();
            let root = root.clone();
            s.spawn(move || {
                let mut ctx = machine.ctx(p);
                let mut install = InstallCtx::new(machine.proc_meta(p));
                let on_end = sched.find_work(machine);
                let sched_for_fork = sched.clone();
                let fork_wrap = move |handle: Word, cont: Cont, _cont_handle: Option<Word>| {
                    sched_for_fork.push_wrap(handle, cont)
                };
                let mut cur: Cont = if p == 0 { root } else { on_end.clone() };
                loop {
                    match run_capsule(
                        &mut ctx,
                        machine.arena(),
                        &mut install,
                        &cur,
                        Some(&fork_wrap),
                        Some(&on_end),
                    ) {
                        Ok(Step::Next(c)) => cur = c,
                        Ok(Step::Done) => return,
                        Err(f) => unreachable!("fault {f} on the fault-free ABP baseline"),
                    }
                }
            });
        }
    });
    AbpReport {
        completed: done.is_set(machine.mem()),
        stats: machine.stats().snapshot(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::{comp_step, par_all, Comp};
    use ppm_pm::{PmConfig, Region};

    fn write_marker(r: Region, i: usize) -> Comp {
        comp_step("mark", move |ctx: &mut ProcCtx| {
            ctx.pwrite(r.at(i), i as u64 + 1)
        })
    }

    #[test]
    fn abp_runs_fanout_on_four_procs() {
        let m = Machine::new(PmConfig::parallel(4, 1 << 21));
        let n = 64;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_abp(&m, &comp, 1024, 7);
        assert!(rep.completed);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn abp_single_proc() {
        let m = Machine::new(PmConfig::parallel(1, 1 << 20));
        let r = m.alloc_region(16);
        let comp = par_all((0..8).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_abp(&m, &comp, 256, 7);
        assert!(rep.completed);
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "not fault-tolerant")]
    fn abp_rejects_faulty_machines() {
        let m = Machine::new(
            PmConfig::parallel(1, 1 << 18).with_fault(ppm_pm::FaultConfig::soft(0.1, 0)),
        );
        let done = DoneFlag::new(&m);
        let _ = AbpScheduler::new(&m, done, 64, 0);
    }

    #[test]
    fn age_packing_round_trips() {
        for (top, tag) in [(0u32, 0u32), (1, 2), (u32::MAX, u32::MAX), (7, 0)] {
            assert_eq!(age_unpack(age_pack(top, tag)), (top, tag));
        }
    }
}
