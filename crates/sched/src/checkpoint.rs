//! Epoch checkpoints: incremental persist boundaries with frame-pool GC.
//!
//! # Design, mapped to the paper's persist-boundary semantics
//!
//! In the Parallel-PM model (conf_spaa_BlellochG0MS18), a fault costs at
//! most the work since the last point at which the computation's state
//! was *persistently consistent*: capsule boundaries bound the cost of a
//! processor fault, and the explicit flush boundary bounds the cost of a
//! machine failure. Before this module the runtime had exactly two
//! machine-level persist boundaries — the initial state and the final
//! [`crate::Runtime::flush`] — so a machine failure (or any crash whose
//! frontier falls in one of the narrow unresumable windows) replayed the
//! *whole* run. A **checkpoint** inserts periodic machine-level persist
//! boundaries, each one doing three things at a quiesced capsule
//! boundary:
//!
//! 1. **Dirty-block incremental flush.** Instead of `msync`ing the whole
//!    mapping, [`ppm_pm::PersistentMemory::flush_dirty`] syncs only the
//!    pages mutated since the previous boundary (the page-run bitmap of
//!    [`ppm_pm::dirty`]). The flush cost is proportional to the epoch's
//!    write footprint, not the file size — which is what makes frequent
//!    boundaries affordable (`exp_checkpoint_overhead` measures this).
//! 2. **A versioned checkpoint record** ([`ppm_pm::CheckpointRecord`]) in
//!    the superblock page: sequence number, run epoch, capsule count, the
//!    per-processor *stable pool watermarks*, and the quiesced **deque
//!    frontier** (every in-flight `job` handle plus every running
//!    thread's restart pointer — exactly the §6.3 state a recovering
//!    process needs). Records alternate between two checksummed slots, so
//!    a write torn by a machine failure leaves the previous record
//!    intact; and because records are only written under quiescence,
//!    *before* any post-checkpoint pool allocation, the surviving older
//!    record's frames are always still unclobbered when it is needed.
//! 3. **Frame-pool GC.** The §4.1 pool allocator only ever bumps, so the
//!    registered form retains every frame, join cell and scratch word it
//!    ever allocated — O(total work) pool footprint (samplesort's old
//!    sizing carried a 72·n frame term for exactly this reason). At a
//!    quiesced boundary the *live* pool contents are precisely what is
//!    reachable from the frontier: the checkpoint traces frame handles
//!    and typed state extents ([`ppm_core::Persist::pool_refs`], via
//!    [`ppm_core::CapsuleRegistry::trace_refs`]) transitively from the
//!    frontier, finds the highest live word of each processor's pool, and
//!    rolls the pool cursors (and their persisted watermark mirrors) back
//!    to it. Everything above — completed continuations, dead join
//!    cells, abandoned scratch — is reused by later allocations, turning
//!    the retained footprint into O(live frontier + one epoch's churn)
//!    and capping a resumed run's re-allocation at one epoch's worth.
//!
//! ## Why the rollback is sound
//!
//! The bump discipline gives the key invariant: a frame's words are
//! written when it is created, so every pool address a frame carries was
//! allocated *no later than* the frame itself. Any live object is
//! therefore at or below some frame that references it in the same pool,
//! and keeping every traced frame/extent keeps everything below the
//! per-pool maximum automatically — suffix reclamation needs an upper
//! bound on live addresses, not an exact live set. Tracing is refused
//! (and the checkpoint skipped, never wrong) whenever a reachable frame's
//! capsule id has no tracer, and reclamation only happens when the
//! frontier harvest succeeds — the same condition crash recovery needs —
//! so quiesces that catch a steal mid-transfer or a fork mid-push are
//! skipped and retried at a later boundary.
//!
//! ## Recovery
//!
//! [`crate::Runtime::run_or_recover`] prefers resuming the *crash*
//! frontier (replay distance ≈ 0). When that frontier is unharvestable —
//! a torn steal, a mid-push window, a smashed restart pointer — it now
//! falls back to the newest valid checkpoint record instead of the root:
//! the record's frontier is planted on scrubbed deques, pool cursors
//! resume from the recorded watermarks, and idempotence (the §5 CAM
//! discipline) makes re-running the span between checkpoint and crash
//! safe. Replay distance is bounded by one checkpoint epoch. Only when no
//! valid record exists does recovery degrade to replay-from-root (and
//! then it clears any stale records, since a root replay resets the pool
//! cursors the records' frontiers live above).
//!
//! ## Quiescing
//!
//! Processors check the checkpoint request at every capsule boundary (the
//! driver loop runs one capsule per iteration, and every scheduler
//! operation is itself capsules, so no processor can be more than one
//! capsule away from parking). The last processor to park performs the
//! checkpoint while the others wait; processors that hard-fault or halt
//! deregister so the barrier never deadlocks. The checkpoint itself
//! performs only uncosted machine maintenance — no costed transfers, no
//! fault-adversary consultations — so deterministic fault schedules are
//! unchanged by enabling it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppm_core::{DoneFlag, Machine, PoolRefs};
use ppm_obs::TraceKind;
use ppm_pm::{frame_words, read_frame, CheckpointRecord, ProcCtx, Region, Word};

use crate::capsules::Sched;

/// Default capsule interval between checkpoints when a policy is not
/// explicitly configured.
pub const DEFAULT_CHECKPOINT_CAPSULES: u64 = 1024;

/// Capsules to wait before re-quiescing after a checkpoint (or a busy
/// skip): long enough that an in-flight scheduler operation has
/// completed, short enough that a due policy is delayed, not starved.
const BUSY_RETRY_CAPSULES: u64 = 8;

/// Backoff after a quiesce found an untraceable frame: the offending
/// capsule is usually still reachable at the next boundary, so hammering
/// the barrier would quiesce every few capsules with zero reclamation.
const UNTRACED_RETRY_CAPSULES: u64 = 256;

/// When a session writes checkpoints.
///
/// Construct with [`CheckpointPolicy::every_capsules`],
/// [`CheckpointPolicy::every_pool_words`], [`CheckpointPolicy::manual`]
/// or [`CheckpointPolicy::disabled`]. The default checkpoints every
/// [`DEFAULT_CHECKPOINT_CAPSULES`] capsules.
#[derive(Debug, Clone)]
pub enum CheckpointPolicy {
    /// Never checkpoint.
    Disabled,
    /// Checkpoint after every `k` completed capsules (machine-wide).
    EveryCapsules(u64),
    /// Checkpoint after every `d` pool words allocated (machine-wide).
    EveryPoolWords(u64),
    /// Checkpoint only when the paired [`CheckpointTrigger`] is fired.
    Manual(Arc<AtomicBool>),
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::EveryCapsules(DEFAULT_CHECKPOINT_CAPSULES)
    }
}

impl CheckpointPolicy {
    /// Checkpoint after every `k` completed capsules.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn every_capsules(k: u64) -> Self {
        assert!(k > 0, "checkpoint interval must be positive");
        CheckpointPolicy::EveryCapsules(k)
    }

    /// Checkpoint after every `d` pool words allocated.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn every_pool_words(d: u64) -> Self {
        assert!(d > 0, "checkpoint pool-word budget must be positive");
        CheckpointPolicy::EveryPoolWords(d)
    }

    /// No automatic checkpoints.
    pub fn disabled() -> Self {
        CheckpointPolicy::Disabled
    }

    /// Manual checkpoints: the returned trigger requests one checkpoint
    /// per [`CheckpointTrigger::request`] call (taken at the next capsule
    /// boundary quiesce). The trigger is `Send + Sync` — fire it from a
    /// monitoring thread while the run is in flight.
    pub fn manual() -> (Self, CheckpointTrigger) {
        let flag = Arc::new(AtomicBool::new(false));
        (
            CheckpointPolicy::Manual(flag.clone()),
            CheckpointTrigger(flag),
        )
    }

    /// Whether this policy can ever request a checkpoint.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CheckpointPolicy::Disabled)
    }
}

/// Requests checkpoints under [`CheckpointPolicy::manual`].
#[derive(Debug, Clone)]
pub struct CheckpointTrigger(Arc<AtomicBool>);

impl CheckpointTrigger {
    /// Requests one checkpoint at the next capsule-boundary quiesce.
    pub fn request(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// What a run's checkpointing did (part of [`crate::RunReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Quiesces that reached the coordinator.
    pub attempted: u64,
    /// Checkpoints fully taken (GC + flush + record when durable).
    pub completed: u64,
    /// Quiesces skipped because the frontier was not harvestable at this
    /// boundary (a steal or push in flight, a closure-parked restart
    /// pointer) — retried at a later boundary.
    pub skipped_busy: u64,
    /// Quiesces skipped because a reachable frame's capsule had no
    /// GC tracer (raw registration without [`ppm_core::CapsuleRegistry::register_traced`]).
    pub skipped_untraced: u64,
    /// Checkpoint records durably written (0 on volatile machines).
    pub records_written: u64,
    /// Records skipped because the frontier outgrew a record slot.
    pub records_oversized: u64,
    /// Pages synced by incremental flushes.
    pub pages_flushed: u64,
    /// Pool words reclaimed by frame-pool GC, summed over processors and
    /// checkpoints.
    pub words_reclaimed: u64,
}

struct Barrier {
    /// Processors currently parked at the checkpoint barrier.
    parked: usize,
    /// Processor threads still running their driver loop.
    live: usize,
}

/// Cross-process quiesce follower state for one cluster shard. The
/// coordinator (or service handle) writes a monotone request word into
/// the superblock page; every live shard parks its processors at the
/// in-process barrier, writes its ACK word, and the elected *performer*
/// shard runs the whole-machine checkpoint once every alive-leased shard
/// has acked — then releases everyone with the REL word. Timeouts on
/// every wait keep a died-mid-round sibling from wedging the cluster:
/// a timed-out round degrades to a skipped checkpoint, never a hang.
pub(crate) struct QuiesceFollower {
    /// This worker's shard index (owns ACK word `shard`).
    shard: usize,
    /// Total shards in the cluster header.
    shards: usize,
    /// The cluster lease validity; round deadlines are `2 × lease_ms`
    /// so a sibling that died mid-round is certified dead (expired
    /// lease) before the performer gives up on it.
    lease_ms: u64,
    /// Highest request sequence this process has served.
    last_seq: AtomicU64,
    /// Boundary counter: the REQ word is polled every 8th boundary so
    /// the hot path stays one relaxed fetch_add.
    probe: AtomicU64,
}

impl QuiesceFollower {
    pub(crate) fn new(shard: usize, shards: usize, lease_ms: u64) -> Self {
        QuiesceFollower {
            shard,
            shards,
            lease_ms,
            last_seq: AtomicU64::new(0),
            probe: AtomicU64::new(0),
        }
    }
}

/// Shared per-run checkpoint state: trigger counters, the quiesce
/// barrier, and the coordinator. Created by the driver for each parallel
/// section; processors call [`CheckpointCtl::at_boundary`] between
/// capsules.
pub(crate) struct CheckpointCtl {
    policy: CheckpointPolicy,
    sched: Arc<Sched>,
    done: DoneFlag,
    requested: AtomicBool,
    /// Completed capsules, machine-wide (also recorded in checkpoint
    /// records for replay-distance accounting).
    capsules: AtomicU64,
    /// Next capsule count at which [`CheckpointPolicy::EveryCapsules`]
    /// fires. Only advances when a checkpoint *completes*: a quiesce that
    /// lands in a busy window (steal or push in flight) leaves the policy
    /// due, and the short `retry_at` backoff re-quiesces a few capsules
    /// later — reclamation is delayed, never lost.
    next_due: AtomicU64,
    /// Pool words allocated since the last *completed* checkpoint
    /// ([`CheckpointPolicy::EveryPoolWords`]).
    words_since: AtomicU64,
    /// A manual request that has been taken from the trigger but not yet
    /// served by a completed checkpoint.
    manual_pending: AtomicBool,
    /// Earliest capsule count at which a due-but-busy policy may
    /// re-request (quiesces retry at this backoff, not every boundary).
    retry_at: AtomicU64,
    /// Last seen pool cursor per processor (delta base for `words_since`).
    last_cursor: Vec<AtomicU64>,
    /// Sequence number the next record will carry.
    next_seq: AtomicU64,
    barrier: Mutex<Barrier>,
    cv: Condvar,
    /// Shared with the machine's metrics registry: scrape-time collector
    /// closures read the same accounting the run report snapshots.
    summary: Arc<Mutex<CheckpointSummary>>,
    /// Microseconds the machine spends quiesced per checkpoint attempt
    /// (including skipped ones — a busy quiesce still parks everyone).
    quiesce_us: ppm_obs::Histogram,
    /// Cross-process quiesce follower — `Some` only on cluster workers,
    /// which otherwise run with the local policy disabled.
    cluster: Option<QuiesceFollower>,
}

impl CheckpointCtl {
    pub(crate) fn new(machine: &Machine, sched: Arc<Sched>, policy: CheckpointPolicy) -> Arc<Self> {
        let procs = machine.procs();
        Self::new_for(machine, sched, policy, procs)
    }

    /// [`CheckpointCtl::new`] with an explicit count of driver threads
    /// this process will run. A cluster worker seats only its own shard's
    /// processors, so its quiesce barrier must count those — a worker can
    /// never quiesce processors living in sibling processes (which is
    /// also why sharded workers run with the policy disabled).
    pub(crate) fn new_for(
        machine: &Machine,
        sched: Arc<Sched>,
        policy: CheckpointPolicy,
        live_procs: usize,
    ) -> Arc<Self> {
        Self::new_inner(machine, sched, policy, live_procs, None)
    }

    /// [`CheckpointCtl::new_for`] plus a cross-process quiesce follower:
    /// a cluster worker keeps its *local* policy disabled but still
    /// parks its seats whenever the coordinator raises the superblock
    /// quiesce request, so sharded runs checkpoint machine-wide instead
    /// of not at all.
    pub(crate) fn new_for_cluster(
        machine: &Machine,
        sched: Arc<Sched>,
        policy: CheckpointPolicy,
        live_procs: usize,
        follower: QuiesceFollower,
    ) -> Arc<Self> {
        Self::new_inner(machine, sched, policy, live_procs, Some(follower))
    }

    fn new_inner(
        machine: &Machine,
        sched: Arc<Sched>,
        policy: CheckpointPolicy,
        live_procs: usize,
        cluster: Option<QuiesceFollower>,
    ) -> Arc<Self> {
        let next_seq = machine
            .latest_checkpoint_record()
            .map(|r| r.seq + 1)
            .unwrap_or(1);
        let first_due = match &policy {
            CheckpointPolicy::EveryCapsules(k) => *k,
            _ => u64::MAX,
        };
        let done = sched.done();
        let summary = Arc::new(Mutex::new(CheckpointSummary::default()));
        let reg = machine.obs().registry();
        let quiesce_us = reg.histogram(
            "ppm_checkpoint_quiesce_us",
            "microseconds the machine spent quiesced per checkpoint attempt",
        );
        // Skip/retry accounting as scrape-time collectors over the same
        // summary the run report snapshots. Replace semantics: each run's
        // control (including recovery's rebuild) supersedes the last.
        let register = |name: &str, help: &str, field: fn(&CheckpointSummary) -> u64| {
            let s = summary.clone();
            reg.counter_fn(name, help, &[], move || {
                field(&s.lock().expect("checkpoint summary poisoned"))
            });
        };
        register(
            "ppm_checkpoints_attempted_total",
            "quiesces that reached the checkpoint coordinator",
            |s| s.attempted,
        );
        register(
            "ppm_checkpoints_completed_total",
            "checkpoints fully taken (GC + flush + record when durable)",
            |s| s.completed,
        );
        register(
            "ppm_checkpoint_skips_busy_total",
            "quiesces skipped on an unharvestable boundary, retried later",
            |s| s.skipped_busy,
        );
        register(
            "ppm_checkpoint_skips_untraced_total",
            "quiesces skipped because a reachable frame had no GC tracer",
            |s| s.skipped_untraced,
        );
        register(
            "ppm_checkpoint_records_written_total",
            "checkpoint records durably written",
            |s| s.records_written,
        );
        register(
            "ppm_checkpoint_pages_flushed_total",
            "pages synced by incremental checkpoint flushes",
            |s| s.pages_flushed,
        );
        register(
            "ppm_checkpoint_words_reclaimed_total",
            "pool words reclaimed by frame-pool GC",
            |s| s.words_reclaimed,
        );
        Arc::new(CheckpointCtl {
            policy,
            done,
            requested: AtomicBool::new(false),
            capsules: AtomicU64::new(0),
            next_due: AtomicU64::new(first_due),
            words_since: AtomicU64::new(0),
            manual_pending: AtomicBool::new(false),
            retry_at: AtomicU64::new(0),
            last_cursor: (0..machine.procs()).map(|_| AtomicU64::new(0)).collect(),
            next_seq: AtomicU64::new(next_seq),
            barrier: Mutex::new(Barrier {
                parked: 0,
                live: live_procs,
            }),
            cv: Condvar::new(),
            summary,
            quiesce_us,
            sched,
            cluster,
        })
    }

    /// A control that never checkpoints (legacy-closure runs, plain
    /// chains).
    pub(crate) fn disabled(machine: &Machine, sched: Arc<Sched>) -> Arc<Self> {
        Self::new(machine, sched, CheckpointPolicy::Disabled)
    }

    /// Snapshot of the run's checkpoint accounting.
    pub(crate) fn summary(&self) -> CheckpointSummary {
        *self.summary.lock().expect("checkpoint summary poisoned")
    }

    /// Called once by each processor thread when it leaves the driver
    /// loop (halt or hard fault), so the quiesce barrier stops waiting
    /// for it.
    pub(crate) fn proc_exit(&self) {
        let mut bar = self.barrier.lock().expect("checkpoint barrier poisoned");
        bar.live -= 1;
        drop(bar);
        self.cv.notify_all();
    }

    /// Capsule-boundary hook: updates the trigger counters, and — when a
    /// checkpoint is requested — parks until every live processor is
    /// parked, runs the checkpoint on the last arriver, and resynces the
    /// processor's pool cursor from its (possibly rolled-back) watermark.
    pub(crate) fn at_boundary(&self, machine: &Machine, proc: usize, ctx: &mut ProcCtx) {
        // Cross-process quiesce runs before (and independently of) the
        // local policy: cluster workers keep the local policy disabled
        // and park only on the coordinator's superblock request.
        if let Some(cq) = &self.cluster {
            if cq.probe.fetch_add(1, Ordering::Relaxed) & 7 == 0 {
                let req = machine
                    .mem()
                    .backend()
                    .read_quiesce_word(ppm_pm::service::QUIESCE_REQ_OFFSET);
                let (seq, performer) = ppm_pm::service::unpack_quiesce_req(req);
                if seq > cq.last_seq.load(Ordering::Acquire) {
                    self.cluster_park(machine, proc, ctx, seq, performer);
                }
            }
        }
        if !self.policy.is_enabled() {
            return;
        }
        let capsules = self.capsules.fetch_add(1, Ordering::Relaxed) + 1;
        let due = match &self.policy {
            CheckpointPolicy::EveryCapsules(_) => capsules >= self.next_due.load(Ordering::Relaxed),
            CheckpointPolicy::EveryPoolWords(d) => {
                let cursor = ctx.alloc_cursor() as u64;
                let last = self.last_cursor[proc].swap(cursor, Ordering::Relaxed);
                let delta = cursor.saturating_sub(last);
                if delta > 0 {
                    self.words_since.fetch_add(delta, Ordering::Relaxed);
                }
                self.words_since.load(Ordering::Relaxed) >= *d
            }
            CheckpointPolicy::Manual(flag) => {
                if flag.swap(false, Ordering::AcqRel) {
                    self.manual_pending.store(true, Ordering::Release);
                }
                self.manual_pending.load(Ordering::Acquire)
            }
            CheckpointPolicy::Disabled => unreachable!("early-returned above"),
        };
        // A due policy re-requests only past the busy-skip backoff — the
        // frequent case is a fork boundary (allocations happen in forking
        // capsules), which is exactly a mid-push window where the quiesce
        // must skip; a few capsules later the push has completed.
        if due && capsules >= self.retry_at.load(Ordering::Relaxed) {
            self.requested.store(true, Ordering::Release);
        }
        // Pool-pressure failsafe, independent of the configured cadence:
        // when this processor's pool is ⅞ full, request a checkpoint. The
        // tightened pool-sizing formulas in `ppm-algs` budget the live
        // set plus one epoch of churn; under a burst (e.g. a resumed run
        // re-driving a big span) this collects the dead churn before the
        // bump allocator can run off the end. The retry backoff applies
        // here too, so a pool whose *live* set is what crossed the
        // threshold (nothing to reclaim) costs one quiesce per backoff
        // window, not one per capsule.
        if ctx.alloc_cursor() * 8 >= machine.pool(proc).len * 7
            && capsules >= self.retry_at.load(Ordering::Relaxed)
        {
            self.requested.store(true, Ordering::Release);
        }
        if self.requested.load(Ordering::Acquire) {
            self.park(machine, proc, ctx);
        }
    }

    /// The quiesce barrier. The last processor to park coordinates.
    fn park(&self, machine: &Machine, proc: usize, ctx: &mut ProcCtx) {
        let mut bar = self.barrier.lock().expect("checkpoint barrier poisoned");
        bar.parked += 1;
        while self.requested.load(Ordering::Acquire) {
            if bar.parked == bar.live {
                // Everyone still running is parked: the machine is
                // quiescent and this thread is the coordinator.
                self.run_checkpoint(machine);
                self.requested.store(false, Ordering::Release);
                self.cv.notify_all();
                break;
            }
            bar = self.cv.wait(bar).expect("checkpoint barrier poisoned");
        }
        bar.parked -= 1;
        drop(bar);
        // A completed checkpoint may have rolled this processor's
        // watermark back; resume allocating from it either way.
        ctx.set_pool_cursor(machine.pool_watermark(proc));
    }

    /// The cross-process quiesce barrier: parks this shard's seats at
    /// the in-process barrier exactly like [`CheckpointCtl::park`], but
    /// the last arriver runs one *cluster round* (ACK, performer-or-
    /// follower wait, REL) instead of a local checkpoint. `last_seq`
    /// is the release condition, so every seat serves each request
    /// sequence exactly once.
    fn cluster_park(
        &self,
        machine: &Machine,
        proc: usize,
        ctx: &mut ProcCtx,
        seq: u64,
        performer: usize,
    ) {
        let cq = self
            .cluster
            .as_ref()
            .expect("cluster_park without a follower");
        let mut bar = self.barrier.lock().expect("checkpoint barrier poisoned");
        if cq.last_seq.load(Ordering::Acquire) >= seq {
            return;
        }
        bar.parked += 1;
        while cq.last_seq.load(Ordering::Acquire) < seq {
            if bar.parked == bar.live {
                self.cluster_round(machine, cq, seq, performer);
                cq.last_seq.store(seq, Ordering::Release);
                self.cv.notify_all();
                break;
            }
            bar = self.cv.wait(bar).expect("checkpoint barrier poisoned");
        }
        bar.parked -= 1;
        drop(bar);
        // The performer may have rolled this processor's watermark back.
        ctx.set_pool_cursor(machine.pool_watermark(proc));
    }

    /// One cluster quiesce round, run by the last-arriving seat while
    /// every sibling seat waits on the in-process condvar. Writes this
    /// shard's ACK, then either performs the machine-wide checkpoint
    /// (once every alive-leased shard has acked) and releases the
    /// cluster via REL, or — as a follower — waits for the performer's
    /// REL. Both waits carry a `2 × lease_ms` deadline so a shard that
    /// died mid-round costs a skipped checkpoint, not a wedged cluster.
    fn cluster_round(&self, machine: &Machine, cq: &QuiesceFollower, seq: u64, performer: usize) {
        use ppm_pm::service::{quiesce_ack_offset, QUIESCE_REL_OFFSET};
        let be = machine.mem().backend();
        be.write_quiesce_word(quiesce_ack_offset(cq.shard), seq);
        let deadline = Instant::now() + Duration::from_millis((2 * cq.lease_ms).max(100));
        if performer == cq.shard {
            let quiescent = loop {
                let now = ppm_pm::now_ms();
                let acked = (0..cq.shards).all(|s| {
                    if s == cq.shard {
                        return true;
                    }
                    // Only shards holding a live, unexpired lease owe an
                    // ACK; exited (Done), tombstoned, expired, or
                    // never-started shards cannot park and must not be
                    // waited on.
                    match be.read_lease(s) {
                        Some(l) if l.state == ppm_pm::LeaseState::Alive && !l.is_dead(now) => {
                            be.read_quiesce_word(quiesce_ack_offset(s)) >= seq
                        }
                        _ => true,
                    }
                });
                if acked {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            if quiescent {
                // Another shard may have performed earlier rounds (the
                // requester re-elects on performer death): never reuse a
                // record sequence a sibling already wrote.
                if let Some(r) = machine.latest_checkpoint_record() {
                    self.next_seq.fetch_max(r.seq + 1, Ordering::Relaxed);
                }
                self.run_checkpoint(machine);
            } else {
                machine
                    .obs()
                    .tracer()
                    .record_with(TraceKind::Checkpoint, None, None, || {
                        format!("cluster quiesce {seq} skipped: sibling shards never acked")
                    });
            }
            be.write_quiesce_word(QUIESCE_REL_OFFSET, seq);
        } else {
            while be.read_quiesce_word(QUIESCE_REL_OFFSET) < seq && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Runs one checkpoint directly, bypassing the quiesce barrier. Only
    /// sound when the caller guarantees every seated processor is parked
    /// at a capsule boundary — the single-threaded [`crate::sim`]
    /// stepper, which holds every processor between capsules by
    /// construction. The caller must resync each processor's pool cursor
    /// from its (possibly rolled-back) watermark afterwards, as
    /// [`CheckpointCtl::at_boundary`]'s park path does.
    pub(crate) fn quiesced_checkpoint(&self, machine: &Machine) {
        self.run_checkpoint(machine);
    }

    /// The checkpoint itself, timed and traced: the quiesce-time
    /// histogram sees every attempt (a busy skip still parked everyone),
    /// and each attempt leaves one `checkpoint` trace event.
    fn run_checkpoint(&self, machine: &Machine) {
        let t0 = Instant::now();
        let outcome = self.run_checkpoint_inner(machine);
        let us = t0.elapsed().as_micros() as u64;
        self.quiesce_us.observe(us);
        machine
            .obs()
            .tracer()
            .record_with(TraceKind::Checkpoint, None, None, || {
                format!("{outcome}; quiesced {us} us")
            });
    }

    /// Runs under the barrier lock with every live processor parked at a
    /// capsule boundary — the machine is quiescent, so oracle reads and
    /// uncosted stores are exact and race-free. Returns the outcome line
    /// for the trace event.
    fn run_checkpoint_inner(&self, machine: &Machine) -> String {
        let mut summary = self.summary.lock().expect("checkpoint summary poisoned");
        summary.attempted += 1;
        if self.done.is_set(machine.mem()) {
            // The computation finished while the request was in flight.
            self.rearm(true, BUSY_RETRY_CAPSULES);
            summary.skipped_busy += 1;
            return "skipped: run already complete".into();
        }
        // The frontier, exactly as crash recovery would harvest it. An
        // unharvestable boundary (steal/push in flight somewhere) skips
        // this checkpoint; a near boundary retries (short re-arm), so a
        // busy quiesce delays reclamation instead of losing it.
        let seeds = match crate::driver::harvest_frontier(machine, &self.sched) {
            Ok(seeds) if !seeds.is_empty() => seeds,
            _ => {
                self.rearm(false, BUSY_RETRY_CAPSULES);
                summary.skipped_busy += 1;
                return "skipped: busy boundary".into();
            }
        };
        // Frame-pool GC: highest live word per pool, traced from the
        // frontier. Refused (conservatively) if any reachable frame is
        // untraceable — and retried only after a long backoff, since the
        // untraceable capsule is usually still reachable at the next
        // boundary too.
        let Some(maxima) = trace_live_maxima(machine, &seeds) else {
            self.rearm(false, UNTRACED_RETRY_CAPSULES);
            summary.skipped_untraced += 1;
            return "skipped: untraced frame".into();
        };
        self.rearm(true, BUSY_RETRY_CAPSULES);
        let mut reclaimed_now = 0u64;
        let mut watermarks = Vec::with_capacity(machine.procs());
        for (p, live_words) in maxima.iter().enumerate() {
            let old = machine.pool_watermark(p);
            let new = (*live_words).min(old);
            if new < old {
                reclaimed_now += (old - new) as u64;
                machine
                    .mem()
                    .store(machine.proc_meta(p).watermark, new as Word);
            }
            watermarks.push(new as u64);
        }
        summary.words_reclaimed += reclaimed_now;
        // Persist boundary: sync the epoch's dirty pages, then the record
        // describing the now-durable state. Volatile machines keep the GC
        // but skip the durability work.
        if machine.epoch() > 0 {
            let mut record_written = false;
            // On a flush error, durability stays best-effort mid-run
            // (MAP_SHARED words already survive process death) and no
            // record is written, so a record can never describe
            // unflushed state.
            let flushed = machine.flush_dirty();
            if let Ok(flush) = &flushed {
                summary.pages_flushed += flush.pages as u64;
                let record = CheckpointRecord {
                    seq: self.next_seq.load(Ordering::Relaxed),
                    epoch: machine.epoch(),
                    capsules: self.capsules.load(Ordering::Relaxed),
                    watermarks,
                    frontier: seeds,
                };
                if record.fits() {
                    if machine.write_checkpoint_record(&record).is_ok() {
                        self.next_seq.fetch_add(1, Ordering::Relaxed);
                        summary.records_written += 1;
                        record_written = true;
                    }
                } else {
                    summary.records_oversized += 1;
                }
            }
            // Stored records stay resumable only while every reclaiming
            // checkpoint pairs with a *fresh* record: the rollback lets
            // the run overwrite pool words an older record's frontier
            // still reaches. If this reclaim produced no durable record
            // (oversized frontier, flush or write error), invalidate the
            // stale ones rather than leave a trap for recovery.
            if reclaimed_now > 0 && !record_written {
                let _ = machine.clear_checkpoint_records();
            }
        }
        summary.completed += 1;
        format!(
            "completed ({reclaimed_now} words reclaimed, {} pages flushed so far)",
            summary.pages_flushed
        )
    }

    /// Re-arms the trigger state after a quiesce: a completed checkpoint
    /// resets the policy counters for a full interval, a skipped one
    /// leaves the policy due; either way the next quiesce request
    /// (including the pool-pressure failsafe) waits out `backoff`
    /// capsules, so futile quiesces are paced, and reclamation is delayed
    /// a little, never lost.
    fn rearm(&self, completed: bool, backoff: u64) {
        let capsules = self.capsules.load(Ordering::Relaxed);
        if completed {
            if let CheckpointPolicy::EveryCapsules(k) = &self.policy {
                self.next_due.store(capsules + k, Ordering::Relaxed);
            }
            self.words_since.store(0, Ordering::Relaxed);
            self.manual_pending.store(false, Ordering::Release);
        }
        self.retry_at.store(capsules + backoff, Ordering::Relaxed);
    }
}

/// Traces the transitive closure of the frontier and returns, per
/// processor, the pool-relative end of its highest live word (0 when the
/// pool holds nothing live). `None` when any reachable frame's capsule
/// has no registered tracer — the caller must then skip reclamation.
///
/// Soundness (see the module docs): the §4.1 bump allocator means every
/// pool address a frame carries was allocated no later than the frame,
/// so keeping everything below the per-pool maximum of the traced
/// frames/extents keeps every live object.
pub(crate) fn trace_live_maxima(machine: &Machine, roots: &[Word]) -> Option<Vec<usize>> {
    let mem = machine.mem();
    let registry = machine.registry();
    let pools: Vec<Region> = (0..machine.procs()).map(|p| machine.pool(p)).collect();
    let mut max_end = vec![0usize; pools.len()];
    let keep = |max_end: &mut [usize], start: usize, len: usize| {
        for (p, pool) in pools.iter().enumerate() {
            if start < pool.end() && start.saturating_add(len) > pool.start {
                max_end[p] = max_end[p].max(start.saturating_add(len).min(pool.end()));
            }
        }
    };
    let mut visited = std::collections::HashSet::new();
    let mut stack: Vec<Word> = roots.to_vec();
    while let Some(handle) = stack.pop() {
        if handle == 0 || !visited.insert(handle) {
            continue;
        }
        // A typed handle that no longer parses would mean a live frame
        // was corrupted; refuse to reclaim anything.
        let frame = read_frame(mem, handle as usize).ok()?;
        keep(&mut max_end, frame.addr, frame_words(frame.args.len()));
        let mut refs = PoolRefs::new();
        if !registry.trace_refs(frame.capsule_id, &frame.args, &mut refs) {
            return None;
        }
        for h in refs.handles {
            stack.push(h);
        }
        for (start, len) in refs.extents {
            keep(&mut max_end, start, len);
        }
        // Belt and suspenders: any raw argument word that happens to land
        // in a pool keeps its word — covers hand-written states that
        // carry a bare cell address without a pool_refs override.
        for &w in &frame.args {
            let a = w as usize;
            if pools.iter().any(|pool| pool.contains(a)) {
                keep(&mut max_end, a, 1);
            }
        }
    }
    Some(
        max_end
            .iter()
            .zip(&pools)
            .map(|(end, pool)| end.saturating_sub(pool.start))
            .collect(),
    )
}

/// Validates `record` against `machine` and rehydrates its frontier.
/// Returns the planted-ready seeds on success; `None` when the record
/// does not match the machine shape or any handle fails to rehydrate.
pub(crate) fn checkpoint_seeds(machine: &Machine, record: &CheckpointRecord) -> Option<Vec<Word>> {
    if record.watermarks.len() != machine.procs() || record.frontier.is_empty() {
        return None;
    }
    for (p, wm) in record.watermarks.iter().enumerate() {
        if *wm as usize > machine.pool(p).len {
            return None;
        }
    }
    let registry = machine.registry();
    for handle in &record.frontier {
        registry.rehydrate(machine.mem(), *handle).ok()?;
    }
    Some(record.frontier.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors_and_default() {
        assert!(matches!(
            CheckpointPolicy::default(),
            CheckpointPolicy::EveryCapsules(DEFAULT_CHECKPOINT_CAPSULES)
        ));
        assert!(!CheckpointPolicy::disabled().is_enabled());
        assert!(CheckpointPolicy::every_capsules(8).is_enabled());
        assert!(CheckpointPolicy::every_pool_words(1 << 12).is_enabled());
        let (policy, trigger) = CheckpointPolicy::manual();
        assert!(policy.is_enabled());
        trigger.request();
        match policy {
            CheckpointPolicy::Manual(flag) => assert!(flag.load(Ordering::Acquire)),
            other => panic!("expected manual policy, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capsule_interval_rejected() {
        let _ = CheckpointPolicy::every_capsules(0);
    }

    #[test]
    fn trace_refuses_untraced_capsules_and_accepts_core_frames() {
        use ppm_core::{Machine, CORE_ID_FORK_PAIR};
        use ppm_pm::{store_frame, PmConfig};
        let m = Machine::with_pool_words(PmConfig::parallel(1, 1 << 16), 1 << 10);
        let pool = m.pool(0);

        // A fork-pair frame in the pool referencing two end frames above.
        let end_a = pool.start + 100;
        let end_b = pool.start + 200;
        store_frame(m.mem(), end_a, ppm_core::CORE_ID_END, &[]);
        store_frame(m.mem(), end_b, ppm_core::CORE_ID_END, &[]);
        let pair = pool.start + 300;
        store_frame(
            m.mem(),
            pair,
            CORE_ID_FORK_PAIR,
            &[end_a as Word, end_b as Word],
        );
        let maxima = trace_live_maxima(&m, &[pair as Word]).expect("core frames are traceable");
        // Highest live: the pair frame itself at offset 300.
        assert_eq!(maxima[0], 300 + frame_words(2));

        // An unregistered capsule id makes tracing refuse.
        let rogue = pool.start + 400;
        store_frame(m.mem(), rogue, 0xDEAD_BEEF, &[]);
        assert_eq!(trace_live_maxima(&m, &[rogue as Word]), None);
    }

    #[test]
    fn undecodable_typed_frame_refuses_the_trace() {
        use ppm_core::dsl::{CapsuleSet, Step};
        use ppm_core::Machine;
        use ppm_pm::{store_frame, PmConfig};
        let m = Machine::with_pool_words(PmConfig::parallel(1, 1 << 16), 1 << 10);
        let mut set = CapsuleSet::new(&m);
        let def = set.define("ckpt-test/flagged", |_st: &bool, k, _ctx| Ok(Step::Jump(k)));
        let pool = m.pool(0);
        // Word 5 is not a bool: the derived tracer must report the frame
        // as untraceable (None), not silently trace zero references —
        // its live children would otherwise be reclaimed.
        let bad = pool.start + 100;
        store_frame(m.mem(), bad, def.id(), &[5, 0]);
        assert_eq!(trace_live_maxima(&m, &[bad as Word]), None);
        // The well-formed twin traces fine.
        let good = pool.start + 200;
        store_frame(m.mem(), good, def.id(), &[1, 0]);
        let maxima = trace_live_maxima(&m, &[good as Word]).expect("decodes");
        assert_eq!(maxima[0], 200 + frame_words(2));
    }

    #[test]
    fn checkpoint_seeds_validate_shape_and_rehydration() {
        use ppm_core::Machine;
        use ppm_pm::{store_frame, PmConfig};
        let m = Machine::with_pool_words(PmConfig::parallel(2, 1 << 16), 1 << 10);
        let f = m.pool(0).start + 64;
        store_frame(m.mem(), f, ppm_core::CORE_ID_END, &[]);
        let good = CheckpointRecord {
            seq: 1,
            epoch: 1,
            capsules: 10,
            watermarks: vec![128, 0],
            frontier: vec![f as Word],
        };
        assert_eq!(checkpoint_seeds(&m, &good), Some(vec![f as Word]));

        let wrong_procs = CheckpointRecord {
            watermarks: vec![128],
            ..good.clone()
        };
        assert_eq!(checkpoint_seeds(&m, &wrong_procs), None);

        let oversized_wm = CheckpointRecord {
            watermarks: vec![1 << 20, 0],
            ..good.clone()
        };
        assert_eq!(checkpoint_seeds(&m, &oversized_wm), None);

        let dangling = CheckpointRecord {
            frontier: vec![3],
            ..good
        };
        assert_eq!(checkpoint_seeds(&m, &dangling), None);
    }
}
