//! Abstract state-machine models of the three hard protocols, checked
//! exhaustively by `ppm-check`.
//!
//! Each submodule extracts one protocol into a small value-type state
//! machine with an explicit transition enum, implementing
//! [`ppm_check::Model`] so the bounded BFS explorer can enumerate every
//! interleaving (with crash transitions at every persist boundary) and
//! report minimal counterexample traces:
//!
//! * [`steal`] — the Figure 3 Chase-Lev steal/adoption protocol at
//!   capsule granularity: `popBottom`/`popTop`/`helpPopTop` with tagged
//!   entries, frame-backed restart pointers, the Lemma A.10 adoption arm
//!   and dead-owner local steals. Invariants: `NoDoubleExecution` (W2)
//!   and the `NoLostTask` conservation law (W1).
//! * [`lease`] — the cross-process lease/heartbeat/tombstone oracle of
//!   the sharded runtime (`cluster` module): renewal vs. expiry races,
//!   coordinator tombstones, false-positive death verdicts, CAM-guarded
//!   adoption claims. Invariants: `TombstoneSticky` (no resurrected
//!   tombstone), `NoDoubleClaim`, `NoDoneAdoption`.
//! * [`quiesce`] — the checkpoint quiesce/skip-and-retry barrier
//!   (`checkpoint` module): park at capsule boundaries, skip the epoch
//!   when a transfer is in flight, trace live frames, reclaim the rest.
//!   Invariant: `NoLiveFrameReclaim` (checkpoint GC never reclaims a
//!   frame a processor still needs).
//!
//! Every model carries deliberate **mutations** (disabled by default)
//! that reintroduce a specific protocol bug — dropping the tombstone
//! check, skipping the busy check, removing the Lemma A.10 arm — so the
//! test suite can demonstrate that the explorer actually produces the
//! expected minimal counterexample for each (see `tests/model_check.rs`).
//!
//! The TLA+ twins of these state machines live in `specs/tla/`; the
//! invariant names match the TLA+ properties one-to-one.

pub mod lease;
pub mod quiesce;
pub mod steal;

pub use lease::{LeaseAction, LeaseModel, LeaseSt};
pub use quiesce::{QuiesceAction, QuiesceModel, QuiesceSt};
pub use steal::{Inj, StealAction, StealModel, StealMutation, StealSt};
