//! The checkpoint quiesce/skip-and-retry barrier as a checkable state
//! machine.
//!
//! Mirrors the `checkpoint` module's protocol: processors run capsules
//! and visit persist boundaries; once a checkpoint is requested, each
//! processor parks at its next boundary; the last arriver runs the
//! checkpoint. The checkpoint harvests the frontier and **skips the
//! epoch** (rearming a retry) when any deque transfer is still in
//! flight — a steal caught between its CAM and its check, or a
//! `pushBottom` between its commit arms — because a frame in transfer is
//! referenced by no harvestable frontier entry, and tracing would miss
//! it. Only after a clean harvest does the checkpoint roll the pool
//! watermarks, which is what garbage-collects dead frames.
//!
//! The model gives each processor one live frame and a two-phase
//! operation (`StartOp`/`EndOp`) that detaches the frame into an
//! in-flight limbo between boundaries — the abstraction of a frame
//! handle riding a `Taken` entry or an uncommitted fork transfer.
//!
//! Invariant (mirrored by the `GCSafety` property sketched alongside the
//! TLA+ lease spec):
//!
//! * **NoLiveFrameReclaim** — watermark-rolling GC never reclaims a
//!   frame that a processor still dereferences after the checkpoint.
//!   The [`QuiesceModel::skip_busy_check`] mutation lets the checkpoint
//!   proceed over an in-flight transfer, and the explorer produces the
//!   minimal trace: start an op, park everyone, checkpoint, finish the
//!   op into a reclaimed frame.

use ppm_check::Model;

/// Processors in the model.
pub const NPROCS: usize = 2;
/// Capsule-boundary visits each processor makes before exiting.
pub const BUDGET: u8 = 3;

/// Where a processor's frame currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Frame {
    /// Referenced from the processor's frontier entry — harvestable.
    Live,
    /// Detached mid-transfer (riding a steal/fork window) — referenced
    /// by no frontier entry until the op completes.
    InFlight,
    /// Reclaimed by a checkpoint's watermark roll.
    Reclaimed,
}

/// One processor's state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcSt {
    /// Remaining boundary visits before this processor exits.
    pub budget: u8,
    /// Parked at the quiesce barrier.
    pub parked: bool,
    /// Exited (left the barrier's live set).
    pub exited: bool,
    /// The processor's frame.
    pub frame: Frame,
    /// The processor dereferenced its frame after it was reclaimed —
    /// the disaster `NoLiveFrameReclaim` rules out.
    pub used_reclaimed: bool,
}

/// The global protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QuiesceSt {
    /// Per-processor states.
    pub procs: [ProcSt; NPROCS],
    /// A checkpoint has been requested (due policy or manual trigger).
    pub requested: bool,
    /// Checkpoints completed (for bounding).
    pub epochs: u8,
    /// Checkpoints skipped busy (skip-and-retry path taken).
    pub skipped: u8,
}

/// One protocol transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuiesceAction {
    /// Processor `p` detaches its frame into a transfer window.
    StartOp(u8),
    /// Processor `p` completes the transfer, re-attaching its frame.
    EndOp(u8),
    /// Processor `p` reaches a persist boundary: parks if a checkpoint
    /// is requested, otherwise burns one budget step (exiting at zero).
    Boundary(u8),
    /// The checkpoint policy comes due.
    Request,
    /// The last arriver runs the checkpoint over the quiesced machine:
    /// harvest, skip-if-busy (or not, under mutation), trace, roll
    /// watermarks (reclaiming untraced frames), unpark everyone.
    RunCheckpoint,
}

/// The model: faithful by default; the mutation removes the busy check.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuiesceModel {
    /// Mutation: run the watermark roll even when a transfer is in
    /// flight, instead of skipping the epoch and rearming a retry.
    pub skip_busy_check: bool,
}

impl QuiesceModel {
    /// The mutated protocol (for counterexample demonstrations).
    pub fn mutated() -> Self {
        QuiesceModel {
            skip_busy_check: true,
        }
    }

    fn all_parked(s: &QuiesceSt) -> bool {
        s.procs.iter().all(|p| p.parked || p.exited) && s.procs.iter().any(|p| p.parked)
    }
}

impl Model for QuiesceModel {
    type State = QuiesceSt;
    type Action = QuiesceAction;

    fn initial(&self) -> Vec<QuiesceSt> {
        vec![QuiesceSt {
            procs: [ProcSt {
                budget: BUDGET,
                parked: false,
                exited: false,
                frame: Frame::Live,
                used_reclaimed: false,
            }; NPROCS],
            requested: false,
            epochs: 0,
            skipped: 0,
        }]
    }

    fn actions(&self, s: &QuiesceSt) -> Vec<QuiesceAction> {
        let mut acts = Vec::new();
        for i in 0..NPROCS as u8 {
            let p = &s.procs[i as usize];
            if p.exited || p.parked {
                continue;
            }
            acts.push(QuiesceAction::Boundary(i));
            match p.frame {
                Frame::Live => acts.push(QuiesceAction::StartOp(i)),
                // EndOp stays enabled on a Reclaimed frame: the transfer
                // completes regardless — that is exactly the disaster.
                Frame::InFlight | Frame::Reclaimed => acts.push(QuiesceAction::EndOp(i)),
            }
        }
        if !s.requested && s.epochs + s.skipped < 2 {
            acts.push(QuiesceAction::Request);
        }
        if s.requested && Self::all_parked(s) {
            acts.push(QuiesceAction::RunCheckpoint);
        }
        acts
    }

    fn step(&self, s: &QuiesceSt, a: &QuiesceAction) -> QuiesceSt {
        let mut n = *s;
        match *a {
            QuiesceAction::StartOp(i) => n.procs[i as usize].frame = Frame::InFlight,
            QuiesceAction::EndOp(i) => {
                let p = &mut n.procs[i as usize];
                if p.frame == Frame::Reclaimed {
                    // The op completes into a frame GC already took.
                    p.used_reclaimed = true;
                }
                p.frame = Frame::Live;
            }
            QuiesceAction::Boundary(i) => {
                let p = &mut n.procs[i as usize];
                if s.requested {
                    p.parked = true;
                } else if p.budget == 1 {
                    p.budget = 0;
                    p.exited = true;
                } else {
                    p.budget -= 1;
                }
            }
            QuiesceAction::Request => n.requested = true,
            QuiesceAction::RunCheckpoint => {
                let busy = s.procs.iter().any(|p| p.frame == Frame::InFlight);
                if busy && !self.skip_busy_check {
                    // harvest_frontier failed: skip the epoch, rearm.
                    n.skipped += 1;
                } else {
                    // Trace reaches every Live frame; the watermark roll
                    // reclaims everything else — including any InFlight
                    // frame if the busy check was skipped.
                    for p in n.procs.iter_mut() {
                        if p.frame == Frame::InFlight {
                            p.frame = Frame::Reclaimed;
                        }
                    }
                    n.epochs += 1;
                }
                n.requested = false;
                for p in n.procs.iter_mut() {
                    p.parked = false;
                }
            }
        }
        n
    }

    fn invariant(&self, s: &QuiesceSt) -> Result<(), String> {
        for (i, p) in s.procs.iter().enumerate() {
            if p.used_reclaimed {
                return Err(format!(
                    "NoLiveFrameReclaim: processor {i} completed a transfer into a frame \
                     the checkpoint GC had reclaimed"
                ));
            }
        }
        Ok(())
    }

    fn on_terminal(&self, s: &QuiesceSt) -> Result<(), String> {
        // Terminal only when everyone exited (parked processors always
        // have RunCheckpoint ahead); a requested checkpoint with no live
        // processor left is simply dropped, as in the real ctl.
        if s.procs.iter().any(|p| !p.exited) && !s.requested {
            return Err("quiesce barrier wedged with live processors".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_check::{Explorer, ExplorerConfig};

    #[test]
    fn faithful_barrier_is_clean_and_exhaustible() {
        let report = Explorer::new(ExplorerConfig::depth(30)).run(&QuiesceModel::default());
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "bounded model should be exhaustible");
        assert!(report.states > 100, "explored {} states", report.states);
    }

    #[test]
    fn skipping_the_busy_check_reclaims_a_live_frame() {
        let report = Explorer::new(ExplorerConfig::depth(30)).run(&QuiesceModel::mutated());
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoLiveFrameReclaim"),
            "unexpected reason: {}",
            cex.reason
        );
        // Minimal: StartOp, Request, park both, checkpoint, EndOp.
        assert!(cex.trace.len() <= 7, "trace: {:?}", cex.trace);
    }
}
