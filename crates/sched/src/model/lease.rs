//! The cross-process lease/heartbeat/tombstone oracle as a checkable
//! state machine.
//!
//! Mirrors the `cluster` module's protocol: every worker process renews
//! a per-shard lease slot (`Alive{deadline}`, bumped sequence) well
//! inside its validity window; survivors compare sibling deadlines
//! against the shared clock and mark expired shards adoptable (sticky);
//! the coordinator, after reaping a worker's real exit status, writes a
//! `Dead` tombstone that overrides any deadline; a worker that finishes
//! writes `Done`, which is *never* dead. Adoption of a dead shard's work
//! goes through the CAM-guarded steal path, so at most one claimant
//! wins even when the death verdict was a false positive (a slow worker
//! whose lease expired while it was descheduled — the model lets the
//! clock tick past a deadline with the worker still `Running`).
//!
//! Time is a bounded logical clock: `Tick` advances it
//! nondeterministically, so every relative order of renewals, expiries,
//! observations and tombstones is explored.
//!
//! Invariants (TLA+ twins in `specs/tla/LeaseAdoption.tla`):
//!
//! * **TombstoneSticky** — once a shard's lease is `Dead` it stays
//!   `Dead`: no later renewal resurrects it. The real protocol
//!   guarantees this by only tombstoning *reaped* workers (a reaped
//!   process cannot renew). The [`LeaseModel::drop_tombstone_check`]
//!   mutation removes that precondition, and the explorer then finds
//!   the minimal resurrection trace: tombstone a running worker, let it
//!   renew.
//! * **NoDoubleClaim** — each shard's work is claimed at most once
//!   (deque CAM arbitration).
//! * **NoDoneAdoption** — a `Done` lease is never judged dead, so a
//!   completed shard is never marked adoptable.

use ppm_check::Model;

/// Worker shards in the model (shard 0's worker doubles as observer of
/// shard 1 and vice versa; the coordinator is the reap/tombstone actor).
pub const NSHARDS: usize = 2;
/// Lease validity window in ticks.
pub const LEASE_TICKS: u8 = 2;
/// Logical clock bound.
pub const MAX_TICKS: u8 = 6;

/// A lease slot's state — `LeaseState` plus the deadline payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Slot {
    /// Never written.
    Blank,
    /// Heartbeat: dead once `deadline` passes without a renewal.
    Alive {
        /// Expiry tick.
        deadline: u8,
    },
    /// The worker exited deliberately after completing; never dead.
    Done,
    /// Tombstone written by the coordinator after reaping the worker.
    Dead,
}

/// The real OS process behind a shard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proc {
    /// Alive and renewing (perhaps slowly — renewal is nondeterministic).
    Running,
    /// SIGKILLed; will never renew again. Awaiting the coordinator.
    Crashed,
    /// Reaped by the coordinator (`waitpid` returned).
    Reaped,
    /// Exited cleanly after finishing its shard's work.
    Exited,
}

/// A shard's unit of work and who claimed it (the deque CAM abstracted
/// to a single claim slot).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Work {
    /// Not yet claimed.
    Pending,
    /// Claimed (popped by the owner, or adopted by a survivor).
    Claimed {
        /// Who claimed: the owning shard or the adopter.
        by: u8,
    },
}

/// The global protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LeaseSt {
    /// Logical clock.
    pub now: u8,
    /// Per-shard lease slots (superblock words).
    pub lease: [Slot; NSHARDS],
    /// Per-shard worker process status.
    pub proc: [Proc; NSHARDS],
    /// Sticky adoptable marks: `marked[observer][sibling]`.
    pub marked: [[bool; NSHARDS]; NSHARDS],
    /// Per-shard work item.
    pub work: [Work; NSHARDS],
    /// History: shards that have ever been tombstoned (for stickiness).
    pub tombstoned: [bool; NSHARDS],
    /// History: an observer judged a `Done` lease dead (must never
    /// happen — `is_dead` returns false for `Done`).
    pub done_judged_dead: bool,
}

/// One protocol transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeaseAction {
    /// Advance the shared clock one tick.
    Tick,
    /// Worker `s` renews its lease (`Lease::alive(seq+1, validity)`).
    Renew(u8),
    /// Worker `s` pops its own work through its deque (CAM).
    ClaimOwn(u8),
    /// Worker `s` finishes: work claimed by itself, lease `Done`, exit.
    Finish(u8),
    /// SIGKILL worker `s`.
    Crash(u8),
    /// The coordinator reaps crashed worker `s` (`waitpid`).
    Reap(u8),
    /// The coordinator tombstones shard `s`'s lease.
    Tombstone(u8),
    /// Observer `o`'s lease monitor judges sibling `s` dead
    /// (`lease.is_dead(now)`) and marks it adoptable (sticky).
    Observe {
        /// The observing worker's shard.
        o: u8,
        /// The sibling being judged.
        s: u8,
    },
    /// Observer `o` adopts marked sibling `s`'s work (CAM steal).
    Adopt {
        /// The adopting worker's shard.
        o: u8,
        /// The dead (or presumed-dead) sibling.
        s: u8,
    },
}

/// The model: faithful by default; the mutation reintroduces the
/// resurrected-tombstone bug.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaseModel {
    /// Mutation: tombstone without requiring the worker to be reaped
    /// first (the coordinator "times out" a live worker). The next
    /// renewal then resurrects the tombstone — the exact bug
    /// `TombstoneSticky` exists to rule out.
    pub drop_tombstone_check: bool,
}

impl LeaseModel {
    /// The mutated protocol (for counterexample demonstrations).
    pub fn mutated() -> Self {
        LeaseModel {
            drop_tombstone_check: true,
        }
    }

    fn is_dead(slot: &Slot, now: u8) -> bool {
        match slot {
            Slot::Dead => true,
            Slot::Alive { deadline } => now > *deadline,
            Slot::Done | Slot::Blank => false,
        }
    }
}

impl Model for LeaseModel {
    type State = LeaseSt;
    type Action = LeaseAction;

    fn initial(&self) -> Vec<LeaseSt> {
        // Both workers started with fresh leases (the coordinator's
        // startup lease), work pending.
        vec![LeaseSt {
            now: 0,
            lease: [Slot::Alive {
                deadline: LEASE_TICKS,
            }; NSHARDS],
            proc: [Proc::Running; NSHARDS],
            marked: [[false; NSHARDS]; NSHARDS],
            work: [Work::Pending; NSHARDS],
            tombstoned: [false; NSHARDS],
            done_judged_dead: false,
        }]
    }

    fn actions(&self, s: &LeaseSt) -> Vec<LeaseAction> {
        let mut acts = Vec::new();
        if s.now < MAX_TICKS {
            acts.push(LeaseAction::Tick);
        }
        for i in 0..NSHARDS as u8 {
            let iu = i as usize;
            if s.proc[iu] == Proc::Running {
                acts.push(LeaseAction::Renew(i));
                if s.work[iu] == Work::Pending {
                    acts.push(LeaseAction::ClaimOwn(i));
                }
                if s.work[iu] == (Work::Claimed { by: i }) {
                    acts.push(LeaseAction::Finish(i));
                }
                acts.push(LeaseAction::Crash(i));
                for o in 0..NSHARDS as u8 {
                    if o != i {
                        // i's monitor judges sibling o.
                        if !s.marked[iu][o as usize] && Self::is_dead(&s.lease[o as usize], s.now) {
                            acts.push(LeaseAction::Observe { o: i, s: o });
                        }
                        if s.marked[iu][o as usize] && s.work[o as usize] == Work::Pending {
                            acts.push(LeaseAction::Adopt { o: i, s: o });
                        }
                    }
                }
            }
            if s.proc[iu] == Proc::Crashed {
                acts.push(LeaseAction::Reap(i));
            }
            let reaped = s.proc[iu] == Proc::Reaped;
            if (reaped || self.drop_tombstone_check) && s.lease[iu] != Slot::Dead {
                acts.push(LeaseAction::Tombstone(i));
            }
        }
        acts
    }

    fn step(&self, s: &LeaseSt, a: &LeaseAction) -> LeaseSt {
        let mut n = *s;
        match *a {
            LeaseAction::Tick => n.now += 1,
            LeaseAction::Renew(i) => {
                n.lease[i as usize] = Slot::Alive {
                    deadline: s.now.saturating_add(LEASE_TICKS),
                };
            }
            LeaseAction::ClaimOwn(i) => {
                n.work[i as usize] = Work::Claimed { by: i };
            }
            LeaseAction::Finish(i) => {
                n.lease[i as usize] = Slot::Done;
                n.proc[i as usize] = Proc::Exited;
            }
            LeaseAction::Crash(i) => n.proc[i as usize] = Proc::Crashed,
            LeaseAction::Reap(i) => n.proc[i as usize] = Proc::Reaped,
            LeaseAction::Tombstone(i) => {
                n.lease[i as usize] = Slot::Dead;
                n.tombstoned[i as usize] = true;
            }
            LeaseAction::Observe { o, s: sib } => {
                n.marked[o as usize][sib as usize] = true;
                if s.lease[sib as usize] == Slot::Done {
                    n.done_judged_dead = true;
                }
            }
            LeaseAction::Adopt { o, s: sib } => {
                // The CAM: only a Pending slot can be claimed, and the
                // action is only enabled then — exactly-once by
                // construction of the deque protocol.
                n.work[sib as usize] = Work::Claimed { by: o };
            }
        }
        n
    }

    fn invariant(&self, s: &LeaseSt) -> Result<(), String> {
        // NoDoneAdoption: a Done lease is never judged dead (a shard
        // that merely *later* completes may carry a stale sticky mark
        // from a false-positive expiry — that is safe, the CAM
        // arbitrates — but the judgment itself must never fire on Done).
        if s.done_judged_dead {
            return Err("NoDoneAdoption: a Done lease was judged dead".into());
        }
        for i in 0..NSHARDS {
            // TombstoneSticky: once Dead, forever Dead.
            if s.tombstoned[i] && s.lease[i] != Slot::Dead {
                return Err(format!(
                    "TombstoneSticky: shard {i}'s tombstone was overwritten by {:?}",
                    s.lease[i]
                ));
            }
            // NoDoubleClaim is structural (Work has one claimant), but a
            // self-claim by an exited worker or claim of Done work would
            // show here; assert the adopter gate instead: work claimed
            // by a non-owner implies the owner was marked adoptable.
            if let Work::Claimed { by } = s.work[i] {
                if by as usize != i && !s.marked[by as usize][i] {
                    return Err(format!(
                        "NoDoubleClaim: shard {i}'s work claimed by {by} without an adoptable mark"
                    ));
                }
            }
        }
        Ok(())
    }

    fn fingerprint(&self, s: &LeaseSt) -> u64 {
        // Symmetry reduction over shard ids: the two shards are
        // interchangeable, so hash the lexicographically smaller of the
        // state and its shard-swapped twin.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let swapped = LeaseSt {
            now: s.now,
            lease: [s.lease[1], s.lease[0]],
            proc: [s.proc[1], s.proc[0]],
            marked: [
                [s.marked[1][1], s.marked[1][0]],
                [s.marked[0][1], s.marked[0][0]],
            ],
            work: [swap_claimant(s.work[1]), swap_claimant(s.work[0])],
            tombstoned: [s.tombstoned[1], s.tombstoned[0]],
            done_judged_dead: s.done_judged_dead,
        };
        let canonical = if format!("{s:?}") <= format!("{swapped:?}") {
            s
        } else {
            &swapped
        };
        let mut h = DefaultHasher::new();
        canonical.hash(&mut h);
        h.finish()
    }
}

fn swap_claimant(w: Work) -> Work {
    match w {
        Work::Pending => Work::Pending,
        Work::Claimed { by } => Work::Claimed { by: 1 - by },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_check::{Explorer, ExplorerConfig};

    #[test]
    fn faithful_oracle_is_clean_at_depth_12() {
        let report = Explorer::new(ExplorerConfig::depth(12)).run(&LeaseModel::default());
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(report.states > 1_000, "explored {} states", report.states);
    }

    #[test]
    fn dropping_the_tombstone_check_resurrects_a_tombstone() {
        let report = Explorer::new(ExplorerConfig::depth(12)).run(&LeaseModel::mutated());
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("TombstoneSticky"),
            "unexpected reason: {}",
            cex.reason
        );
        // Minimal trace: tombstone a running worker, then it renews.
        assert_eq!(cex.trace.len(), 2, "trace: {:?}", cex.trace);
    }

    #[test]
    fn symmetry_reduction_shrinks_the_space() {
        struct NoSym(LeaseModel);
        impl Model for NoSym {
            type State = LeaseSt;
            type Action = LeaseAction;
            fn initial(&self) -> Vec<LeaseSt> {
                self.0.initial()
            }
            fn actions(&self, s: &LeaseSt) -> Vec<LeaseAction> {
                self.0.actions(s)
            }
            fn step(&self, s: &LeaseSt, a: &LeaseAction) -> LeaseSt {
                self.0.step(s, a)
            }
            fn invariant(&self, s: &LeaseSt) -> Result<(), String> {
                self.0.invariant(s)
            }
            // default fingerprint: no symmetry folding
        }
        let folded = Explorer::new(ExplorerConfig::depth(8)).run(&LeaseModel::default());
        let plain = Explorer::new(ExplorerConfig::depth(8)).run(&NoSym(LeaseModel::default()));
        assert!(
            folded.states < plain.states,
            "folded {} !< plain {}",
            folded.states,
            plain.states
        );
    }
}
