//! The Figure 3 steal/adoption protocol as a checkable state machine.
//!
//! The model mirrors `capsules.rs` **capsule by capsule**: every
//! [`Pc`] variant is one capsule of the real decomposition (same names,
//! same latched registers, same CAM targets), and one [`StealAction::Step`]
//! runs exactly one capsule atomically. That granularity matches the
//! paper's proof structure — capsules with at most one CAM are idempotent,
//! so interleavings *between* persist boundaries are the complete race
//! space — and [`StealAction::Crash`] transitions at every boundary model
//! hard faults at each persist boundary. A dead processor's program
//! counter freezes in place: it *is* the restart pointer (the real engine
//! persists the active capsule handle at every boundary), and the
//! dead-owner local-steal path adopts it verbatim, which reproduces the
//! Lemma A.10 situation exactly (an adopting thief re-running the dead
//! owner's `popBottom/check` capsule observes its own `Taken` with tag
//! `+1` and claims the thread).
//!
//! Scope: two processors, two seeded jobs, no forks (`pushBottom` is
//! exercised against the *real* code by `sim::SimSched`, which drives
//! actual fork-join computations through scripted interleavings).
//!
//! Invariants (TLA+ twins in `specs/tla/FrontierAdoption.tla`):
//!
//! * **NoDoubleExecution** (W2): each task completes at most once, and at
//!   most one live processor is ever committed to a task. At capsule
//!   granularity this is *strict* — replay-after-crash resumes before the
//!   effect, never after, so not even a crash justifies a second
//!   completion.
//! * **NoLostTask** (W1), as a conservation law: every unexecuted task is
//!   always *referenced* — by a `Job` entry above `top`, by a live
//!   processor's latched capsule registers, or by a dead processor's
//!   frozen restart pointer that is still adoptable. A transition that
//!   drops the last reference is the bug, and BFS pins it at minimal
//!   depth. (Checked while at most one crash has occurred; a second
//!   crash mid-adoption degrades to process-level recovery in the real
//!   system and is out of the model's scope.)

use ppm_check::Model;

/// Deque slots per processor (no forks, so 4 is enough headroom for the
/// two seeded jobs plus the clear-above slot).
pub const NSLOTS: usize = 4;
/// Processors in the model: one owner with seeded work, one thief.
pub const NPROCS: usize = 2;
/// Seeded tasks, both initially jobs in processor 0's deque.
pub const NTASKS: usize = 2;

/// An entry value — the four states of Figure 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Val {
    /// Nothing here.
    Empty,
    /// The owning thread's (or an adopted thread's) local entry.
    Local,
    /// A stealable job (the task id stands in for the frame handle).
    Job(u8),
    /// A steal in progress: the thief's identity and where its local
    /// entry will materialize.
    Taken {
        /// Thief processor.
        proc: u8,
        /// Slot in the thief's deque (its `bot` at steal time).
        slot: u8,
        /// Tag the thief's slot had at steal time.
        tag: u8,
    },
}

/// A tagged deque entry (`⟨tag, value⟩` of Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Entry {
    /// ABA-prevention tag, bumped by every transition of this slot.
    pub tag: u8,
    /// The entry value.
    pub val: Val,
}

impl Entry {
    fn new(tag: u8, val: Val) -> Self {
        Entry { tag, val }
    }
}

/// One processor's WS-deque.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Deque {
    /// The tagged entries.
    pub entries: [Entry; NSLOTS],
    /// Steal end (grows upward past consumed entries).
    pub top: u8,
    /// Owner end (the running thread's local entry lives at `bot`).
    pub bot: u8,
}

/// What follows a `helpPopTop` interlude (the `then` continuation the
/// real capsules thread through `help_pop_top`). The victim deque is the
/// enclosing help's — the real code always helps on the deque it is
/// about to operate on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Then {
    /// Enter `popTop/read` with the thief's latched `(bot, tag)`.
    PtRead {
        /// Thief's `bot` at steal entry.
        b: u8,
        /// Tag of the thief's `entry(bot)` at steal entry.
        c: u8,
    },
    /// `popTop/check` after the job-steal CAM.
    CheckJob {
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended new entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `popTop/checkLocal` after the local-steal CAM.
    CheckLocal {
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended new entry.
        new: Entry,
    },
    /// Give up and try another steal.
    Steal,
}

/// One capsule of the Figure 3 decomposition — the model's program
/// counter, with the capsule's latched (boundary-committed) registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pc {
    /// `sched/popBottom/read` (also the scheduler's findWork entry).
    FindWork,
    /// `sched/popBottom/cam` on deque `d`.
    PbCam {
        /// Deque the popBottom chain was entered on (latched: an adopter
        /// re-runs it against the *dead owner's* deque).
        d: u8,
        /// Latched `bot`.
        b: u8,
        /// Entry read below `bot`.
        old: Entry,
        /// The job's task id.
        f: u8,
    },
    /// `sched/popBottom/check`.
    PbCheck {
        /// Deque the chain runs on.
        d: u8,
        /// Latched `bot`.
        b: u8,
        /// The CAM's intended new entry.
        new: Entry,
        /// The job's task id.
        f: u8,
    },
    /// `sched/steal`: termination check, victim pick, own-bottom read.
    Steal,
    /// `sched/help/read` on deque `v`, then `then`.
    HelpRead {
        /// Deque being helped.
        v: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/help/camThief`.
    HelpCamThief {
        /// Deque being helped.
        v: u8,
        /// `top` at help-read time.
        t: u8,
        /// Thief named by the `Taken` entry.
        tproc: u8,
        /// Thief slot named by the `Taken` entry.
        tslot: u8,
        /// Tag named by the `Taken` entry.
        itag: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/help/camTop`.
    HelpCamTop {
        /// Deque being helped.
        v: u8,
        /// `top` value to advance from.
        t: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/popTop/read` on victim `v`.
    PtRead {
        /// Victim deque.
        v: u8,
        /// Thief's latched `bot`.
        b: u8,
        /// Tag of thief's `entry(bot)`.
        c: u8,
    },
    /// `sched/popTop/cam` (job steal).
    PtCam {
        /// Victim deque.
        v: u8,
        /// Victim slot.
        i: u8,
        /// Expected entry.
        old: Entry,
        /// Intended entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `sched/popTop/check` (job steal).
    PtCheckJob {
        /// Victim deque.
        v: u8,
        /// Victim slot.
        i: u8,
        /// The CAM's intended entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `sched/popTop/clearAboveRead` (local steal, dead owner).
    PtClearAboveRead {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// The local entry read.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
    },
    /// `sched/popTop/clearAboveWrite`.
    PtClearAboveWrite {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// The local entry read.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
        /// Tag of the entry above, latched for the clearing write.
        above_tag: u8,
    },
    /// `sched/popTop/camLocal`.
    PtCamLocal {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// Expected entry.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
    },
    /// `sched/popTop/checkLocal`: on a win, read the dead owner's
    /// restart pointer and adopt it.
    PtCheckLocal {
        /// Victim deque (owned by a dead processor).
        v: u8,
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended entry.
        new: Entry,
    },
    /// The thread body: one capsule that commits the task's effect.
    Exec {
        /// The task being executed.
        f: u8,
    },
    /// `sched/clearBottom` after a thread ends.
    ClearBottom,
    /// Saw the done flag in `steal`; this processor is finished.
    Halted,
}

impl Then {
    fn into_pc(self, v: u8) -> Pc {
        match self {
            Then::PtRead { b, c } => Pc::PtRead { v, b, c },
            Then::CheckJob { i, new, f } => Pc::PtCheckJob { v, i, new, f },
            Then::CheckLocal { i, new } => Pc::PtCheckLocal { v, i, new },
            Then::Steal => Pc::Steal,
        }
    }
}

/// The global protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StealSt {
    /// Per-processor deques.
    pub deq: [Deque; NPROCS],
    /// Per-processor program counters. A dead processor's pc freezes and
    /// doubles as its persistent restart pointer.
    pub pc: [Pc; NPROCS],
    /// Liveness oracle (`isLive`).
    pub alive: [bool; NPROCS],
    /// Completion count per task — the committed effect.
    pub runs: [u8; NTASKS],
    /// Hard faults injected so far.
    pub crashes: u8,
}

impl StealSt {
    fn done(&self) -> bool {
        self.runs.iter().all(|r| *r >= 1)
    }
}

/// One transition: run one capsule on a processor, or hard-fault it at
/// the current persist boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StealAction {
    /// Run processor `p`'s current capsule atomically.
    Step(u8),
    /// Hard-fault processor `p` (its pc freezes as the restart pointer).
    Crash(u8),
}

/// Deliberate protocol bugs, reintroduced one at a time so the test
/// suite can demonstrate the explorer catches each with a minimal trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StealMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Drop the Lemma A.10 arm of `popBottom/check`: an adopting thief
    /// whose CAM won no longer recognizes its own `Taken` and abandons
    /// the thread — a lost task.
    DropLemmaA10,
    /// Skip the `isLive` gate on local steals: thieves adopt the local
    /// entry of a *live* owner — the owner and the adopter both run the
    /// thread, a double execution.
    AdoptLiveLocal,
}

/// The model: configuration plus the [`Model`] implementation.
#[derive(Clone, Copy, Debug)]
pub struct StealModel {
    /// Maximum hard faults to inject (default 1; the conservation
    /// invariant is checked while `crashes <= 1`).
    pub crash_budget: u8,
    /// Which deliberate bug (if any) to reintroduce.
    pub mutation: StealMutation,
}

impl Default for StealModel {
    fn default() -> Self {
        StealModel {
            crash_budget: 1,
            mutation: StealMutation::None,
        }
    }
}

impl StealModel {
    /// The faithful protocol with `crash_budget` hard faults.
    pub fn with_crashes(crash_budget: u8) -> Self {
        StealModel {
            crash_budget,
            ..Default::default()
        }
    }

    /// A mutated protocol (for counterexample demonstrations).
    pub fn mutated(mutation: StealMutation) -> Self {
        StealModel {
            crash_budget: 1,
            mutation,
        }
    }

    /// Does this frozen pc hold task `t` in a latched register (i.e. is
    /// the capsule committed to delivering `t` if re-run)?
    fn pc_owns(pc: &Pc, t: u8) -> bool {
        match pc {
            Pc::PbCam { f, .. }
            | Pc::PbCheck { f, .. }
            | Pc::PtCam { f, .. }
            | Pc::PtCheckJob { f, .. }
            | Pc::Exec { f } => *f == t,
            // The latched handle also rides a help interlude's
            // continuation (popTop/cam jumps to help-then-check).
            Pc::HelpRead {
                then: Then::CheckJob { f, .. },
                ..
            }
            | Pc::HelpCamThief {
                then: Then::CheckJob { f, .. },
                ..
            }
            | Pc::HelpCamTop {
                then: Then::CheckJob { f, .. },
                ..
            } => *f == t,
            _ => false,
        }
    }

    /// If this pc is mid-way through a dead-owner local steal, the owner
    /// whose restart pointer it will adopt.
    fn adoption_target(pc: &Pc) -> Option<u8> {
        match pc {
            Pc::PtClearAboveRead { v, .. }
            | Pc::PtClearAboveWrite { v, .. }
            | Pc::PtCamLocal { v, .. }
            | Pc::PtCheckLocal { v, .. } => Some(*v),
            Pc::HelpRead {
                v,
                then: Then::CheckLocal { .. },
            }
            | Pc::HelpCamThief {
                v,
                then: Then::CheckLocal { .. },
                ..
            }
            | Pc::HelpCamTop {
                v,
                then: Then::CheckLocal { .. },
                ..
            } => Some(*v),
            _ => None,
        }
    }

    /// Whether dead processor `p`'s frozen restart pointer can still be
    /// reached by an adopter: a `Local` at or above its `top` (the
    /// local-steal path takes it), or an `Empty` slot that a pending
    /// `helpPopTop` will convert to `Local` (a `Taken` entry somewhere
    /// names it).
    fn adoptable(s: &StealSt, p: usize) -> bool {
        let d = &s.deq[p];
        ((d.top as usize)..NSLOTS).any(|i| {
            let e = d.entries[i];
            match e.val {
                Val::Local => true,
                Val::Empty => s.deq.iter().any(|q| {
                    ((q.top as usize)..NSLOTS).any(|u| {
                        q.entries[u].val
                            == Val::Taken {
                                proc: p as u8,
                                slot: i as u8,
                                tag: e.tag,
                            }
                    })
                }),
                _ => false,
            }
        })
    }

    /// The W1 conservation law: is unexecuted task `t` still referenced?
    fn referenced(s: &StealSt, t: u8) -> bool {
        // r1: a Job entry at or above top in any deque.
        for d in &s.deq {
            for i in (d.top as usize)..NSLOTS {
                if d.entries[i].val == Val::Job(t) {
                    return true;
                }
            }
        }
        for p in 0..NPROCS {
            if s.alive[p] {
                // r2: a live processor's latched registers carry t.
                if Self::pc_owns(&s.pc[p], t) {
                    return true;
                }
                // r2b: a live processor is adopting a dead owner whose
                // frozen restart pointer carries t.
                if let Some(v) = Self::adoption_target(&s.pc[p]) {
                    if !s.alive[v as usize] && Self::pc_owns(&s.pc[v as usize], t) {
                        return true;
                    }
                }
            } else {
                // r3: a dead processor's frozen restart pointer carries t
                // and is still adoptable.
                if Self::pc_owns(&s.pc[p], t) && Self::adoptable(s, p) {
                    return true;
                }
            }
        }
        false
    }

    /// Runs one capsule on processor `p`. Mirrors `capsules.rs` arm for
    /// arm; `n` suffixes and backoff are elided (they steer timing, not
    /// logical order).
    fn run_capsule(&self, s: &StealSt, p: usize) -> StealSt {
        let mut n = *s;
        let me = p as u8;
        match s.pc[p] {
            Pc::FindWork => {
                let d = &s.deq[p];
                let b = d.bot as usize;
                if b == 0 {
                    n.pc[p] = Pc::Steal;
                } else {
                    let old = d.entries[b - 1];
                    match old.val {
                        Val::Job(f) => {
                            n.pc[p] = Pc::PbCam {
                                d: me,
                                b: b as u8,
                                old,
                                f,
                            }
                        }
                        _ => n.pc[p] = Pc::Steal,
                    }
                }
            }
            Pc::PbCam { d, b, old, f } => {
                let new = Entry::new(old.tag.wrapping_add(1), Val::Local);
                let slot = &mut n.deq[d as usize].entries[b as usize - 1];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::PbCheck { d, b, new, f };
            }
            Pc::PbCheck { d, b, new, f } => {
                let cur = s.deq[d as usize].entries[b as usize - 1];
                if cur == new {
                    n.deq[d as usize].bot = b - 1;
                    n.pc[p] = Pc::Exec { f };
                } else if matches!(cur.val, Val::Taken { .. })
                    && cur.tag == new.tag.wrapping_add(1)
                    && self.mutation != StealMutation::DropLemmaA10
                {
                    // Lemma A.10: our CAM succeeded, the owner died, and
                    // we (the uniquely successful adopting thief) already
                    // turned the local entry into taken.
                    n.pc[p] = Pc::Exec { f };
                } else {
                    n.pc[p] = Pc::Steal;
                }
            }
            Pc::Steal => {
                if s.done() {
                    n.pc[p] = Pc::Halted;
                } else {
                    let v = 1 - me; // two processors: the other one
                    let d = &s.deq[p];
                    let b = d.bot;
                    let c = d.entries[b as usize].tag;
                    n.pc[p] = Pc::HelpRead {
                        v,
                        then: Then::PtRead { b, c },
                    };
                }
            }
            Pc::HelpRead { v, then } => {
                let t = s.deq[v as usize].top;
                let e = s.deq[v as usize].entries[t as usize];
                if let Val::Taken { proc, slot, tag } = e.val {
                    n.pc[p] = Pc::HelpCamThief {
                        v,
                        t,
                        tproc: proc,
                        tslot: slot,
                        itag: tag,
                        then,
                    };
                } else {
                    n.pc[p] = then.into_pc(v);
                }
            }
            Pc::HelpCamThief {
                v,
                t,
                tproc,
                tslot,
                itag,
                then,
            } => {
                let slot = &mut n.deq[tproc as usize].entries[tslot as usize];
                if *slot == Entry::new(itag, Val::Empty) {
                    *slot = Entry::new(itag.wrapping_add(1), Val::Local);
                }
                n.pc[p] = Pc::HelpCamTop { v, t, then };
            }
            Pc::HelpCamTop { v, t, then } => {
                if n.deq[v as usize].top == t {
                    n.deq[v as usize].top = t + 1;
                }
                n.pc[p] = then.into_pc(v);
            }
            Pc::PtRead { v, b, c } => {
                let i = s.deq[v as usize].top;
                let old = s.deq[v as usize].entries[i as usize];
                match old.val {
                    Val::Empty => n.pc[p] = Pc::Steal,
                    Val::Taken { .. } => {
                        n.pc[p] = Pc::HelpRead {
                            v,
                            then: Then::Steal,
                        }
                    }
                    Val::Job(f) => {
                        let new = Entry::new(
                            old.tag.wrapping_add(1),
                            Val::Taken {
                                proc: me,
                                slot: b,
                                tag: c,
                            },
                        );
                        n.pc[p] = Pc::PtCam { v, i, old, new, f };
                    }
                    Val::Local => {
                        let owner_dead = !s.alive[v as usize];
                        if owner_dead || self.mutation == StealMutation::AdoptLiveLocal {
                            // The recheck read (line 52-53) is atomic here
                            // because the whole capsule is one transition.
                            let new = Entry::new(
                                old.tag.wrapping_add(1),
                                Val::Taken {
                                    proc: me,
                                    slot: b,
                                    tag: c,
                                },
                            );
                            n.pc[p] = Pc::PtClearAboveRead { v, i, old, new };
                        } else {
                            n.pc[p] = Pc::Steal;
                        }
                    }
                }
            }
            Pc::PtCam { v, i, old, new, f } => {
                let slot = &mut n.deq[v as usize].entries[i as usize];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::HelpRead {
                    v,
                    then: Then::CheckJob { i, new, f },
                };
            }
            Pc::PtCheckJob { v, i, new, f } => {
                let cur = s.deq[v as usize].entries[i as usize];
                if cur == new {
                    n.pc[p] = Pc::Exec { f };
                } else {
                    n.pc[p] = Pc::Steal;
                }
            }
            Pc::PtClearAboveRead { v, i, old, new } => {
                let above_tag = s.deq[v as usize].entries[i as usize + 1].tag;
                n.pc[p] = Pc::PtClearAboveWrite {
                    v,
                    i,
                    old,
                    new,
                    above_tag,
                };
            }
            Pc::PtClearAboveWrite {
                v,
                i,
                old,
                new,
                above_tag,
            } => {
                n.deq[v as usize].entries[i as usize + 1] =
                    Entry::new(above_tag.wrapping_add(1), Val::Empty);
                n.pc[p] = Pc::PtCamLocal { v, i, old, new };
            }
            Pc::PtCamLocal { v, i, old, new } => {
                let slot = &mut n.deq[v as usize].entries[i as usize];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::HelpRead {
                    v,
                    then: Then::CheckLocal { i, new },
                };
            }
            Pc::PtCheckLocal { v, i, new } => {
                let cur = s.deq[v as usize].entries[i as usize];
                if cur != new {
                    n.pc[p] = Pc::Steal;
                } else {
                    // getActiveCapsule: the dead owner's frozen pc *is*
                    // its restart pointer; adopt it verbatim (in-process
                    // adoption resolves any capsule — Lemma A.10's
                    // situation arises when it is `PbCheck`).
                    n.pc[p] = s.pc[v as usize];
                }
            }
            Pc::Exec { f } => {
                n.runs[f as usize] = n.runs[f as usize].saturating_add(1);
                n.pc[p] = Pc::ClearBottom;
            }
            Pc::ClearBottom => {
                let b = s.deq[p].bot as usize;
                let cur = s.deq[p].entries[b];
                n.deq[p].entries[b] = Entry::new(cur.tag.wrapping_add(1), Val::Empty);
                n.pc[p] = Pc::FindWork;
            }
            Pc::Halted => {}
        }
        n
    }
}

impl Model for StealModel {
    type State = StealSt;
    type Action = StealAction;

    fn initial(&self) -> Vec<StealSt> {
        let empty = Entry::new(0, Val::Empty);
        let mut owner = Deque {
            entries: [empty; NSLOTS],
            top: 0,
            bot: 2,
        };
        owner.entries[0] = Entry::new(0, Val::Job(0));
        owner.entries[1] = Entry::new(0, Val::Job(1));
        let thief = Deque {
            entries: [empty; NSLOTS],
            top: 0,
            bot: 0,
        };
        vec![StealSt {
            deq: [owner, thief],
            pc: [Pc::FindWork, Pc::Steal],
            alive: [true; NPROCS],
            runs: [0; NTASKS],
            crashes: 0,
        }]
    }

    fn actions(&self, s: &StealSt) -> Vec<StealAction> {
        let mut acts = Vec::new();
        for p in 0..NPROCS {
            if s.alive[p] && s.pc[p] != Pc::Halted {
                acts.push(StealAction::Step(p as u8));
                if s.crashes < self.crash_budget {
                    acts.push(StealAction::Crash(p as u8));
                }
            }
        }
        acts
    }

    fn step(&self, s: &StealSt, a: &StealAction) -> StealSt {
        match a {
            StealAction::Step(p) => self.run_capsule(s, *p as usize),
            StealAction::Crash(p) => {
                let mut n = *s;
                n.alive[*p as usize] = false;
                n.crashes += 1;
                n
            }
        }
    }

    fn invariant(&self, s: &StealSt) -> Result<(), String> {
        // NoDoubleExecution (W2), strict at capsule granularity.
        for (t, r) in s.runs.iter().enumerate() {
            if *r > 1 {
                return Err(format!("NoDoubleExecution: task {t} completed {r} times"));
            }
        }
        for t in 0..NTASKS as u8 {
            let live_owners = (0..NPROCS)
                .filter(|&p| s.alive[p] && s.pc[p] == Pc::Exec { f: t })
                .count();
            if live_owners > 1 {
                return Err(format!(
                    "NoDoubleExecution: {live_owners} live processors executing task {t}"
                ));
            }
        }
        // NoLostTask (W1) conservation, in the single-fault regime.
        if s.crashes <= 1 {
            for t in 0..NTASKS as u8 {
                if s.runs[t as usize] == 0 && !Self::referenced(s, t) {
                    return Err(format!("NoLostTask: task {t} is no longer referenced"));
                }
            }
        }
        Ok(())
    }

    fn on_terminal(&self, s: &StealSt) -> Result<(), String> {
        // Terminal means every processor halted or died. A halted
        // processor saw the done flag, so a survivor implies completion.
        if (0..NPROCS).any(|p| s.alive[p]) {
            for t in 0..NTASKS {
                if s.runs[t] == 0 {
                    return Err(format!(
                        "NoLostTask: terminated with a live processor but task {t} never ran"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_check::{Explorer, ExplorerConfig};

    #[test]
    fn faithful_protocol_is_clean_and_exhaustible() {
        // Depth 40 exhausts the whole space (diameter 35 at this
        // configuration): every interleaving with up to one hard fault.
        let report = Explorer::new(ExplorerConfig::depth(40)).run(&StealModel::default());
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "space should be exhaustible at depth 40");
        assert!(report.states > 800, "explored {} states", report.states);
    }

    #[test]
    fn crash_free_run_terminates_cleanly() {
        let report = Explorer::new(ExplorerConfig::depth(30)).run(&StealModel::with_crashes(0));
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "crash-free space should be exhaustible");
    }

    #[test]
    fn adopting_a_live_owners_local_double_executes() {
        let report = Explorer::new(ExplorerConfig::depth(20))
            .run(&StealModel::mutated(StealMutation::AdoptLiveLocal));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoDoubleExecution") || cex.reason.contains("NoLostTask"),
            "unexpected reason: {}",
            cex.reason
        );
    }

    #[test]
    fn dropping_lemma_a10_loses_the_thread() {
        let report = Explorer::new(ExplorerConfig::depth(20))
            .run(&StealModel::mutated(StealMutation::DropLemmaA10));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoLostTask"),
            "unexpected reason: {}",
            cex.reason
        );
    }
}
